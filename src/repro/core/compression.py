"""The *compression* technique (Section III-C): FP16 wire format with
compression-scaling.

Gradients are communicated as IEEE half-precision: each FP32/FP64 tensor
is multiplied by a scale factor ``F``, down-cast to FP16 for the wire,
and divided by ``F`` after up-casting on receipt.  Scaling shifts small
gradient magnitudes away from the FP16 subnormal/underflow region, which
is what lets the paper report indistinguishable perplexity with half the
communication volume (e.g. word LM epoch-1 perplexity 84.12 vs 84.68).

The codecs below are *actual* casts — accuracy effects in training
experiments are real IEEE-754 rounding, not a model of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FP16_MAX", "WireCodec", "IdentityCodec", "Fp16Codec", "wire_bytes_ratio"]

#: Largest finite FP16 value; encodes saturate rather than produce inf.
FP16_MAX = float(np.finfo(np.float16).max)
_FP16_MAX = FP16_MAX


class WireCodec:
    """Interface: encode an array for the wire, decode on receipt."""

    def encode(self, arr: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class IdentityCodec(WireCodec):
    """FP32/FP64 pass-through — the no-compression baseline."""

    def encode(self, arr: np.ndarray) -> np.ndarray:
        return arr

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        return arr.astype(dtype, copy=False)


@dataclass(frozen=True)
class Fp16Codec(WireCodec):
    """FP16 wire format with compression-scaling.

    Parameters
    ----------
    scale:
        Compression-scaling factor ``F`` (paper evaluates 256/512/1024).
        ``scale=1.0`` gives the naive cast whose accuracy loss the
        scaling exists to repair (used as the ablation control).
    """

    scale: float = 512.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Scale, saturate to the FP16 range, down-cast."""
        if not np.issubdtype(arr.dtype, np.floating):
            raise ValueError("codec applies to floating-point tensors")
        scaled = np.clip(arr * self.scale, -_FP16_MAX, _FP16_MAX)
        return scaled.astype(np.float16)

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Up-cast and undo the scaling."""
        if arr.dtype != np.float16:
            raise ValueError("expected an FP16 wire tensor")
        return (arr.astype(dtype) / self.scale).astype(dtype, copy=False)


def wire_bytes_ratio(codec: WireCodec, dtype: np.dtype = np.dtype(np.float32)) -> float:
    """Wire-bytes fraction relative to sending raw ``dtype`` tensors.

    0.5 for FP16 over FP32 — the paper's "reduces communication by 50%".
    """
    probe = np.zeros(1, dtype=dtype)
    return codec.encode(probe).itemsize / probe.itemsize
