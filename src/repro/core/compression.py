"""The *compression* technique (Section III-C): FP16 wire format with
compression-scaling.

Gradients are communicated as IEEE half-precision: each FP32/FP64 tensor
is multiplied by a scale factor ``F``, down-cast to FP16 for the wire,
and divided by ``F`` after up-casting on receipt.  Scaling shifts small
gradient magnitudes away from the FP16 subnormal/underflow region, which
is what lets the paper report indistinguishable perplexity with half the
communication volume (e.g. word LM epoch-1 perplexity 84.12 vs 84.68).

The codecs below are *actual* casts — accuracy effects in training
experiments are real IEEE-754 rounding, not a model of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FP16_MAX", "WireCodec", "IdentityCodec", "Fp16Codec", "wire_bytes_ratio"]

#: Largest finite FP16 value; encodes saturate rather than produce inf.
FP16_MAX = float(np.finfo(np.float16).max)
_FP16_MAX = FP16_MAX


class WireCodec:
    """Interface: encode an array for the wire, decode on receipt."""

    #: True when ``decode(encode(x))`` is bit-exact for every valid
    #: input (the lossless integer codecs of :mod:`repro.core.wire`).
    lossless: bool = False

    #: True when the encoded size depends on the payload's *values*
    #: rather than only its dtype/shape — such codecs have no constant
    #: wire ratio and :func:`wire_bytes_ratio` needs a sample.
    data_dependent: bool = False

    #: True when encoded tensors may be **summed in the wire domain**:
    #: ``encode`` maps each element to a fixed-position numeric slot
    #: (identity pass-through, FP16 cast), so adding wire tensors is a
    #: well-defined elementwise reduction — the same reduction the
    #: unfused encode→allreduce→decode path already performs.  The
    #: self-delimiting frame codecs are NOT summable — adding two
    #: bitstreams is meaningless — so fused reductions must
    #: decode/re-encode at each hop boundary instead (see
    #: :mod:`repro.core.wire.fused`).
    summable: bool = False

    def encode(self, arr: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    def wire_dtype(self, dtype: np.dtype) -> np.dtype | None:
        """Dtype of ``encode`` output for a ``dtype`` input; None if unknown.

        Lets :class:`repro.core.wire.registry.CodecPipeline` chain
        decodes without materializing intermediate arrays first.
        """
        return None


@dataclass(frozen=True)
class IdentityCodec(WireCodec):
    """FP32/FP64 pass-through — the no-compression baseline."""

    #: Pass-through slots sum on the wire trivially.
    summable = True

    def encode(self, arr: np.ndarray) -> np.ndarray:
        return arr

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        return arr.astype(dtype, copy=False)

    @property
    def name(self) -> str:
        """Stable short name for registries and cost tables."""
        return "identity"

    def wire_dtype(self, dtype: np.dtype) -> np.dtype | None:
        """Pass-through: the wire dtype is the input dtype."""
        return np.dtype(dtype)


@dataclass(frozen=True)
class Fp16Codec(WireCodec):
    """FP16 wire format with compression-scaling.

    Parameters
    ----------
    scale:
        Compression-scaling factor ``F`` (paper evaluates 256/512/1024).
        ``scale=1.0`` gives the naive cast whose accuracy loss the
        scaling exists to repair (used as the ablation control).
    """

    scale: float = 512.0

    #: FP16 slots are positional: summing wire tensors is FP16-domain
    #: addition, which the fused reduction path exploits (the *scale*
    #: divides out once at decode since it is uniform across ranks).
    summable = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Scale, saturate to the FP16 range, down-cast."""
        if not np.issubdtype(arr.dtype, np.floating):
            raise ValueError("codec applies to floating-point tensors")
        scaled = np.clip(arr * self.scale, -_FP16_MAX, _FP16_MAX)
        return scaled.astype(np.float16)

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Up-cast and undo the scaling."""
        if arr.dtype != np.float16:
            raise ValueError("expected an FP16 wire tensor")
        return (arr.astype(dtype) / self.scale).astype(dtype, copy=False)

    @property
    def name(self) -> str:
        """Stable short name for registries and cost tables."""
        return "fp16"

    def wire_dtype(self, dtype: np.dtype) -> np.dtype | None:
        """Everything leaves as FP16."""
        return np.dtype(np.float16)


def wire_bytes_ratio(
    codec: WireCodec,
    dtype: np.dtype = np.dtype(np.float32),
    sample: np.ndarray | None = None,
) -> float:
    """Wire-bytes fraction relative to sending raw tensors.

    For dtype-determined codecs (identity, FP16) the ratio is a constant
    of the formats — 0.5 for FP16 over FP32, the paper's "reduces
    communication by 50%" — and a 1-element probe suffices.

    For *data-dependent* codecs (the lossless integer codecs of
    :mod:`repro.core.wire`) there is no constant: a sorted Zipf index
    vector may shrink 8x while adversarial data hits the raw-fallback
    bound.  Pass a representative ``sample`` and the **measured** ratio
    ``encode(sample).nbytes / sample.nbytes`` is returned; calling
    without one raises instead of reporting a fictitious constant.
    """
    if sample is not None:
        if sample.size == 0:
            raise ValueError("sample must be non-empty to measure a ratio")
        return codec.encode(sample).nbytes / sample.nbytes
    if getattr(codec, "data_dependent", False):
        raise ValueError(
            f"codec {codec.name!r} has a data-dependent wire ratio; pass "
            "a representative sample array to measure it"
        )
    probe = np.zeros(1, dtype=dtype)
    return codec.encode(probe).itemsize / probe.itemsize
