"""Gradient bucketing: fuse small dense tensors for allreduce.

Section V-B notes the char LM has >20 tensors, each paying per-tensor
overhead (there for FP16 casts; on real fabrics also per-collective
latency).  The standard remedy — used by Horovod/DDP — is to flatten
many gradients into fixed-size *buckets* and allreduce each bucket once:
latency is paid per bucket instead of per tensor, and casts batch.

:func:`plan_buckets` groups tensors greedily in order (preserving
backward-completion order so overlap remains possible);
:func:`bucketed_allreduce` executes the fused exchange over the
simulated communicator, bucket by bucket (issue + wait);
:func:`ibucketed_allreduce` is the overlapped variant — every bucket is
*issued* as soon as it is formed (the way DDP issues a bucket the
moment backward fills it) and the returned
:class:`PendingBucketedAllreduce` defers all waits, so bucket ``i``'s
collective rides the comm stream while bucket ``i+1`` is still being
flattened.  An ablation bench compares per-tensor vs bucketed latency
on the paper's fabric.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..cluster.communicator import Communicator, WorkHandle
from .compression import WireCodec

__all__ = [
    "Bucket",
    "PendingBucketedAllreduce",
    "bucketed_allreduce",
    "ibucketed_allreduce",
    "plan_buckets",
]


@dataclass(frozen=True)
class Bucket:
    """A contiguous group of tensor indices fused into one collective."""

    tensor_indices: tuple[int, ...]
    nbytes: int


def plan_buckets(tensor_nbytes: Sequence[int], bucket_bytes: int) -> list[Bucket]:
    """Greedy in-order grouping of tensors into <= ``bucket_bytes`` buckets.

    A tensor larger than the bucket size gets a bucket of its own (it is
    never split — splitting buys nothing for a single collective).
    Zero-byte tensors add nothing to a bucket's budget and never force a
    split; an empty input yields an empty plan.
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    if any(n < 0 for n in tensor_nbytes):
        raise ValueError("tensor sizes must be non-negative")
    buckets: list[Bucket] = []
    current: list[int] = []
    current_bytes = 0
    for i, n in enumerate(tensor_nbytes):
        if current and current_bytes + n > bucket_bytes:
            buckets.append(Bucket(tuple(current), current_bytes))
            current, current_bytes = [], 0
        current.append(i)
        current_bytes += n
    if current:
        buckets.append(Bucket(tuple(current), current_bytes))
    return buckets


def _validate_structure(
    world: int, per_rank_tensors: Sequence[Sequence[np.ndarray]]
) -> int:
    """Check the per-rank tensor grid agrees; return the tensor count."""
    if len(per_rank_tensors) != world:
        raise ValueError(
            f"got {len(per_rank_tensors)} ranks for world size {world}"
        )
    n_tensors = len(per_rank_tensors[0])
    for r, tensors in enumerate(per_rank_tensors):
        if len(tensors) != n_tensors:
            raise ValueError(
                f"rank {r} has {len(tensors)} tensors, rank 0 has {n_tensors}"
            )
        for i in range(n_tensors):
            ref = per_rank_tensors[0][i]
            if tensors[i].shape != ref.shape or tensors[i].dtype != ref.dtype:
                raise ValueError(f"tensor {i} mismatched on rank {r}")
    return n_tensors


class PendingBucketedAllreduce:
    """All buckets of one fused allreduce, in flight.

    Produced by :func:`ibucketed_allreduce`.  Holds one
    :class:`~repro.cluster.communicator.WorkHandle` per bucket;
    :meth:`wait` completes them in issue order and unflattens the
    reduced buckets back into the original per-rank tensor structure.
    """

    def __init__(
        self,
        comm: Communicator,
        per_rank_tensors: Sequence[Sequence[np.ndarray]],
        buckets: list[Bucket],
        handles: list[WorkHandle],
        codec: WireCodec | None,
    ):
        self._comm = comm
        self._tensors = per_rank_tensors
        self._buckets = buckets
        self._handles = handles
        self._codec = codec
        self._result: list[list[np.ndarray]] | None = None

    @property
    def handles(self) -> tuple[WorkHandle, ...]:
        """The per-bucket work handles, in issue order."""
        return tuple(self._handles)

    def is_complete(self) -> bool:
        """Whether every bucket's handle has been awaited."""
        return all(h.is_complete() for h in self._handles)

    def wait(self) -> list[list[np.ndarray]]:
        """Complete every bucket; return per-rank lists of reduced tensors."""
        if self._result is not None:
            return self._result
        world = self._comm.world_size
        n_tensors = len(self._tensors[0]) if self._tensors else 0
        results: list[list[np.ndarray | None]] = [
            [None] * n_tensors for _ in range(world)
        ]
        for bucket, handle in zip(self._buckets, self._handles):
            reduced = handle.wait()
            for rank in range(world):
                flat = reduced[rank]
                if self._codec is not None:
                    flat = self._codec.decode(
                        flat, self._tensors[rank][0].dtype
                    )
                offset = 0
                for i in bucket.tensor_indices:
                    shape = self._tensors[rank][i].shape
                    size = self._tensors[rank][i].size
                    results[rank][i] = flat[offset : offset + size].reshape(
                        shape
                    )
                    offset += size
        self._result = [list(r) for r in results]  # type: ignore[arg-type]
        return self._result


def ibucketed_allreduce(
    comm: Communicator,
    per_rank_tensors: Sequence[Sequence[np.ndarray]],
    bucket_bytes: int = 4 * 1024 * 1024,
    codec: WireCodec | None = None,
    tag: str = "bucketed",
) -> PendingBucketedAllreduce:
    """Issue a fused allreduce bucket-by-bucket without waiting.

    Each bucket's ``iallreduce`` is issued the moment the bucket is
    flattened (and encoded), so its collective occupies the comm stream
    while later buckets — in a real run, later backward layers — are
    still producing.  All waits are deferred to the returned pending
    object, which also unflattens results back to tensor structure.

    Parameters are as for :func:`bucketed_allreduce`.
    """
    world = comm.world_size
    n_tensors = _validate_structure(world, per_rank_tensors)
    if n_tensors == 0:
        return PendingBucketedAllreduce(comm, per_rank_tensors, [], [], codec)

    sizes = [int(t.nbytes) for t in per_rank_tensors[0]]
    buckets = plan_buckets(sizes, bucket_bytes)
    handles: list[WorkHandle] = []
    for b, bucket in enumerate(buckets):
        flats = []
        for rank in range(world):
            flat = np.concatenate(
                [
                    per_rank_tensors[rank][i].reshape(-1)
                    for i in bucket.tensor_indices
                ]
            )
            flats.append(codec.encode(flat) if codec is not None else flat)
        handles.append(comm.iallreduce(flats, tag=f"{tag}:bucket{b}"))
    return PendingBucketedAllreduce(
        comm, per_rank_tensors, buckets, handles, codec
    )


def bucketed_allreduce(
    comm: Communicator,
    per_rank_tensors: Sequence[Sequence[np.ndarray]],
    bucket_bytes: int = 4 * 1024 * 1024,
    codec: WireCodec | None = None,
    tag: str = "bucketed",
) -> list[list[np.ndarray]]:
    """Sum-allreduce a list of tensors per rank, fused into buckets.

    The blocking schedule: each bucket is issued and awaited before the
    next is formed, so at most one bucket's scratch is ever live — the
    exact pre-async behaviour (and memory profile).  Use
    :func:`ibucketed_allreduce` for the overlapped schedule.

    Parameters
    ----------
    per_rank_tensors:
        ``per_rank_tensors[rank][i]`` — tensor ``i`` on ``rank``; shapes
        and dtypes must agree across ranks per index.
    bucket_bytes:
        Fusion threshold (Horovod's default neighbourhood: a few MB).
    codec:
        Optional wire codec applied per bucket (one cast per bucket —
        the batching that removes the paper's per-tensor cast overhead).

    Returns
    -------
    Per-rank lists of reduced tensors, same structure as the input.
    """
    world = comm.world_size
    n_tensors = _validate_structure(world, per_rank_tensors)
    if n_tensors == 0:
        return [[] for _ in range(world)]

    sizes = [int(t.nbytes) for t in per_rank_tensors[0]]
    buckets = plan_buckets(sizes, bucket_bytes)
    results: list[list[np.ndarray | None]] = [
        [None] * n_tensors for _ in range(world)
    ]
    for b, bucket in enumerate(buckets):
        flats = []
        for rank in range(world):
            flat = np.concatenate(
                [
                    per_rank_tensors[rank][i].reshape(-1)
                    for i in bucket.tensor_indices
                ]
            )
            flats.append(codec.encode(flat) if codec is not None else flat)
        reduced = comm.iallreduce(flats, tag=f"{tag}:bucket{b}").wait()
        for rank in range(world):
            flat = reduced[rank]
            if codec is not None:
                flat = codec.decode(flat, per_rank_tensors[rank][0].dtype)
            offset = 0
            for i in bucket.tensor_indices:
                shape = per_rank_tensors[rank][i].shape
                size = per_rank_tensors[rank][i].size
                results[rank][i] = flat[offset : offset + size].reshape(shape)
                offset += size
    return [list(r) for r in results]  # type: ignore[arg-type]
