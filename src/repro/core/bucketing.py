"""Gradient bucketing: fuse small dense tensors for allreduce.

Section V-B notes the char LM has >20 tensors, each paying per-tensor
overhead (there for FP16 casts; on real fabrics also per-collective
latency).  The standard remedy — used by Horovod/DDP — is to flatten
many gradients into fixed-size *buckets* and allreduce each bucket once:
latency is paid per bucket instead of per tensor, and casts batch.

:func:`plan_buckets` groups tensors greedily in order (preserving
backward-completion order so overlap remains possible);
:func:`bucketed_allreduce` executes the fused exchange over the
simulated communicator.  An ablation bench compares per-tensor vs
bucketed latency on the paper's fabric.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..cluster.communicator import Communicator
from .compression import WireCodec

__all__ = ["Bucket", "plan_buckets", "bucketed_allreduce"]


@dataclass(frozen=True)
class Bucket:
    """A contiguous group of tensor indices fused into one collective."""

    tensor_indices: tuple[int, ...]
    nbytes: int


def plan_buckets(tensor_nbytes: Sequence[int], bucket_bytes: int) -> list[Bucket]:
    """Greedy in-order grouping of tensors into <= ``bucket_bytes`` buckets.

    A tensor larger than the bucket size gets a bucket of its own (it is
    never split — splitting buys nothing for a single collective).
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")
    if any(n < 0 for n in tensor_nbytes):
        raise ValueError("tensor sizes must be non-negative")
    buckets: list[Bucket] = []
    current: list[int] = []
    current_bytes = 0
    for i, n in enumerate(tensor_nbytes):
        if current and current_bytes + n > bucket_bytes:
            buckets.append(Bucket(tuple(current), current_bytes))
            current, current_bytes = [], 0
        current.append(i)
        current_bytes += n
    if current:
        buckets.append(Bucket(tuple(current), current_bytes))
    return buckets


def bucketed_allreduce(
    comm: Communicator,
    per_rank_tensors: Sequence[Sequence[np.ndarray]],
    bucket_bytes: int = 4 * 1024 * 1024,
    codec: WireCodec | None = None,
    tag: str = "bucketed",
) -> list[list[np.ndarray]]:
    """Sum-allreduce a list of tensors per rank, fused into buckets.

    Parameters
    ----------
    per_rank_tensors:
        ``per_rank_tensors[rank][i]`` — tensor ``i`` on ``rank``; shapes
        and dtypes must agree across ranks per index.
    bucket_bytes:
        Fusion threshold (Horovod's default neighbourhood: a few MB).
    codec:
        Optional wire codec applied per bucket (one cast per bucket —
        the batching that removes the paper's per-tensor cast overhead).

    Returns
    -------
    Per-rank lists of reduced tensors, same structure as the input.
    """
    world = comm.world_size
    if len(per_rank_tensors) != world:
        raise ValueError(
            f"got {len(per_rank_tensors)} ranks for world size {world}"
        )
    n_tensors = len(per_rank_tensors[0])
    for r, tensors in enumerate(per_rank_tensors):
        if len(tensors) != n_tensors:
            raise ValueError(f"rank {r} has {len(tensors)} tensors, rank 0 has {n_tensors}")
        for i in range(n_tensors):
            ref = per_rank_tensors[0][i]
            if tensors[i].shape != ref.shape or tensors[i].dtype != ref.dtype:
                raise ValueError(f"tensor {i} mismatched on rank {r}")
    if n_tensors == 0:
        return [[] for _ in range(world)]

    sizes = [int(t.nbytes) for t in per_rank_tensors[0]]
    buckets = plan_buckets(sizes, bucket_bytes)
    results: list[list[np.ndarray | None]] = [
        [None] * n_tensors for _ in range(world)
    ]
    for b, bucket in enumerate(buckets):
        flats = []
        for rank in range(world):
            flat = np.concatenate(
                [per_rank_tensors[rank][i].reshape(-1) for i in bucket.tensor_indices]
            )
            flats.append(codec.encode(flat) if codec is not None else flat)
        reduced = comm.allreduce(flats, tag=f"{tag}:bucket{b}")
        for rank in range(world):
            flat = reduced[rank]
            if codec is not None:
                flat = codec.decode(flat, per_rank_tensors[rank][0].dtype)
            offset = 0
            for i in bucket.tensor_indices:
                shape = per_rank_tensors[rank][i].shape
                size = per_rank_tensors[rank][i].size
                results[rank][i] = flat[offset : offset + size].reshape(shape)
                offset += size
    return [list(r) for r in results]  # type: ignore[arg-type]
