"""Closed-form memory/communication bounds (Sections II-B and III-A).

The paper's asymptotic claims, as concrete byte formulas:

* baseline ALLGATHER over dense embedding gradients —
  memory and communication Θ(G·K·D);
* the uniqueness technique —
  Θ(G·K) index traffic plus Θ(Ug·D) value traffic, with Zipf's law
  giving ``Ug ∝ (G·K)^alpha`` (alpha = 0.64 empirically).

Includes the Section III-A worked example: c = 150 and 128 sequences per
GPU give K = 19,200 tokens; with D = 1792 and FP32 gradients on 256
GPUs, the baseline needs 35.2 GB per GPU while the unique scheme needs
0.137 GB — a 256x saving.  (The paper's arithmetic takes
``Ug = (G·K)^0.64`` with unit coefficient; we expose the coefficient so
the Figure-1 fit ``7.02 N^0.64`` can be plugged in too.)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_ALPHA",
    "expected_global_unique",
    "baseline_allgather_memory_bytes",
    "baseline_allgather_comm_bytes",
    "unique_memory_bytes",
    "unique_comm_bytes",
    "memory_reduction_factor",
    "WorkedExample",
    "worked_example_256_gpus",
]

#: Zipf-induced type-growth exponent measured in Figure 1.
PAPER_ALPHA = 0.64

#: Coefficient of the pooled Figure-1 fit ``U = 7.02 N^0.64``.
PAPER_HEAPS_COEFF = 7.02


def expected_global_unique(
    total_tokens: int,
    alpha: float = PAPER_ALPHA,
    coeff: float = 1.0,
    vocab_size: int | None = None,
) -> float:
    """Expected global type count ``Ug`` for ``total_tokens = G*K`` tokens.

    ``coeff=1.0`` reproduces the paper's worked-example arithmetic;
    ``coeff=PAPER_HEAPS_COEFF`` uses the Figure-1 fit.  Capped at the
    vocabulary size (the char-LM saturation noted in Section V-B) and at
    the token count itself.
    """
    if total_tokens < 0:
        raise ValueError("total_tokens must be non-negative")
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    if coeff <= 0:
        raise ValueError("coeff must be positive")
    u = coeff * total_tokens**alpha
    u = min(u, float(total_tokens))
    if vocab_size is not None:
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        u = min(u, float(vocab_size))
    return u


def _check(G: int, K: int, D: int) -> None:
    if G <= 0 or K <= 0 or D <= 0:
        raise ValueError("G, K, D must be positive")


def baseline_allgather_memory_bytes(
    G: int, K: int, D: int, val_bytes: int = 4
) -> int:
    """Per-GPU scratch for the baseline: hold all G dense K x D blocks."""
    _check(G, K, D)
    return G * K * D * val_bytes


def baseline_allgather_comm_bytes(G: int, K: int, D: int, val_bytes: int = 4) -> int:
    """Per-GPU wire volume of the baseline ring allgather."""
    _check(G, K, D)
    return (G - 1) * K * D * val_bytes


def unique_memory_bytes(
    G: int, K: int, D: int, u_global: float,
    idx_bytes: int = 4, val_bytes: int = 4,
) -> int:
    """Per-GPU scratch for the unique scheme: G·K indices + Ug x D values."""
    _check(G, K, D)
    if u_global < 0:
        raise ValueError("u_global must be non-negative")
    return int(G * K * idx_bytes + u_global * D * val_bytes)


def unique_comm_bytes(
    G: int, K: int, D: int, u_global: float,
    idx_bytes: int = 4, val_bytes: int = 4,
) -> int:
    """Per-GPU wire volume of the unique scheme.

    Index allgather moves each rank's K indices G-1 times; the value
    ring-allreduce moves ``2 (G-1)/G`` of the Ug x D matrix.
    """
    _check(G, K, D)
    if u_global < 0:
        raise ValueError("u_global must be non-negative")
    idx = (G - 1) * K * idx_bytes
    val = 2 * (G - 1) / G * u_global * D * val_bytes
    return int(idx + val)


def memory_reduction_factor(
    G: int, K: int, D: int, u_global: float,
    idx_bytes: int = 4, val_bytes: int = 4,
) -> float:
    """Baseline-over-unique per-GPU memory ratio (the paper's '256x')."""
    return baseline_allgather_memory_bytes(G, K, D, val_bytes) / unique_memory_bytes(
        G, K, D, u_global, idx_bytes, val_bytes
    )


def breakeven_unique_rows(
    G: int, K: int, D: int, idx_bytes: int = 4, val_bytes: int = 4
) -> float:
    """The Ug above which the unique exchange stops winning on wire volume.

    Setting ``unique_comm_bytes == baseline_allgather_comm_bytes`` and
    solving for Ug:  the baseline moves ``(G-1) K D v`` bytes; the unique
    path moves ``(G-1) K i + 2 (G-1)/G Ug D v``.  With no duplication at
    all (``Ug = G K``) the unique path's value allreduce alone is ~2x the
    baseline — uniqueness is a *Zipf* optimization, not a free one.
    """
    _check(G, K, D)
    if G == 1:
        return float("inf")
    return ((K * D * val_bytes - K * idx_bytes) * G) / (2 * D * val_bytes)


def unique_wins_comm(
    G: int, K: int, D: int, u_global: float,
    idx_bytes: int = 4, val_bytes: int = 4,
) -> bool:
    """Does the unique exchange move fewer wire bytes than the baseline?"""
    return unique_comm_bytes(
        G, K, D, u_global, idx_bytes, val_bytes
    ) < baseline_allgather_comm_bytes(G, K, D, val_bytes)


def crossover_duplication_factor(
    G: int, K: int, D: int, idx_bytes: int = 4, val_bytes: int = 4
) -> float:
    """Minimum tokens-per-type ratio ``G K / Ug`` for uniqueness to win.

    Equals ``2 D v / (D v - i)`` and approaches **2** for large D: the
    batch must repeat each type about twice on average before the unique
    path pays off — trivially true under Zipf (Figure 1's gap is ~100x)
    and false only for pathological all-distinct batches.
    """
    ug_star = breakeven_unique_rows(G, K, D, idx_bytes, val_bytes)
    return (G * K) / ug_star


@dataclass(frozen=True)
class WorkedExample:
    """The Section III-A example, evaluated."""

    gpus: int
    local_batch_tokens: int
    embedding_dim: int
    u_global: float
    baseline_memory_bytes: int
    unique_memory_bytes: int
    reduction_factor: float


def worked_example_256_gpus(coeff: float = 1.0) -> WorkedExample:
    """Evaluate the paper's 256-GPU worked example.

    With ``coeff=1.0`` (the paper's arithmetic) this yields 35.2 GB
    baseline vs ~0.14 GB unique — the quoted 256x.
    """
    G, K, D = 256, 150 * 128, 1792
    u = expected_global_unique(G * K, coeff=coeff)
    base = baseline_allgather_memory_bytes(G, K, D)
    # The paper's 0.137 GB counts the value matrix only; we include the
    # index buffer as the algorithm actually requires.
    uniq = unique_memory_bytes(G, K, D, u)
    return WorkedExample(
        gpus=G,
        local_batch_tokens=K,
        embedding_dim=D,
        u_global=u,
        baseline_memory_bytes=base,
        unique_memory_bytes=uniq,
        reduction_factor=base / uniq,
    )
