"""Data-axis gradient exchange over a hybrid training mesh.

On a ``(pipe, tensor, data)`` mesh the gradient synchronization of the
paper's data-parallel recipe is restricted to the **data** axis: the
``p*t`` model ranks of one data-parallel replica each carry a shard of
the gradient, and only the ``d`` ranks that share a shard index reduce
with each other.  This module provides that exchange in the simulator's
SPMD idiom — per-replica gradients in, per-replica reduced gradients
out — with the cost charged through
:class:`~repro.cluster.mesh.MeshCommunicator` data-axis collectives.

**Bit-exactness contract** (regression-pinned by the mesh training
tests): on a trivial mesh ``(pipe=1, tensor=1, data=G)`` both exchanges
reproduce the flat data-parallel path bit-for-bit —

* :func:`dense_mesh_allreduce` splits each flat gradient into ``p*t``
  contiguous shards; each data subgroup reduces its shard in the same
  rank order the flat allreduce uses, and
  ``concat(array_split(x)) == x`` holds exactly, so the reassembled
  gradient equals the flat allreduce result element-for-element.
* :func:`sparse_mesh_exchange` shards the vocabulary into ``p*t``
  contiguous row ranges and runs the paper's uniqueness algorithm
  (local coalesce → index allgather → unique → aligned value
  allreduce) per range over the data axis.  Concatenating the per-range
  results yields globally sorted unique indices, and filtering a
  coalesced gradient by a row range commutes with coalescing — so the
  result matches the flat :class:`~repro.core.unique.UniqueExchange`
  output exactly.
"""

from __future__ import annotations

import numpy as np

from ..nn.parameter import SparseGrad

__all__ = [
    "MeshShardLayout",
    "dense_mesh_allreduce",
    "sparse_mesh_exchange",
]


def _shard_bounds(total: int, num_shards: int) -> list[tuple[int, int]]:
    # Mirrors repro.nn.parallel.shard_bounds without importing repro.nn
    # machinery into the hot path: contiguous ranges, sizes differing by
    # at most one.
    base, extra = divmod(total, num_shards)
    bounds, lo = [], 0
    for j in range(num_shards):
        hi = lo + base + (1 if j < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class MeshShardLayout:
    """Rank → (shard index, data coordinate) map of a hybrid mesh.

    The combined model axes (``pipe`` × ``tensor``) define ``p*t``
    gradient shards; a rank's shard index is shared by exactly its
    data-axis subgroup, so the per-rank arrays handed to a data-axis
    collective are subgroup-uniform by construction.
    """

    def __init__(self, mesh):
        names = mesh.axis_names
        for required in ("pipe", "tensor", "data"):
            if required not in names:
                raise ValueError(
                    f"mesh {mesh.describe()} lacks the {required!r} axis; "
                    "build it with hybrid_mesh()"
                )
        self.mesh = mesh
        self.data_size = mesh.axis_size("data")
        self.num_shards = mesh.axis_size("pipe") * mesh.axis_size("tensor")
        pipe_i = mesh.axis_index("pipe")
        tensor_i = mesh.axis_index("tensor")
        data_i = mesh.axis_index("data")
        t = mesh.axis_size("tensor")
        self.shard_of: list[int] = []
        self.data_of: list[int] = []
        self.rank_of: dict[tuple[int, int], int] = {}
        for rank in range(mesh.size):  # mesh-ok: SPMD driver loop building the rank->coordinate map itself
            c = mesh.coords(rank)
            shard = c[pipe_i] * t + c[tensor_i]
            self.shard_of.append(shard)
            self.data_of.append(c[data_i])
            self.rank_of[(shard, c[data_i])] = rank


def dense_mesh_allreduce(
    mesh_comm,
    grads: list[np.ndarray],
    layout: MeshShardLayout | None = None,
    tag: str = "",
    average: bool = True,
) -> list[np.ndarray]:
    """Reduce one dense gradient across the data axis, sharded over p*t.

    ``grads`` holds one gradient per data-parallel replica (index =
    data coordinate).  Each gradient is flattened, split into ``p*t``
    contiguous shards, and reduced shard-wise by one data-axis
    allreduce; the reassembled (and optionally data-averaged) gradient
    is returned per replica.
    """
    layout = layout if layout is not None else MeshShardLayout(mesh_comm.mesh)
    d = layout.data_size
    if len(grads) != d:
        raise ValueError(f"{len(grads)} replica grads for data axis {d}")
    shape = grads[0].shape
    flats = [g.ravel() for g in grads]
    pieces = [np.array_split(f, layout.num_shards) for f in flats]
    arrays = [
        pieces[layout.data_of[r]][layout.shard_of[r]]
        for r in range(mesh_comm.world_size)  # mesh-ok: assembling the full per-rank array list the SPMD collective API takes
    ]
    reduced = mesh_comm.allreduce("data", arrays, tag=tag)
    out = []
    for k in range(d):
        full = np.concatenate(
            [reduced[layout.rank_of[(s, k)]] for s in range(layout.num_shards)]
        ).reshape(shape)
        if average:
            full = full / d
        out.append(full)
    return out


def sparse_mesh_exchange(
    mesh_comm,
    grads: list[SparseGrad],
    num_rows: int,
    layout: MeshShardLayout | None = None,
    tag: str = "",
    average: bool = True,
) -> list[SparseGrad]:
    """The uniqueness exchange, vocab-sharded over p*t, data-axis only.

    ``grads`` holds one token-level sparse gradient per data replica.
    Each replica's contribution is locally coalesced and split into the
    ``p*t`` contiguous vocabulary row ranges; each range runs the
    paper's algorithm across its data subgroup — index allgather, global
    unique, aligned scatter, value allreduce — and the per-range results
    are concatenated back (ranges ascend, so indices come out globally
    sorted and unique, exactly as the flat exchange produces them).
    """
    layout = layout if layout is not None else MeshShardLayout(mesh_comm.mesh)
    d = layout.data_size
    if len(grads) != d:
        raise ValueError(f"{len(grads)} replica grads for data axis {d}")
    bounds = _shard_bounds(num_rows, layout.num_shards)
    local = [g.coalesce() for g in grads]
    world = mesh_comm.world_size

    idx_arrays: list[np.ndarray] = [None] * world  # type: ignore[list-item]
    val_arrays: list[np.ndarray] = [None] * world  # type: ignore[list-item]
    for rank in range(world):  # mesh-ok: assembling the full per-rank array list the SPMD collective API takes
        lo, hi = bounds[layout.shard_of[rank]]
        g = local[layout.data_of[rank]]
        mask = (g.indices >= lo) & (g.indices < hi)
        idx_arrays[rank] = g.indices[mask].astype(np.int64)
        val_arrays[rank] = g.values[mask]

    gathered = mesh_comm.allgather("data", idx_arrays, tag=f"{tag}:indices")

    aligned: list[np.ndarray] = [None] * world  # type: ignore[list-item]
    uniques: list[np.ndarray] = [None] * world  # type: ignore[list-item]
    dim = grads[0].dim
    for rank in range(world):  # mesh-ok: per-rank local compute between the two SPMD collectives
        uniq = np.unique(np.asarray(gathered[rank]).ravel())
        vals = val_arrays[rank]
        a = np.zeros((uniq.size, dim), dtype=vals.dtype)
        if idx_arrays[rank].size:
            a[np.searchsorted(uniq, idx_arrays[rank])] = vals
        uniques[rank] = uniq
        aligned[rank] = a

    reduced = mesh_comm.allreduce("data", aligned, tag=f"{tag}:values")

    out = []
    for k in range(d):
        ranks = [layout.rank_of[(s, k)] for s in range(layout.num_shards)]
        indices = np.concatenate([uniques[r] for r in ranks])
        values = np.concatenate([reduced[r] for r in ranks], axis=0)
        if average:
            values = values / d
        out.append(SparseGrad(indices=indices, values=values))
    return out
