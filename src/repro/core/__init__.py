"""The paper's contribution: uniqueness, seeding, and compression.

Uniqueness (III-A) turns the Θ(G·K·D) embedding-gradient ALLGATHER into
Θ(G·K + Ug·D); seeding (III-B) restores sampled-softmax overlap so the
output embedding enjoys the same reduction; compression (III-C) halves
wire volume with FP16 + compression-scaling.  The :mod:`repro.core.wire`
package generalizes III-C into a pluggable codec stack, adding lossless
delta-bitpack/run-length frame codecs for the Θ(G·K) index gather.
"""

from .bucketing import Bucket, bucketed_allreduce, plan_buckets
from .complexity import (
    PAPER_ALPHA,
    PAPER_HEAPS_COEFF,
    WorkedExample,
    baseline_allgather_comm_bytes,
    baseline_allgather_memory_bytes,
    breakeven_unique_rows,
    crossover_duplication_factor,
    expected_global_unique,
    memory_reduction_factor,
    unique_comm_bytes,
    unique_memory_bytes,
    unique_wins_comm,
    worked_example_256_gpus,
)
from .compression import Fp16Codec, IdentityCodec, WireCodec, wire_bytes_ratio
from .embedding_sync import GradientSynchronizer, concat_token_grads
from .mesh_exchange import (
    MeshShardLayout,
    dense_mesh_allreduce,
    sparse_mesh_exchange,
)
from .seeding import (
    SeedAssignment,
    SeedStrategy,
    assign_seeds,
    expected_unique_sampled,
    num_seed_groups,
    seed_group_sizes,
)
from .sparse_exchange import AllGatherExchange, ExchangeStrategy, UniqueExchange
from .unique import UniqueExchangeResult, local_unique_reduce, unique_exchange
from .wire import (
    AdaptiveCodecSelector,
    CodecPipeline,
    DeltaBitpackCodec,
    LosslessIntCodec,
    RunLengthCodec,
    WirePolicy,
    available_codecs,
    decode_frames,
    iencoded_allgather,
    make_codec,
    register_codec,
)

__all__ = [
    "Bucket",
    "bucketed_allreduce",
    "plan_buckets",
    "breakeven_unique_rows",
    "crossover_duplication_factor",
    "unique_wins_comm",
    "PAPER_ALPHA",
    "PAPER_HEAPS_COEFF",
    "expected_global_unique",
    "baseline_allgather_memory_bytes",
    "baseline_allgather_comm_bytes",
    "unique_memory_bytes",
    "unique_comm_bytes",
    "memory_reduction_factor",
    "WorkedExample",
    "worked_example_256_gpus",
    "WireCodec",
    "IdentityCodec",
    "Fp16Codec",
    "wire_bytes_ratio",
    "GradientSynchronizer",
    "concat_token_grads",
    "MeshShardLayout",
    "dense_mesh_allreduce",
    "sparse_mesh_exchange",
    "SeedStrategy",
    "SeedAssignment",
    "assign_seeds",
    "num_seed_groups",
    "seed_group_sizes",
    "expected_unique_sampled",
    "ExchangeStrategy",
    "AllGatherExchange",
    "UniqueExchange",
    "UniqueExchangeResult",
    "unique_exchange",
    "local_unique_reduce",
    "AdaptiveCodecSelector",
    "CodecPipeline",
    "DeltaBitpackCodec",
    "LosslessIntCodec",
    "RunLengthCodec",
    "WirePolicy",
    "available_codecs",
    "decode_frames",
    "iencoded_allgather",
    "make_codec",
    "register_codec",
]
