"""The *uniqueness* technique (Section III-A): the paper's core algorithm.

Replaces the baseline Θ(G·K·D) ALLGATHER of dense embedding gradients
with the seven-step scheme of Figure 4:

1. per GPU, find the locally-unique word indices Ĵ of its K tokens;
2. per GPU, locally reduce token gradients into a Ui x D matrix ∆̂;
3. ALLGATHER the K-length *index* vectors J (Θ(G·K) — no D factor);
4. per GPU, filter the gathered G·K indices to the globally-unique,
   totally-ordered set Î (identical on every GPU);
5. per GPU, scatter ∆̂ into a Ug x D matrix M aligned to Î
   (zero-filling rows for types absent locally);
6. ALLREDUCE the M matrices (Θ(Ug·D));
7. apply M̂ to the local embedding via Î — every row unique, so the
   update is scatter-parallel with no write conflicts.

Total: Θ(G·K + Ug·D) memory and communication, where Zipf's law gives
``Ug ∝ (G·K)^0.64``.

All steps are vectorized; the global ordering of Î is ascending word
index, which every GPU derives independently and deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.communicator import Communicator
from ..nn.parameter import SparseGrad
from .compression import WireCodec
from .wire.policy import WirePolicy
from .wire.transfer import iencoded_allgather

__all__ = [
    "PendingUniqueExchange",
    "UniqueExchangeResult",
    "global_unique",
    "iunique_exchange",
    "local_unique_reduce",
    "unique_exchange",
]


def global_unique(all_indices: np.ndarray) -> np.ndarray:
    """Step 4: the globally-unique, totally-ordered type set Î.

    Every rank derives the same ascending ``int64`` vector from the
    gathered index traffic — the determinism the scatter/searchsorted
    steps (5 and 7) rely on.  Shared by the training-side gradient
    exchange and the serving-side replica-sharded embedding lookup
    (:func:`repro.serve.embedding.sharded_embedding_lookup`), which runs
    the same gather-unique-shard dance over decode-step token ids.
    """
    return np.unique(np.asarray(all_indices, dtype=np.int64))


@dataclass(frozen=True)
class UniqueExchangeResult:
    """Outcome of a unique exchange, identical on every rank.

    Attributes
    ----------
    global_indices:
        Î — the sorted global type set of this step (Ug entries).
    reduced_values:
        M̂ — the Ug x D allreduced gradient matrix, row i being the
        total gradient of type ``global_indices[i]`` across all ranks.
    local_unique_counts:
        Ui per rank (diagnostics; feeds the Figure-1-style measurements).
    """

    global_indices: np.ndarray
    reduced_values: np.ndarray
    local_unique_counts: tuple[int, ...]

    @property
    def num_global_unique(self) -> int:
        """Ug — the step's global type count."""
        return int(self.global_indices.size)

    def as_sparse_grad(self) -> SparseGrad:
        return SparseGrad(indices=self.global_indices, values=self.reduced_values)


def local_unique_reduce(grad: SparseGrad) -> SparseGrad:
    """Steps 1-2: locally-unique indices + locally-reduced gradients.

    Thin, intention-revealing wrapper over ``SparseGrad.coalesce``:
    returns a gradient whose indices are the rank's *types* (sorted,
    unique) and whose rows accumulate all same-word token gradients.
    """
    return grad.coalesce()


class PendingUniqueExchange:
    """A unique exchange in flight, staged around its two collectives.

    Created by :func:`iunique_exchange`, which runs steps 1-2 (local
    unique + local reduce) eagerly and *issues* the step-3 index
    ALLGATHER before returning — so the index traffic rides the comm
    stream while the caller does other work (e.g. issuing dense gradient
    buckets).  :meth:`wait` then completes the allgather, runs the
    purely-local steps 4-5, issues and completes the step-6 value
    ALLREDUCE, and returns the :class:`UniqueExchangeResult`.

    The value allreduce cannot be issued earlier: its payload (the
    aligned Ug x D matrices) depends on the gathered indices.  This
    two-stage dependency is exactly why the paper's exchange overlaps
    less perfectly than dense bucketed gradients.
    """

    def __init__(
        self,
        comm: Communicator,
        grads: list[SparseGrad],
        local: list[SparseGrad],
        index_handle,
        tag: str,
        codec: WireCodec | None,
        wire: WirePolicy | None = None,
    ):
        self._comm = comm
        self._grads = grads
        self._local = local
        self._index_handle = index_handle
        self._tag = tag
        self._codec = codec
        self._wire = wire
        self._result: UniqueExchangeResult | None = None

    def is_complete(self) -> bool:
        """Whether :meth:`wait` has run to completion."""
        return self._result is not None

    def wait(self) -> UniqueExchangeResult:
        """Finish the exchange: steps 3 (complete) through 6."""
        if self._result is not None:
            return self._result

        # Step 3 completes: the gathered index vector is identical on
        # every rank, so rank 0's copy serves all.
        all_indices = self._index_handle.wait()[0]

        # Step 4: global unique filter, totally ordered (ascending).
        global_indices = global_unique(all_indices)
        ug = int(global_indices.size)

        # Step 5: local scatter Ĵ -> Î positions, zero-filling missing
        # rows.  All ranks' scatters run as one vectorized assignment
        # into a stacked (G, Ug, D) block: per-rank indices are unique,
        # so the fancy assignment writes each (rank, row) cell at most
        # once — value-identical to the per-rank loop.
        dim = self._grads[0].dim
        dtype = self._grads[0].values.dtype
        world = len(self._local)
        cat_idx = np.concatenate([g.indices for g in self._local])
        cat_val = (
            np.concatenate([g.values for g in self._local])
            if cat_idx.size
            else np.zeros((0, dim), dtype=dtype)
        )
        pos = np.searchsorted(global_indices, cat_idx)
        # Every local type must be present globally by construction.
        assert (global_indices[pos] == cat_idx).all()
        rank_of = np.repeat(
            np.arange(world),
            np.fromiter(
                (g.indices.size for g in self._local),
                dtype=np.int64,
                count=world,
            ),
        )
        stacked = np.zeros((world, ug, dim), dtype=dtype)
        stacked[rank_of, pos] = cat_val
        scattered = list(stacked)

        # Step 6: allreduce the aligned Ug x D matrices (optionally in
        # the codec's wire precision).  An explicit codec wins; else the
        # wire policy may resolve one per message (``auto``).
        codec = self._codec
        if codec is None and self._wire is not None:
            codec = self._wire.resolve_value_codec(scattered, self._comm)
        if codec is not None:
            encoded = [codec.encode(m) for m in scattered]
            reduced_wire = self._comm.iallreduce(
                encoded,
                tag=f"{self._tag}:values",
                payload_bytes=scattered[0].nbytes,
                shared_result=True,
            ).wait()[0]
            reduced = codec.decode(reduced_wire, dtype)
        else:
            # Only rank 0's (identical) copy is consumed — skip the
            # per-rank fan-out on the host.  ``scattered`` rows are views
            # of the contiguous block built above; passing it avoids
            # restacking G views.
            reduced = self._comm.iallreduce(
                scattered,
                tag=f"{self._tag}:values",
                shared_result=True,
                stacked=stacked,
            ).wait()[0]

        self._result = UniqueExchangeResult(
            global_indices=global_indices,
            reduced_values=reduced,
            local_unique_counts=tuple(g.indices.size for g in self._local),
        )
        return self._result


def iunique_exchange(
    comm: Communicator,
    grads: list[SparseGrad],
    tag: str = "embedding",
    codec: WireCodec | None = None,
    wire: WirePolicy | None = None,
) -> PendingUniqueExchange:
    """Start a unique exchange without blocking on its collectives.

    Runs steps 1-2 locally and issues the step-3 index allgather; the
    rest (steps 4-6) runs when :meth:`PendingUniqueExchange.wait` is
    called.  Parameters are as for :func:`unique_exchange`, which is
    equivalent to ``iunique_exchange(...).wait()``.

    When ``wire`` carries (or adaptively selects) an index codec, the
    step-3 vectors are sorted per rank and shipped as lossless frames
    through :func:`~repro.core.wire.transfer.iencoded_allgather` — the
    step-4 ``np.unique`` is order-insensitive, so pre-sorting is free
    semantically and is exactly what makes consecutive deltas small.
    The ledger then charges the *encoded* bytes for the Θ(G·K) gather
    instead of ``8·K`` per rank.
    """
    if len(grads) != comm.world_size:
        raise ValueError(
            f"got {len(grads)} gradients for world size {comm.world_size}"
        )
    dims = {g.dim for g in grads}
    if len(dims) != 1:
        raise ValueError(f"inconsistent gradient dims across ranks: {dims}")

    # Steps 1-2: local unique + local reduce (per rank, on device).
    local = [local_unique_reduce(g) for g in grads]

    # Step 3 issues: allgather the raw K-length index vectors.  The
    # paper gathers token-level J (not Ĵ) — cost Θ(G·K) — so we do the
    # same.
    index_vectors = [g.indices.astype(np.int64, copy=False) for g in grads]
    index_codec = (
        None
        if wire is None
        else wire.resolve_index_codec(index_vectors, comm, sorted_payload=True)
    )
    if index_codec is not None:
        index_handle = iencoded_allgather(
            comm,
            [np.sort(v) for v in index_vectors],
            index_codec,
            tag=f"{tag}:indices",
            chunk_bytes=wire.chunk_bytes,
            charge_compute=wire.charge_codec_compute,
        )
    else:
        # wait() consumes only rank 0's (identical) gathered vector.
        index_handle = comm.iallgather(
            index_vectors, tag=f"{tag}:indices", shared_result=True
        )
    return PendingUniqueExchange(
        comm, grads, local, index_handle, tag, codec, wire=wire
    )


def unique_exchange(
    comm: Communicator,
    grads: list[SparseGrad],
    tag: str = "embedding",
    codec: WireCodec | None = None,
    wire: WirePolicy | None = None,
) -> UniqueExchangeResult:
    """Run the full 7-step exchange over per-rank sparse gradients.

    Parameters
    ----------
    comm:
        The simulated communicator (records bytes/time/memory).
    grads:
        Per-rank token-level sparse gradients (index = rank); dims must
        agree across ranks, token counts may differ.
    tag:
        Ledger tag distinguishing input- from output-embedding syncs.
    codec:
        Optional wire codec (Section III-C compression): the aligned
        value matrices are encoded before the ALLREDUCE — summation then
        happens on-wire in the encoded precision, as NCCL's FP16
        allreduce does — and decoded after.  Index traffic stays int64
        unless ``wire`` routes it through a lossless frame codec.
    wire:
        Optional :class:`~repro.core.wire.policy.WirePolicy` governing
        both collectives: its index codec (fixed or adaptively selected)
        compresses the step-3 gather, and its value codec fills in when
        ``codec`` is None.

    Returns
    -------
    UniqueExchangeResult
        The globally-reduced update; identical content for all ranks (a
        single object is returned since the simulator shares memory).

    Notes
    -----
    Step 7 (application) belongs to the optimizer: with unique rows the
    scatter-update is conflict-free.  This blocking form is exactly
    ``iunique_exchange(...).wait()`` — the staged variant with no work
    between issue and wait — so the two paths share one implementation
    and stay bit-identical.
    """
    return iunique_exchange(comm, grads, tag=tag, codec=codec, wire=wire).wait()
