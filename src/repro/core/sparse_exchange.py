"""Embedding-gradient exchange strategies: baseline vs the paper's.

Both strategies consume per-rank token-level
:class:`~repro.nn.parameter.SparseGrad` objects and return, for every
rank, the **globally-summed** gradient to apply — so swapping strategies
changes cost, never semantics (tested as the exchange-equivalence
invariant).

* :class:`AllGatherExchange` — the state-of-the-art baseline of Section
  II-B: every rank gathers all G dense K x D gradient blocks (plus their
  index vectors) and applies them locally.  Scratch memory and wire
  traffic are Θ(G·K·D); the paper shows this OOMs a 12 GB GPU past 24
  ranks.
* :class:`UniqueExchange` — the paper's Section III-A scheme, delegating
  to :func:`repro.core.unique.unique_exchange`: Θ(G·K + Ug·D).

Either can carry a :class:`~repro.core.compression.WireCodec` to apply
the Section III-C FP16 compression to the value traffic, and/or a
:class:`~repro.core.wire.policy.WirePolicy` routing the index gather
through the lossless frame codecs of :mod:`repro.core.wire` (so the
Θ(G·K) index traffic is charged at its *encoded* size).

Each strategy also exposes :meth:`ExchangeStrategy.iexchange`, the
non-blocking form used by the overlapped synchronizer: it *issues* every
collective whose payload is already known and returns a
:class:`PendingSparseExchange` whose ``wait()`` finishes the rest.
``exchange`` is always ``iexchange(...).wait()``, so blocking and
overlapped runs stay bit-identical.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..cluster.communicator import Communicator
from ..nn.parameter import SparseGrad
from .compression import WireCodec
from .unique import iunique_exchange
from .wire.policy import WirePolicy
from .wire.transfer import iencoded_allgather

__all__ = [
    "AllGatherExchange",
    "ExchangeStrategy",
    "PendingSparseExchange",
    "UniqueExchange",
]


class PendingSparseExchange:
    """A strategy exchange in flight; ``wait()`` yields per-rank grads.

    Wraps a finisher closure produced by a strategy's ``iexchange`` —
    the collectives that could be issued eagerly already have been; the
    finisher completes them (and any dependent collectives) and builds
    the per-rank result list.  ``wait`` is idempotent.
    """

    def __init__(self, finish: Callable[[], list[SparseGrad]]):
        self._finish = finish
        self._result: list[SparseGrad] | None = None

    def is_complete(self) -> bool:
        """Whether :meth:`wait` has run to completion."""
        return self._result is not None

    def wait(self) -> list[SparseGrad]:
        """Complete the exchange; return the summed grad per rank."""
        if self._result is None:
            self._result = self._finish()
        return self._result


class ExchangeStrategy:
    """Interface for embedding-gradient synchronization strategies."""

    #: Short name used in ledgers and benchmark tables.
    name: str = "abstract"

    def exchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> list[SparseGrad]:
        """Synchronize per-rank grads; return the summed grad per rank."""
        return self.iexchange(comm, grads, tag=tag).wait()

    def iexchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> PendingSparseExchange:
        """Start the exchange without blocking; issue what can be issued."""
        raise NotImplementedError


class AllGatherExchange(ExchangeStrategy):
    """Baseline: ALLGATHER all token-level gradient blocks (Section II-B).

    Every rank ends up holding all ``G*K`` (index, row) pairs and applies
    the concatenation locally; duplicate indices accumulate on apply.
    """

    name = "allgather"

    def __init__(
        self,
        codec: WireCodec | None = None,
        wire: WirePolicy | None = None,
    ):
        self.codec = codec
        self.wire = wire

    def iexchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> PendingSparseExchange:
        """Issue the index allgather now; the value allgather at wait.

        The value payload has no data dependency on the index gather,
        but issuing both up front would hold *both* allgathers' Θ(G·K·D)
        scratch live at once — worsening exactly the memory wall this
        baseline is shown to hit.  Deferring the value gather keeps one
        collective's scratch live at a time, matching the blocking
        schedule's peak footprint byte-for-byte.
        """
        if len(grads) != comm.world_size:
            raise ValueError(
                f"got {len(grads)} gradients for world size {comm.world_size}"
            )
        dims = {g.dim for g in grads}
        if len(dims) != 1:
            raise ValueError(f"inconsistent gradient dims across ranks: {dims}")

        index_vectors = [g.indices.astype(np.int64) for g in grads]
        # The baseline pairs index order with value rows, so the index
        # vectors must cross the wire unsorted (sorted_payload=False
        # makes the adaptive estimate honest about that).
        index_codec = (
            None
            if self.wire is None
            else self.wire.resolve_index_codec(
                index_vectors, comm, sorted_payload=False
            )
        )
        if index_codec is not None:
            idx_handle = iencoded_allgather(
                comm,
                index_vectors,
                index_codec,
                tag=f"{tag}:indices",
                chunk_bytes=self.wire.chunk_bytes,
                charge_compute=self.wire.charge_codec_compute,
            )
        else:
            idx_handle = comm.iallgather(index_vectors, tag=f"{tag}:indices")

        def finish() -> list[SparseGrad]:
            gathered_idx = idx_handle.wait()
            codec = self.codec
            if codec is None and self.wire is not None:
                codec = self.wire.resolve_value_codec(
                    [g.values for g in grads], comm
                )
            if codec is not None:
                encoded = [codec.encode(g.values) for g in grads]
                gathered_val = comm.iallgather(
                    encoded,
                    tag=f"{tag}:values",
                    payload_bytes=max(g.values.nbytes for g in grads),
                ).wait()
                values = codec.decode(gathered_val[0], grads[0].values.dtype)
            else:
                gathered_val = comm.iallgather(
                    [g.values for g in grads], tag=f"{tag}:values"
                ).wait()
                values = gathered_val[0]
            result = SparseGrad(indices=gathered_idx[0], values=values)
            # Ranks share the simulator's memory; hand each an equal view.
            return [result for _ in range(comm.world_size)]  # mesh-ok: flat-path result fan-out, one view per rank

        return PendingSparseExchange(finish)


class UniqueExchange(ExchangeStrategy):
    """The paper's uniqueness technique (Section III-A)."""

    name = "unique"

    def __init__(
        self,
        codec: WireCodec | None = None,
        wire: WirePolicy | None = None,
    ):
        self.codec = codec
        self.wire = wire

    def iexchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> PendingSparseExchange:
        """Issue the index allgather now; the value allreduce at wait."""
        pending = iunique_exchange(
            comm, grads, tag=tag, codec=self.codec, wire=self.wire
        )

        def finish() -> list[SparseGrad]:
            sparse = pending.wait().as_sparse_grad()
            return [sparse for _ in range(comm.world_size)]  # mesh-ok: flat-path result fan-out, one view per rank

        return PendingSparseExchange(finish)
