"""Embedding-gradient exchange strategies: baseline vs the paper's.

Both strategies consume per-rank token-level
:class:`~repro.nn.parameter.SparseGrad` objects and return, for every
rank, the **globally-summed** gradient to apply — so swapping strategies
changes cost, never semantics (tested as the exchange-equivalence
invariant).

* :class:`AllGatherExchange` — the state-of-the-art baseline of Section
  II-B: every rank gathers all G dense K x D gradient blocks (plus their
  index vectors) and applies them locally.  Scratch memory and wire
  traffic are Θ(G·K·D); the paper shows this OOMs a 12 GB GPU past 24
  ranks.
* :class:`UniqueExchange` — the paper's Section III-A scheme, delegating
  to :func:`repro.core.unique.unique_exchange`: Θ(G·K + Ug·D).

Either can carry a :class:`~repro.core.compression.WireCodec` to apply
the Section III-C FP16 compression to the value traffic.
"""

from __future__ import annotations

import numpy as np

from ..cluster.communicator import Communicator
from ..nn.parameter import SparseGrad
from .compression import WireCodec
from .unique import unique_exchange

__all__ = ["ExchangeStrategy", "AllGatherExchange", "UniqueExchange"]


class ExchangeStrategy:
    """Interface for embedding-gradient synchronization strategies."""

    #: Short name used in ledgers and benchmark tables.
    name: str = "abstract"

    def exchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> list[SparseGrad]:
        """Synchronize per-rank grads; return the summed grad per rank."""
        raise NotImplementedError


class AllGatherExchange(ExchangeStrategy):
    """Baseline: ALLGATHER all token-level gradient blocks (Section II-B).

    Every rank ends up holding all ``G*K`` (index, row) pairs and applies
    the concatenation locally; duplicate indices accumulate on apply.
    """

    name = "allgather"

    def __init__(self, codec: WireCodec | None = None):
        self.codec = codec

    def exchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> list[SparseGrad]:
        if len(grads) != comm.world_size:
            raise ValueError(
                f"got {len(grads)} gradients for world size {comm.world_size}"
            )
        dims = {g.dim for g in grads}
        if len(dims) != 1:
            raise ValueError(f"inconsistent gradient dims across ranks: {dims}")

        gathered_idx = comm.allgather(
            [g.indices.astype(np.int64) for g in grads], tag=f"{tag}:indices"
        )
        if self.codec is not None:
            wire = [self.codec.encode(g.values) for g in grads]
            gathered_val = comm.allgather(wire, tag=f"{tag}:values")
            dtype = grads[0].values.dtype
            values = self.codec.decode(gathered_val[0], dtype)
        else:
            gathered_val = comm.allgather(
                [g.values for g in grads], tag=f"{tag}:values"
            )
            values = gathered_val[0]

        result = SparseGrad(indices=gathered_idx[0], values=values)
        # Ranks share the simulator's memory; hand each an equal view.
        return [result for _ in range(comm.world_size)]


class UniqueExchange(ExchangeStrategy):
    """The paper's uniqueness technique (Section III-A)."""

    name = "unique"

    def __init__(self, codec: WireCodec | None = None):
        self.codec = codec

    def exchange(
        self, comm: Communicator, grads: list[SparseGrad], tag: str = "embedding"
    ) -> list[SparseGrad]:
        result = unique_exchange(comm, grads, tag=tag, codec=self.codec)
        sparse = result.as_sparse_grad()
        return [sparse for _ in range(comm.world_size)]
