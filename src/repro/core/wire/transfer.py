"""Chunked, pipelined, codec-encoded index allgather.

This is the piece that turns compression from a serialized prologue
into an overlappable stage of the transfer.  A large index vector is
split into chunks; for each chunk, every rank's encode cost is recorded
on its *compute* stream and then the chunk's frames are issued as one
allgather on the *comm* stream.  The PR-2 :class:`Timeline` contention
rules do the rest: chunk ``i+1``'s encode runs while chunk ``i`` is on
the wire (a collective starts no earlier than its issuers' compute
clocks, and the shared link serializes chunks in issue order), so the
schedule realizes ``encode(i+1) ∥ transmit(i)`` without any special
machinery.  At :meth:`PendingEncodedGather.wait`, each chunk is
completed and its decode cost recorded — decode of chunk ``i`` likewise
overlaps transmit of chunks ``> i``.

The analytic model of this schedule lives in
:func:`repro.perf.codec_model.pipelined_transfer_time`; the overlap
benchmark gates the two against each other.

Because every rank contributes exactly one self-delimiting frame per
chunk, the gathered buffer decodes into per-rank, per-chunk parts that
reassemble to each rank's original vector **in order** — the helper is
safe for order-sensitive consumers (the baseline allgather pairs index
order with value rows), not just for ``np.unique``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .codecs import decode_frames
from .cost import CodecThroughput, codec_throughput

__all__ = ["PendingEncodedGather", "iencoded_allgather", "wire_instruments"]


def wire_instruments(metrics, codec_name: str):
    """Per-codec wire instruments from a telemetry registry (or ``None``).

    Returns a dict of bound metric handles — encode/decode/transfer
    seconds histograms and encode/decode/frame byte counters, all
    labelled ``codec=<name>`` — or ``None`` when the communicator
    carries no registry.  The histograms feed
    :func:`repro.perf.codec_model.throughput_from_metrics`, which
    recovers effective bytes-per-second from what actually ran.
    """
    if metrics is None:
        return None
    label = {"codec": codec_name}
    return {
        "encode_s": metrics.histogram(
            "repro_wire_encode_seconds",
            "Per-rank codec encode seconds, by chunk",
            labelnames=("codec",),
        ),
        "decode_s": metrics.histogram(
            "repro_wire_decode_seconds",
            "Per-rank codec decode seconds, by chunk",
            labelnames=("codec",),
        ),
        "transfer_s": metrics.histogram(
            "repro_wire_transfer_seconds",
            "On-wire seconds of each encoded chunk collective",
            labelnames=("codec",),
        ),
        "encode_bytes": metrics.counter(
            "repro_wire_encode_bytes_total",
            "Logical bytes pushed through codec encode",
            labelnames=("codec",),
        ),
        "decode_bytes": metrics.counter(
            "repro_wire_decode_bytes_total",
            "Logical bytes recovered by codec decode",
            labelnames=("codec",),
        ),
        "frame_bytes": metrics.counter(
            "repro_wire_frame_bytes_total",
            "Encoded frame bytes put on the wire",
            labelnames=("codec",),
        ),
        "labels": label,
    }


class PendingEncodedGather:
    """An in-flight chunked encoded allgather.

    Produced by :func:`iencoded_allgather`; :meth:`wait` completes the
    chunk collectives in issue order, charges decode compute, and
    returns the same thing a raw ``iallgather(...).wait()`` would: one
    copy per receiving rank of the rank-order concatenation of every
    rank's decoded vector, original element order.  Idempotent.
    """

    def __init__(
        self,
        comm,
        handles: list,
        chunk_sizes: list[list[int]],
        dtype: np.dtype,
        throughput: CodecThroughput | None,
        instruments: dict | None = None,
    ):
        self._comm = comm
        self._handles = handles
        self._chunk_sizes = chunk_sizes
        self._dtype = np.dtype(dtype)
        self._throughput = throughput
        self._instruments = instruments
        self._result: list[np.ndarray] | None = None

    def is_complete(self) -> bool:
        """Whether :meth:`wait` has run to completion."""
        return self._result is not None

    def wait(self) -> list[np.ndarray]:
        """Complete all chunk gathers; return allgather-shaped results."""
        if self._result is not None:
            return self._result
        world = self._comm.world_size
        per_rank: list[list[np.ndarray]] = [[] for _ in range(world)]
        ins = self._instruments
        for handle, sizes in zip(self._handles, self._chunk_sizes):
            buf = handle.wait()[0]
            if self._throughput is not None:
                decoded_bytes = sum(sizes) * self._dtype.itemsize
                decode_s = self._throughput.decode_seconds(decoded_bytes)
                for rank in range(world):
                    self._comm.timeline.record_compute(
                        rank, decode_s, name="codec:decode"
                    )
                    if ins is not None:
                        ins["decode_s"].observe(decode_s, **ins["labels"])
                        ins["decode_bytes"].inc(decoded_bytes, **ins["labels"])
            decoded = decode_frames(buf, self._dtype)
            bounds = np.cumsum(sizes)[:-1]
            for rank, part in enumerate(np.split(decoded, bounds)):
                per_rank[rank].append(part)
        # A raw allgather hands every receiving rank the rank-order
        # concatenation; reassemble the chunk-interleaved wire order
        # back into that contract so callers can swap the two freely.
        full = np.concatenate([np.concatenate(parts) for parts in per_rank])
        self._result = [full.copy() for _ in range(world)]
        return self._result


def iencoded_allgather(
    comm,
    arrays: Sequence[np.ndarray],
    codec,
    tag: str = "",
    chunk_bytes: int | None = None,
    throughput: CodecThroughput | None = None,
    charge_compute: bool = True,
) -> PendingEncodedGather:
    """Issue a chunked, codec-encoded allgather of per-rank index vectors.

    Parameters
    ----------
    comm:
        The communicator (or a sanitizing/chaos wrapper).  Wire bytes
        and transfer time are charged from the **encoded** frame sizes;
        the logical (pre-codec) bytes ride along as ``payload_bytes`` so
        the ledger can report the measured compression factor.
    arrays:
        One 1-D int32/int64 vector per rank (ragged lengths allowed).
        Order is preserved end to end; sort beforehand if the consumer
        is order-insensitive and sorted data compresses better.
    codec:
        A frame codec (``decode`` must handle frame concatenation —
        any :class:`~repro.core.wire.codecs.LosslessIntCodec`).
    tag:
        Ledger tag for the chunk collectives.
    chunk_bytes:
        Split each rank's vector into chunks of at most this many
        *logical* bytes, pipelining encode/transmit/decode (see module
        docstring).  None sends one chunk (no pipelining).
    throughput:
        Codec throughput used to charge encode/decode compute; defaults
        to the :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS`
        entry for ``codec.name``.
    charge_compute:
        When False, no codec compute is recorded on the timeline (pure
        byte-accounting mode).
    """
    if len(arrays) != comm.world_size:
        raise ValueError(
            f"got {len(arrays)} per-rank arrays for a "
            f"{comm.world_size}-rank communicator"
        )
    dtype = arrays[0].dtype
    itemsize = dtype.itemsize
    max_len = max(a.size for a in arrays)
    if chunk_bytes is not None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        elems = max(1, chunk_bytes // itemsize)
    else:
        elems = max(1, max_len)
    n_chunks = max(1, -(-max_len // elems))
    tp = (
        (throughput if throughput is not None else codec_throughput(codec.name))
        if charge_compute
        else None
    )

    ins = wire_instruments(getattr(comm, "metrics", None), codec.name)
    handles = []
    chunk_sizes: list[list[int]] = []
    with comm.ledger.scope(f"wire-{codec.name}"):
        for c in range(n_chunks):
            lo, hi = c * elems, (c + 1) * elems
            chunks = [a[lo:hi] for a in arrays]
            sizes = [int(ch.size) for ch in chunks]
            if tp is not None:
                for rank, ch in enumerate(chunks):
                    encode_s = tp.encode_seconds(ch.size * itemsize)
                    comm.timeline.record_compute(
                        rank, encode_s, name="codec:encode"
                    )
                    if ins is not None:
                        ins["encode_s"].observe(encode_s, **ins["labels"])
                        ins["encode_bytes"].inc(
                            ch.size * itemsize, **ins["labels"]
                        )
            frames = [codec.encode(ch) for ch in chunks]
            handle = comm.iallgather(
                frames,
                tag=f"{tag}[{c}]" if n_chunks > 1 else tag,
                payload_bytes=max(sizes) * itemsize,
            )
            if ins is not None:
                ins["frame_bytes"].inc(
                    sum(len(f) for f in frames), **ins["labels"]
                )
                ticket = getattr(handle, "ticket", None)
                if ticket is not None:
                    ins["transfer_s"].observe(
                        ticket.end - ticket.start, **ins["labels"]
                    )
            handles.append(handle)
            chunk_sizes.append(sizes)
    return PendingEncodedGather(comm, handles, chunk_sizes, dtype, tp, ins)
