"""Wire policy: what to compress, with which codec, in which chunks.

:class:`WirePolicy` is the single object configuration layers hand to
the exchange strategies and the gradient synchronizer.  It separates
the two codec roles the comm stack actually has:

* the **value codec** rides an allreduce, so it must produce a wire
  format that sums (identity / FP16);
* the **index codec** rides the uniqueness allgather, so it must
  produce self-delimiting frames that survive concatenation (the
  lossless integer codecs).

Either slot may instead be resolved per message by an
:class:`~repro.core.wire.adaptive.AdaptiveCodecSelector` ("auto").
Spec strings accepted by :meth:`WirePolicy.from_spec`::

    none          no compression anywhere (explicit baseline)
    fp16          FP16 value traffic, raw indices (the paper's §III-C)
    delta         raw values, delta-bitpacked indices
    rle           raw values, run-length indices
    entropy       raw values, entropy-coded (Huffman) indices
    fp16+delta    both (also fp16+rle, fp16+entropy, etc.)
    auto          adaptive per-message selection for both roles

All slots default to None, so a default-constructed policy is inert and
every pre-existing code path is byte-identical with or without one.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from ..compression import WireCodec
from .adaptive import AdaptiveCodecSelector
from .registry import available_codecs, make_codec

__all__ = ["WirePolicy"]

_VALUE_SPECS = {"identity", "fp16"}
_INDEX_SPECS = {"delta", "rle", "entropy"}


@dataclass(frozen=True)
class WirePolicy:
    """Codec/chunking policy for one training run's wire traffic.

    Attributes
    ----------
    value_codec, index_codec:
        Fixed codecs for the two roles; None sends raw.
    selector:
        Adaptive per-message selector consulted when the corresponding
        fixed codec is None.
    chunk_bytes:
        Chunk size (logical bytes per rank) for the pipelined index
        gather; None disables chunking.
    charge_codec_compute:
        Record encode/decode time on the simulated compute streams
        (default).  Off gives pure byte accounting.
    """

    value_codec: WireCodec | None = None
    index_codec: WireCodec | None = None
    selector: AdaptiveCodecSelector | None = None
    chunk_bytes: int | None = None
    charge_codec_compute: bool = True

    def __post_init__(self) -> None:
        if self.chunk_bytes is not None and self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")

    @classmethod
    def from_spec(
        cls, spec: str, chunk_bytes: int | None = None
    ) -> "WirePolicy":
        """Build a policy from a ``--wire-codec`` spec string."""
        parts = [p.strip() for p in spec.split("+") if p.strip()]
        if not parts:
            raise ValueError("empty wire-codec spec")
        if "auto" in parts:
            if len(parts) > 1:
                raise ValueError("'auto' cannot be combined with other codecs")
            return cls(
                selector=AdaptiveCodecSelector(), chunk_bytes=chunk_bytes
            )
        if parts == ["none"]:
            return cls(chunk_bytes=chunk_bytes)
        value: WireCodec | None = None
        index: WireCodec | None = None
        for part in parts:
            base = part.partition(":")[0]
            if base in _VALUE_SPECS:
                if value is not None:
                    raise ValueError(f"duplicate value codec in spec {spec!r}")
                value = make_codec(part)
            elif base in _INDEX_SPECS:
                if index is not None:
                    raise ValueError(f"duplicate index codec in spec {spec!r}")
                index = make_codec(part)
            else:
                raise ValueError(
                    f"unknown wire-codec {part!r}; expected none, auto, or "
                    f"'+'-joined names from: {', '.join(available_codecs())}"
                )
        return cls(value_codec=value, index_codec=index, chunk_bytes=chunk_bytes)

    @property
    def is_inert(self) -> bool:
        """True when the policy can never alter any payload."""
        return (
            self.value_codec is None
            and self.index_codec is None
            and self.selector is None
            and self.chunk_bytes is None
        )

    def resolve_value_codec(
        self, arrays: Sequence[np.ndarray], comm
    ) -> WireCodec | None:
        """Codec for one allreduce payload (fixed slot, else selector)."""
        if self.value_codec is not None:
            return self.value_codec
        if self.selector is not None:
            return self.selector.select_value(arrays, comm)
        return None

    def resolve_index_codec(
        self,
        arrays: Sequence[np.ndarray],
        comm,
        sorted_payload: bool = True,
    ) -> WireCodec | None:
        """Codec for one index-allgather payload."""
        if self.index_codec is not None:
            return self.index_codec
        if self.selector is not None:
            return self.selector.select_index(
                arrays, comm, sorted_payload=sorted_payload
            )
        return None

    def sanitized(self) -> "WirePolicy":
        """A copy whose fixed codecs are wrapped by the runtime sanitizer.

        Imported lazily: ``repro.analysis`` sits above ``repro.core`` in
        the layering, so the dependency must not be at module level.
        """
        from ...analysis.sanitizer import sanitize_codec

        return replace(
            self,
            value_codec=sanitize_codec(self.value_codec),
            index_codec=sanitize_codec(self.index_codec),
        )
