"""Codec registry and composable codec pipelines.

The registry maps short stable names ("identity", "fp16", "delta",
"rle") to codec factories, so configuration layers (``TrainConfig``,
the CLI's ``--wire-codec``) can name codecs without importing them.
Specs support a single numeric argument after a colon — ``"fp16:256"``
builds ``Fp16Codec(256.0)``, ``"delta:128"`` a 128-delta-block packer.

:class:`CodecPipeline` composes codecs into one :class:`WireCodec`:
``encode`` applies the stages left to right, ``decode`` unwinds them
right to left.  Chaining decode requires knowing each intermediate
dtype, which is why :meth:`WireCodec.wire_dtype` exists — every stage
except the last must report its output dtype.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..compression import Fp16Codec, IdentityCodec, WireCodec
from .codecs import DeltaBitpackCodec, EntropyCodec, RunLengthCodec

__all__ = [
    "CodecPipeline",
    "available_codecs",
    "make_codec",
    "register_codec",
]

_REGISTRY: dict[str, Callable[..., WireCodec]] = {}


def register_codec(name: str, factory: Callable[..., WireCodec]) -> None:
    """Register a codec factory under a short stable name.

    Re-registering an existing name raises — silently shadowing a
    built-in codec would change what every spec string means.
    """
    if not name or any(c in name for c in "/+:"):
        raise ValueError(
            f"codec name {name!r} invalid: names must be non-empty and "
            "free of '/', '+', ':' (reserved by scopes and spec syntax)"
        )
    if name in _REGISTRY:
        raise ValueError(f"codec {name!r} is already registered")
    _REGISTRY[name] = factory


def available_codecs() -> tuple[str, ...]:
    """Registered codec names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_codec(spec: str) -> WireCodec:
    """Build a codec from a spec string: ``name`` or ``name:number``.

    The optional numeric argument is passed positionally to the factory
    (``fp16``'s scale, ``delta``'s block size).
    """
    name, _, arg = spec.partition(":")
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}"
        )
    if not arg:
        return factory()
    try:
        value: float | int = int(arg)
    except ValueError:
        value = float(arg)
    return factory(value)


register_codec("identity", IdentityCodec)
register_codec("fp16", lambda scale=512.0: Fp16Codec(float(scale)))
register_codec("delta", lambda block=None: (
    DeltaBitpackCodec(int(block)) if block else DeltaBitpackCodec()
))
register_codec("rle", RunLengthCodec)
register_codec("entropy", EntropyCodec)


class CodecPipeline(WireCodec):
    """Compose codecs: encode left-to-right, decode right-to-left.

    Every stage except the last must implement
    :meth:`WireCodec.wire_dtype` (return a non-None dtype), so the
    pipeline can reconstruct the intermediate dtypes a chained decode
    needs.  The pipeline is lossless iff every stage is, and
    data-dependent if any stage is.
    """

    def __init__(self, stages: list[WireCodec] | tuple[WireCodec, ...]):
        if not stages:
            raise ValueError("a codec pipeline needs at least one stage")
        self.stages = tuple(stages)
        self.lossless = all(s.lossless for s in self.stages)
        self.data_dependent = any(s.data_dependent for s in self.stages)
        # Wire-domain summation survives composition only if every
        # stage's slots stay positional; any frame stage breaks it.
        self.summable = all(
            getattr(s, "summable", False) for s in self.stages
        )

    @property
    def name(self) -> str:
        """Stage names joined with '+' (ledger-scope safe)."""
        return "+".join(s.name for s in self.stages)

    def wire_dtype(self, dtype: np.dtype) -> np.dtype | None:
        """Output dtype of the full chain; None if any stage is opaque."""
        current: np.dtype | None = np.dtype(dtype)
        for stage in self.stages:
            if current is None:
                return None
            current = stage.wire_dtype(current)
        return current

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Run the payload through every stage in order."""
        for stage in self.stages:
            arr = stage.encode(arr)
        return arr

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Unwind the stages, reconstructing intermediate dtypes."""
        dtypes: list[np.dtype] = [np.dtype(dtype)]
        for stage in self.stages[:-1]:
            nxt = stage.wire_dtype(dtypes[-1])
            if nxt is None:
                raise ValueError(
                    f"pipeline stage {stage.name!r} does not report its "
                    "wire dtype; a chained decode cannot be reconstructed"
                )
            dtypes.append(nxt)
        for stage, stage_dtype in zip(reversed(self.stages), reversed(dtypes)):
            arr = stage.decode(arr, stage_dtype)
        return arr
