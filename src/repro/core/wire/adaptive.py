"""Adaptive per-message codec selection from the crossover cost model.

``--wire-codec=auto`` routes every collective's payload through
:class:`AdaptiveCodecSelector`, which picks identity / FP16 /
delta-bitpack / run-length per message from three cheap signals:

* **message size** — below ``min_bytes`` the link's latency term
  dominates and codec overhead can only lose;
* **dtype** — float payloads can take the FP16 value codec (summable on
  the wire, so valid under an allreduce); integer index payloads take a
  lossless frame codec (allgather only — frames cannot be summed);
* **compressibility** — each candidate codec's
  ``estimate_nbytes`` probes a small sample, and the serial crossover
  inequality of :mod:`repro.core.wire.cost` decides whether the
  estimated byte saving pays for the codec time on this fabric.

Selection is made once per collective from the **full per-rank list**
(never per rank): all ranks must put the same wire dtype on a
collective or the run desynchronizes — the runtime sanitizer's dtype
uniformity check enforces exactly that.

The throughput table the crossover test consults can be **learned**:
:meth:`AdaptiveCodecSelector.learn_from_metrics` folds the measured
bytes-per-second of PR-5's ``wire_instruments`` telemetry (via
:func:`repro.core.wire.cost.throughput_from_metrics`) back into
``throughputs``, replacing the static defaults with what this run's
codecs actually achieved.  Learning must stay **rank-deterministic**:
in the SPMD simulator every rank reads the same registry, so every
rank learns the same table and keeps picking the same codec — the
lockstep differential tests pin this.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ...cluster.collectives import ring_allgather_time
from ...cluster.interconnect import LinkSpec
from ..compression import Fp16Codec, WireCodec
from .codecs import DeltaBitpackCodec, EntropyCodec, RunLengthCodec
from .cost import (
    DEFAULT_CODEC_THROUGHPUTS,
    CodecThroughput,
    codec_throughput,
    compressed_transfer_seconds,
    throughput_from_metrics,
)

__all__ = ["AdaptiveCodecSelector"]


@dataclass
class AdaptiveCodecSelector:
    """Pick a codec per message; None means "send raw".

    Parameters
    ----------
    min_bytes:
        Messages smaller than this (per rank) are never encoded —
        latency-bound transfers cannot amortize codec overhead.
    scale:
        Compression-scaling factor for the FP16 value codec.
    sample:
        Elements probed by the index codecs' size estimators.
    throughputs:
        Optional calibrated throughput table (``codec.name`` ->
        :class:`~repro.core.wire.cost.CodecThroughput`); defaults to the
        deterministic constants.
    """

    min_bytes: int = 4096
    scale: float = 512.0
    sample: int = 1024
    throughputs: dict[str, CodecThroughput] | None = None
    _fp16: Fp16Codec = field(init=False, repr=False)
    _index_candidates: tuple[WireCodec, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.min_bytes < 0:
            raise ValueError("min_bytes must be non-negative")
        self._fp16 = Fp16Codec(self.scale)
        self._index_candidates = (
            DeltaBitpackCodec(),
            RunLengthCodec(),
            EntropyCodec(),
        )

    @property
    def name(self) -> str:
        """Spec-style name ("auto")."""
        return "auto"

    def learn_from_metrics(
        self, registry, codec_names: Sequence[str] | None = None
    ) -> dict[str, CodecThroughput]:
        """Feed measured wire telemetry back into the throughput table.

        For each candidate codec name (every codec this selector can
        pick, unless ``codec_names`` narrows it), recover the measured
        bytes-per-second from the ``repro_wire_*`` counters/histograms
        the wire layer recorded into ``registry``, and install it in
        ``self.throughputs`` — seeded from a copy of the previous table
        (or :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS`) so
        codecs that saw no traffic keep their prior estimates.  Returns
        the dict of entries actually learned this call.

        Deterministic across ranks by construction: the simulator's
        single metrics registry is shared SPMD state, so the learned
        table — and therefore every subsequent :meth:`select_value` /
        :meth:`select_index` decision — is identical on all ranks.
        """
        if codec_names is None:
            codec_names = tuple(
                c.name for c in self._index_candidates
            ) + (self._fp16.name,)
        table = dict(
            self.throughputs
            if self.throughputs is not None
            else DEFAULT_CODEC_THROUGHPUTS
        )
        learned: dict[str, CodecThroughput] = {}
        for name in codec_names:
            try:
                tp = throughput_from_metrics(registry, name)
            except (ValueError, KeyError):
                continue  # codec recorded no traffic this run
            table[name] = tp
            learned[name] = tp
        self.throughputs = table
        return learned

    def select_value(
        self, arrays: Sequence[np.ndarray], comm
    ) -> WireCodec | None:
        """Codec for summed *value* traffic (allreduce-compatible).

        Only FP16 qualifies: its wire format sums meaningfully (NCCL's
        half-precision allreduce does the same), while byte-frame
        codecs do not survive an on-wire reduction.
        """
        a = arrays[0]
        if not np.issubdtype(a.dtype, np.floating) or a.dtype == np.float16:
            return None
        if a.nbytes < self.min_bytes:
            return None
        link = comm.fabric.ring_link(comm.world_size)
        tp = codec_throughput("fp16", self.throughputs)
        encoded = a.nbytes // 2
        if compressed_transfer_seconds(
            a.nbytes, encoded, comm.world_size, link, tp
        ) < _raw_seconds(a.nbytes, comm.world_size, link):
            return self._fp16
        return None

    def select_index(
        self, arrays: Sequence[np.ndarray], comm, sorted_payload: bool = True
    ) -> WireCodec | None:
        """Codec for gathered *index* traffic (allgather only).

        Estimates each lossless candidate's encoded size on the largest
        rank's vector (sorted copy when the caller will sort before
        encoding) and keeps the fastest candidate iff it beats sending
        raw int64 under the serial crossover model.
        """
        a = max(arrays, key=lambda x: x.nbytes)
        if a.dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            return None
        if a.nbytes < self.min_bytes:
            return None
        probe = np.sort(a) if sorted_payload else a
        link = comm.fabric.ring_link(comm.world_size)
        raw_s = _raw_seconds(a.nbytes, comm.world_size, link)
        best: WireCodec | None = None
        best_s = raw_s
        for codec in self._index_candidates:
            est = codec.estimate_nbytes(probe, sample=self.sample)
            tp = codec_throughput(codec.name, self.throughputs)
            t = compressed_transfer_seconds(
                a.nbytes, est, comm.world_size, link, tp
            )
            if t < best_s:
                best, best_s = codec, t
        return best


def _raw_seconds(nbytes: int, world: int, link: LinkSpec) -> float:
    """Ring-allgather seconds for an unencoded contribution."""
    return ring_allgather_time(world, nbytes, link)
