"""Per-codec throughput constants and the compression crossover model.

Compression only helps when the wire time it saves exceeds the compute
time it costs — the same argument ZipCCL makes for lossless collective
compression, and the reason the adaptive selector exists.  This module
holds the primitive pieces shared by the selector (which must live in
``core`` below the exchange layer) and the richer pipelined models of
:mod:`repro.perf.codec_model` (which build on them):

* :class:`CodecThroughput` — calibrated encode/decode bytes-per-second
  for one codec, measured against *logical* (pre-encoding) bytes so the
  charge is independent of how well the data compressed;
* :data:`DEFAULT_CODEC_THROUGHPUTS` — deterministic defaults modeling
  accelerator-class (de)compression kernels on the *simulated* GPUs,
  used when no calibration has run.  These are simulated-hardware
  constants, like the interconnect's bandwidth/latency — NOT the speed
  of this repo's numpy reference implementations, which are two orders
  of magnitude slower and would misstate the crossover for the modeled
  cluster.  :func:`repro.perf.codec_model.calibrate_codec_throughput`
  measures the host-numpy values when a table should reflect wall-clock
  reality instead;
* :func:`compressed_transfer_seconds` / :func:`compression_wins` — the
  serial (unpipelined) crossover inequality
  ``encode + transfer(encoded) + decode < transfer(raw)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ...cluster.collectives import ring_allgather_time
from ...cluster.interconnect import LinkSpec

__all__ = [
    "CodecThroughput",
    "DEFAULT_CODEC_THROUGHPUTS",
    "codec_throughput",
    "compressed_transfer_seconds",
    "compression_wins",
    "slowest_throughput",
    "throughput_from_metrics",
]


@dataclass(frozen=True)
class CodecThroughput:
    """Encode/decode throughput of one codec, in logical bytes/second.

    "Logical" means the un-encoded payload size: encoding 8 MB of int64
    indices at ``encode_bps=2e9`` charges 4 ms to the compute stream no
    matter how small the frames came out.
    """

    encode_bps: float
    decode_bps: float

    def __post_init__(self) -> None:
        if self.encode_bps <= 0 or self.decode_bps <= 0:
            raise ValueError("throughputs must be positive")

    def encode_seconds(self, logical_bytes: int) -> float:
        """Compute-stream seconds to encode ``logical_bytes``."""
        return logical_bytes / self.encode_bps

    def decode_seconds(self, logical_bytes: int) -> float:
        """Compute-stream seconds to decode back ``logical_bytes``."""
        return logical_bytes / self.decode_bps


#: Modeled accelerator kernel throughputs, keyed by ``codec.name``.
#: Identity is a device copy; FP16 is one memory-bound vectorized cast;
#: the frame codecs sit in the range nvcomp-style delta/bitpack/RLE
#: cascades report on data-center GPUs — fast enough that against a
#: 16 GB/s inter-node link the codec is never the bottleneck for
#: bandwidth-bound messages, which is the regime where lossless
#: collective compression pays at all.
DEFAULT_CODEC_THROUGHPUTS: dict[str, CodecThroughput] = {
    "identity": CodecThroughput(encode_bps=400e9, decode_bps=400e9),
    "fp16": CodecThroughput(encode_bps=150e9, decode_bps=200e9),
    "delta": CodecThroughput(encode_bps=50e9, decode_bps=80e9),
    "rle": CodecThroughput(encode_bps=80e9, decode_bps=100e9),
    "entropy": CodecThroughput(encode_bps=30e9, decode_bps=40e9),
}


def slowest_throughput(
    throughputs: dict[str, CodecThroughput],
) -> CodecThroughput:
    """The most conservative entry of a throughput table.

    "Slowest" compares each entry's worse direction, so an asymmetric
    codec (fast encode, slow decode) is ranked by its bottleneck.
    """
    if not throughputs:
        raise ValueError("throughput table is empty")
    return min(
        throughputs.values(),
        key=lambda tp: min(tp.encode_bps, tp.decode_bps),
    )


def codec_throughput(
    name: str,
    throughputs: dict[str, CodecThroughput] | None = None,
) -> CodecThroughput:
    """Look up a codec's throughput, falling back to the slowest entry.

    Unknown codecs (e.g. a user-registered one) inherit the slowest
    entry of the table actually in use rather than raising — an
    unmeasured codec should look expensive, not free.  Before the fix
    this fell back to ``DEFAULT_CODEC_THROUGHPUTS["delta"]`` even when a
    *calibrated* table was supplied, silently crediting unknown codecs
    with accelerator-class default speed instead of the calibrated
    table's own worst case.  An empty calibrated table degrades to the
    slowest default.
    """
    table = DEFAULT_CODEC_THROUGHPUTS if throughputs is None else throughputs
    try:
        return table[name]
    except KeyError:
        if not table:
            table = DEFAULT_CODEC_THROUGHPUTS
        return slowest_throughput(table)


def throughput_from_metrics(registry, codec_name: str) -> CodecThroughput:
    """Recover a codec's effective throughput from run telemetry.

    Divides the ``repro_wire_encode_bytes_total`` /
    ``repro_wire_decode_bytes_total`` counters by the summed
    ``repro_wire_*_seconds`` histograms that the wire layer
    (:func:`repro.core.wire.transfer.iencoded_allgather` and the fused
    collectives of :mod:`repro.core.wire.fused`) records for
    ``codec_name`` — i.e. the *measured* bytes-per-second of what
    actually ran, the profile-driven input ZipCCL-style codec selection
    wants instead of a modelled constant.  Also re-exported as
    :func:`repro.perf.throughput_from_metrics`; the implementation lives
    here so :meth:`AdaptiveCodecSelector.learn_from_metrics
    <repro.core.wire.adaptive.AdaptiveCodecSelector.learn_from_metrics>`
    can feed the measurement back without ``core`` importing ``perf``.

    Raises :class:`ValueError` when the run recorded no encode or
    decode activity for the codec.
    """
    encode_bytes = registry.get("repro_wire_encode_bytes_total").value(
        codec=codec_name
    )
    decode_bytes = registry.get("repro_wire_decode_bytes_total").value(
        codec=codec_name
    )
    encode_s = registry.get("repro_wire_encode_seconds").value(
        codec=codec_name
    ).sum
    decode_s = registry.get("repro_wire_decode_seconds").value(
        codec=codec_name
    ).sum
    if encode_s <= 0 or decode_s <= 0:
        raise ValueError(
            f"no recorded encode/decode activity for codec {codec_name!r}"
        )
    return CodecThroughput(
        encode_bps=encode_bytes / encode_s,
        decode_bps=decode_bytes / decode_s,
    )


@lru_cache(maxsize=4096)
def compressed_transfer_seconds(
    logical_bytes: int,
    encoded_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
) -> float:
    """Serial (unpipelined) time of one encoded ring allgather.

    Every rank encodes its own ``logical_bytes`` contribution, the ring
    moves the encoded frames, and every rank decodes the full gathered
    ``world * logical_bytes``.  The chunked pipelined schedule of
    :func:`repro.perf.codec_model.pipelined_transfer_time` beats this;
    the serial figure is the cheap upper bound the adaptive selector's
    crossover test uses.  Memoized — pure in its (hashable) arguments,
    and the selector re-evaluates the same key for every bucket.
    """
    return (
        throughput.encode_seconds(logical_bytes)
        + ring_allgather_time(world, encoded_bytes, link)
        + throughput.decode_seconds(world * logical_bytes)
    )


@lru_cache(maxsize=4096)
def compression_wins(
    logical_bytes: int,
    encoded_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
) -> bool:
    """Whether encoding beats shipping raw bytes, codec cost included."""
    raw = ring_allgather_time(world, logical_bytes, link)
    return (
        compressed_transfer_seconds(
            logical_bytes, encoded_bytes, world, link, throughput
        )
        < raw
    )
