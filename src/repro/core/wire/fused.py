"""Fused compressed reduction collectives (compress-reduce, ZipCCL-style).

PR 4's wire stack compresses payloads *outside* the collective: encode,
allgather the frames, decode.  For reductions that is the wrong shape —
a ring reduce-scatter moves *partial sums*, and what can be compressed
is each hop's partial, not the caller's input.  This module fuses the
codec into the ring schedule:

* :func:`icompressed_reduce_scatter` — chunked ring reduce-scatter with
  per-hop compression;
* :func:`icompressed_allreduce` — compressed ring allreduce
  (reduce-scatter phase + allgather phase over encoded reduced shards).

Two codec regimes, selected by :attr:`WireCodec.summable
<repro.core.compression.WireCodec.summable>`:

* **Summable value codecs** (identity, FP16): ``encode`` maps elements
  to fixed-position numeric slots, so partials are reduced *in the
  compressed domain* — each rank encodes its contribution once, hops
  add wire tensors directly, and one decode at the end recovers the
  result.  Numerics are identical to the unfused
  encode → allreduce → decode path by construction: the reduction is
  the same rank-order wire-domain fold.
* **Frame codecs** (delta, rle, entropy — *not* summable: adding two
  bitstreams is meaningless): the ring **recodes at every hop
  boundary** — decode the incoming partial, add, re-encode for the next
  hop.  Only integer payloads are accepted; integer addition is exact,
  so the result is bit-identical to the plain rank-order fold.

``codec=None`` runs the same chunked hop schedule on raw bytes — the
accounting baseline whose makespan equals the classic ring cost models
(summing ``G-1`` hops of ``α + shard/β`` reproduces
:func:`~repro.cluster.collectives.ring_reduce_scatter_time` exactly).

Accounting.  Every hop is one explicitly-costed collective step through
:meth:`Communicator.issue_scheduled
<repro.cluster.communicator.Communicator.issue_scheduled>`: the ledger
is charged the **encoded** hop bytes (data-dependent for frame codecs —
each hop's partial sums are actually encoded to measure them), with the
logical chunk bytes riding along for measured-compression reporting;
encode/decode compute lands on every rank's Timeline compute stream, so
the PR-2 contention rules pipeline chunk ``c+1``'s recode under chunk
``c``'s transfer with no special machinery.  The analytic twin of this
schedule is :func:`repro.perf.codec_model.fused_reduce_time`, validated
``≡`` the executed Timeline schedule by the wire benches.

Like everything in the simulator, numerics are eager at issue;
:meth:`PendingFusedReduce.wait` defers the *accounting* of the final
hops and decode so callers can overlap them with their own compute.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ...cluster.collectives import allreduce_arrays, reduce_scatter_arrays
from .cost import CodecThroughput, codec_throughput
from .transfer import wire_instruments

__all__ = [
    "FusedReducePlan",
    "PendingFusedReduce",
    "icompressed_allreduce",
    "icompressed_reduce_scatter",
    "plan_fused_reduce",
]


@dataclass(frozen=True)
class FusedReducePlan:
    """The data-dependent schedule of one fused compressed reduction.

    Byte-level description shared by three consumers that must agree
    exactly: the live collectives here (which execute it on the
    communicator), :func:`repro.perf.codec_model.fused_reduce_time`
    (the closed-form makespan recurrence), and
    :func:`repro.perf.codec_model.timeline_fused_reduce` (the same
    schedule replayed on a fresh Timeline).  Ranks are uniform in the
    cost model, so per-hop wire sizes are the max over ranks.

    ``chunk_logical`` are the logical (pre-codec) bytes of one *shard
    piece* per chunk — the ring's unit of transfer; a rank's full
    contribution is ``world * sum(chunk_logical)`` bytes.
    """

    world: int
    #: True for the compressed allreduce (reduce-scatter + allgather
    #: phases); False for reduce-scatter only.
    allgather: bool
    #: True when the schedule decodes + re-encodes at hop boundaries
    #: (frame codecs); False for summable/raw wire-domain reduction.
    hop_recode: bool
    #: Logical bytes of one shard piece, per chunk.
    chunk_logical: tuple[int, ...]
    #: Logical bytes encoded on each rank before a chunk's first hop
    #: (summable: the chunk's slice of all ``world`` shards; recode:
    #: the first partial, one shard piece; raw: 0).
    pre_encode: tuple[int, ...]
    #: Encoded wire bytes of each reduce-scatter hop, ``[chunk][hop]``,
    #: max over ranks; ``world - 1`` hops per chunk.
    rs_hop_bytes: tuple[tuple[int, ...], ...]
    #: Encoded wire bytes of each allgather hop, ``[chunk][hop]``;
    #: None when ``allgather`` is False.
    ag_hop_bytes: tuple[tuple[int, ...], ...] | None
    #: Logical bytes decoded on each rank at drain, per chunk.
    final_decode: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.world < 1:
            raise ValueError("world must be >= 1")
        hops = self.world - 1
        n = len(self.chunk_logical)
        if any(b < 0 for b in self.chunk_logical):
            raise ValueError("chunk_logical bytes must be non-negative")
        for name, rows in (
            ("rs_hop_bytes", self.rs_hop_bytes),
            ("ag_hop_bytes", self.ag_hop_bytes),
        ):
            if rows is None:
                continue
            if len(rows) != n or any(len(row) != hops for row in rows):
                raise ValueError(
                    f"{name} must hold {n} chunks x {hops} hops"
                )
        if self.allgather and self.ag_hop_bytes is None and hops:
            raise ValueError("allgather plan needs ag_hop_bytes")
        if len(self.pre_encode) != n or len(self.final_decode) != n:
            raise ValueError(
                "pre_encode/final_decode must have one entry per chunk"
            )


def _chunk_elems(shard_elems: int, itemsize: int, chunk_bytes: int | None):
    """Per-chunk element counts splitting one shard piece."""
    if chunk_bytes is not None and chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    if shard_elems == 0:
        return [0]
    if chunk_bytes is None:
        return [shard_elems]
    per = max(1, chunk_bytes // itemsize)
    counts = [per] * (shard_elems // per)
    if shard_elems % per:
        counts.append(shard_elems % per)
    return counts


def _flat_padded(arrays: Sequence[np.ndarray], world: int) -> list[np.ndarray]:
    """Flatten each rank's array, zero-padding to a world multiple.

    Padding mirrors what a real ring implementation does to get equal
    shards; it affects accounting (shard sizes, encoded partials) only —
    results are always computed from the unpadded inputs.
    """
    total = int(arrays[0].size)
    pad = (-total) % world
    out = []
    for a in arrays:
        flat = np.ascontiguousarray(a).reshape(-1)
        if pad:
            flat = np.concatenate([flat, np.zeros(pad, dtype=a.dtype)])
        out.append(flat)
    return out


def _frame_hop_sizes(
    flats: list[np.ndarray],
    codec,
    world: int,
    chunks: list[int],
    allgather: bool,
) -> tuple[list[list[int]], list[list[int]] | None]:
    """Measure encoded bytes of every ring hop's partial sums.

    Walks each shard's accumulation chain — the partial sent at hop
    ``h`` for shard ``j`` covers ranks ``j .. j+h-1`` — encoding every
    in-flight partial to charge the wire what a recoding ring actually
    ships.  Returns ``(rs[chunk][hop], ag[chunk][hop] | None)`` maxima
    over ranks.
    """
    hops = world - 1
    shard = flats[0].size // world
    bounds = np.concatenate(([0], np.cumsum(chunks))).astype(np.intp)
    rs = [[0] * hops for _ in chunks]
    ag = [[0] * hops for _ in chunks] if allgather and hops else None
    for c in range(len(chunks)):
        lo, hi = bounds[c], bounds[c + 1]
        ag_max = 0
        for j in range(world):
            base = j * shard
            part = flats[j][base + lo:base + hi].copy()
            for h in range(1, world):
                rs[c][h - 1] = max(rs[c][h - 1], int(codec.encode(part).size))
                part += flats[(j + h) % world][base + lo:base + hi]
            if ag is not None:
                ag_max = max(ag_max, int(codec.encode(part).size))
        if ag is not None:
            for h in range(hops):
                ag[c][h] = ag_max
    return rs, ag


def plan_fused_reduce(
    arrays: Sequence[np.ndarray],
    codec,
    allgather: bool = True,
    chunk_bytes: int | None = None,
) -> FusedReducePlan:
    """Build the byte-level schedule for one fused reduction.

    ``codec`` may be None (raw ring), a summable value codec, or a
    lossless integer frame codec (hop recoding).  See the module
    docstring for the validation rules each regime imposes.
    """
    world = len(arrays)
    dtype = arrays[0].dtype
    itemsize = dtype.itemsize
    summable = codec is not None and getattr(codec, "summable", False)
    recode = codec is not None and not summable
    if recode:
        if not getattr(codec, "lossless", False):
            raise ValueError(
                f"codec {codec.name!r} is lossy and not summable: it can "
                "neither be reduced in the compressed domain nor recoded "
                "exactly at hop boundaries"
            )
        if dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            raise ValueError(
                "index frames are not summable on the wire and cannot "
                f"carry {dtype} payloads through a fused reduction; use a "
                "summable value codec (fp16/identity) or codec=None"
            )
    flats = _flat_padded(arrays, world)
    shard_elems = flats[0].size // world
    chunks = _chunk_elems(shard_elems, itemsize, chunk_bytes)
    chunk_logical = tuple(n * itemsize for n in chunks)
    hops = world - 1
    if summable:
        wire_dt = codec.wire_dtype(dtype)
        if wire_dt is None:
            raise ValueError(
                f"summable codec {codec.name!r} must report wire_dtype"
            )
        wire_item = np.dtype(wire_dt).itemsize
        hop_row = [
            tuple(n * wire_item for _ in range(hops)) for n in chunks
        ]
        rs_hop = tuple(hop_row)
        ag_hop = tuple(hop_row) if allgather else None
        pre = tuple(world * lb for lb in chunk_logical)
        final = tuple(
            (world * lb if allgather else lb) for lb in chunk_logical
        )
    elif recode:
        rs, ag = _frame_hop_sizes(flats, codec, world, chunks, allgather)
        rs_hop = tuple(tuple(row) for row in rs)
        ag_hop = (
            tuple(tuple(row) for row in ag) if ag is not None
            else ((tuple(),) * len(chunks) if allgather else None)
        )
        pre = tuple(chunk_logical)
        # Allreduce: decode the world-1 foreign reduced-shard frames at
        # drain (the own shard is raw after the last hop's add, which
        # is charged at the pre-allgather recode).  Reduce-scatter:
        # decode the last incoming partial.
        final = tuple(
            ((world - 1) * lb if allgather else lb) for lb in chunk_logical
        )
    else:  # raw
        hop_row = [tuple(n * itemsize for _ in range(hops)) for n in chunks]
        rs_hop = tuple(hop_row)
        ag_hop = tuple(hop_row) if allgather else None
        pre = tuple(0 for _ in chunks)
        final = tuple(0 for _ in chunks)
    if world == 1:
        # Degenerate ring: no hops; the codec roundtrip (if any) is
        # still charged so G=1 matches the unfused encode/decode path.
        if summable:
            lb = flats[0].size * itemsize
            pre = (lb,)
            final = (lb,)
        else:
            pre = (0,)
            final = (0,)
        return FusedReducePlan(
            world=1, allgather=allgather, hop_recode=False,
            chunk_logical=(flats[0].size * itemsize,),
            pre_encode=pre, rs_hop_bytes=((),),
            ag_hop_bytes=((),) if allgather else None,
            final_decode=final,
        )
    return FusedReducePlan(
        world=world,
        allgather=allgather,
        hop_recode=recode,
        chunk_logical=chunk_logical,
        pre_encode=pre,
        rs_hop_bytes=rs_hop,
        ag_hop_bytes=ag_hop,
        final_decode=final,
    )


class PendingFusedReduce:
    """An in-flight fused compressed reduction.

    The intermediate hops were issued (and, for recoding rings, waited)
    eagerly — what remains at :meth:`wait` is completing each chunk's
    final hop ticket, charging the final decode compute, and handing
    back the per-rank results.  Idempotent, like every handle here.
    """

    def __init__(
        self,
        comm,
        issued: list,
        drain_upto: list[int],
        plan: FusedReducePlan,
        results: list[np.ndarray],
        throughput: CodecThroughput | None,
        instruments: dict | None,
    ):
        self._comm = comm
        self._issued = issued
        self._drain_upto = drain_upto
        self._plan = plan
        self._results = results
        self._throughput = throughput
        self._instruments = instruments
        self._done = False

    def is_complete(self) -> bool:
        """Whether :meth:`wait` has run to completion."""
        return self._done

    def wait(self) -> list[np.ndarray]:
        """Drain the final hops, charge final decodes, return results.

        Handles are completed in issue order up to each chunk's cut
        point before that chunk's decode is charged — link end times
        are monotone in issue order, so chunk ``c``'s decode overlaps
        the still-in-flight transfers of chunks ``> c``, exactly as the
        analytic recurrence assumes.  ``wait()`` on already-completed
        hop handles (the recoding ring waits intermediates eagerly) is
        an idempotent no-op.
        """
        if self._done:
            return self._results
        world = self._comm.world_size
        ins = self._instruments
        i = 0
        for upto, lb in zip(self._drain_upto, self._plan.final_decode):
            while i < upto:
                self._issued[i].wait()
                i += 1
            if self._throughput is not None and lb:
                decode_s = self._throughput.decode_seconds(lb)
                for rank in range(world):
                    self._comm.timeline.record_compute(
                        rank, decode_s, name="codec:decode"
                    )
                if ins is not None:
                    ins["decode_s"].observe(decode_s, **ins["labels"])
                    ins["decode_bytes"].inc(lb, **ins["labels"])
        while i < len(self._issued):
            self._issued[i].wait()
            i += 1
        self._done = True
        return self._results


def _fused_reduce(
    comm,
    arrays: Sequence[np.ndarray],
    codec,
    allgather: bool,
    tag: str,
    chunk_bytes: int | None,
    throughput: CodecThroughput | None,
    charge_compute: bool,
    shared_result: bool,
) -> PendingFusedReduce:
    """Shared engine of the two fused collectives (see module docstring)."""
    if len(arrays) != comm.world_size:
        raise ValueError(
            f"got {len(arrays)} per-rank arrays for a "
            f"{comm.world_size}-rank communicator"
        )
    world = comm.world_size
    dtype = arrays[0].dtype
    if not allgather and arrays[0].shape[0] % world != 0:
        raise ValueError(
            f"reduce_scatter: leading dim {arrays[0].shape[0]} not "
            f"divisible by world size {world}"
        )
    plan = plan_fused_reduce(
        arrays, codec, allgather=allgather, chunk_bytes=chunk_bytes
    )
    summable = codec is not None and getattr(codec, "summable", False)

    # ---- numerics (eager, rank-order fold — see module docstring) ----
    if summable:
        encoded = [codec.encode(a) for a in arrays]
        if allgather:
            reduced_enc = allreduce_arrays(encoded, shared_result=True)[0]
            decoded = codec.decode(reduced_enc, dtype)
            if shared_result:
                results = [decoded] * world
            else:
                stackd = np.empty((world,) + decoded.shape, dtype=dtype)
                stackd[:] = decoded
                results = list(stackd)
        else:
            shards = reduce_scatter_arrays(encoded)
            results = [codec.decode(s, dtype) for s in shards]
    else:
        if allgather:
            results = allreduce_arrays(
                arrays, shared_result=shared_result
            )
        else:
            results = reduce_scatter_arrays(arrays)

    name = codec.name if codec is not None else "raw"
    tp = (
        (throughput if throughput is not None else codec_throughput(name))
        if charge_compute and codec is not None
        else None
    )
    ins = (
        wire_instruments(getattr(comm, "metrics", None), name)
        if codec is not None
        else None
    )
    op = "fused_allreduce" if allgather else "fused_reduce_scatter"

    def charge(kind: str, lb: int) -> None:
        if tp is None or lb == 0:
            return
        secs = (
            tp.encode_seconds(lb) if kind == "encode"
            else tp.decode_seconds(lb)
        )
        for rank in range(world):
            comm.timeline.record_compute(rank, secs, name=f"codec:{kind}")
        if ins is not None:
            ins[f"{kind}_s"].observe(secs, **ins["labels"])
            ins[f"{kind}_bytes"].inc(lb, **ins["labels"])

    chunks = plan.chunk_logical
    hops = world - 1
    link = comm.fabric.ring_link(world) if world > 1 else None
    issued: list = []

    def issue_hop(phase: str, c: int, h: int, eb: int, lb: int):
        handle = comm.issue_scheduled(
            op,
            time_s=link.transfer_time(eb),
            wire_bytes_per_rank=eb,
            scratch_bytes=eb,
            scratch_tag=f"{op}-recv:{tag}",
            tag=f"{tag}:{phase}{h}" + (f"[{c}]" if len(chunks) > 1 else ""),
            payload_bytes_per_rank=lb,
        )
        if ins is not None:
            ins["frame_bytes"].inc(world * eb, **ins["labels"])
            ticket = getattr(handle, "ticket", None)
            if ticket is not None:
                ins["transfer_s"].observe(
                    ticket.end - ticket.start, **ins["labels"]
                )
        issued.append(handle)
        return handle

    drain_upto = [0] * len(chunks)
    ledger_scope = comm.ledger.scope(f"fused-{name}")
    with ledger_scope:
        # Reduce-scatter phase, hop-major: chunk c+1's (re)encode
        # overlaps chunk c's transfer under the Timeline rules.
        rs_handles: list[list] = [[None] * hops for _ in chunks]
        for h in range(hops):
            for c, lb in enumerate(chunks):
                if h == 0:
                    charge("encode", plan.pre_encode[c])
                elif plan.hop_recode:
                    rs_handles[c][h - 1].wait()
                    charge("decode", lb)
                    charge("encode", lb)
                rs_handles[c][h] = issue_hop(
                    "rs", c, h, plan.rs_hop_bytes[c][h], lb
                )
        if world == 1 and plan.pre_encode[0]:
            charge("encode", plan.pre_encode[0])
        if allgather and hops:
            for c, lb in enumerate(chunks):
                if plan.hop_recode:
                    rs_handles[c][hops - 1].wait()
                    charge("decode", lb)
                    charge("encode", lb)
                for h in range(hops):
                    issue_hop("ag", c, h, plan.ag_hop_bytes[c][h], lb)
                drain_upto[c] = len(issued)
        else:
            # RS-only (or G=1): chunk c drains at its last RS hop; the
            # hop-major issue order means that cut covers every earlier
            # chunk's hops of the same round too (ends are monotone).
            for c in range(len(chunks)):
                drain_upto[c] = (
                    (hops - 1) * len(chunks) + c + 1 if hops else 0
                )
    return PendingFusedReduce(
        comm, issued, drain_upto, plan, results, tp, ins
    )


def icompressed_reduce_scatter(
    comm,
    arrays: Sequence[np.ndarray],
    codec=None,
    tag: str = "",
    chunk_bytes: int | None = None,
    throughput: CodecThroughput | None = None,
    charge_compute: bool = True,
) -> PendingFusedReduce:
    """Chunked ring reduce-scatter with in-collective compression.

    Result contract matches :meth:`Communicator.ireduce_scatter`: rank
    ``r`` receives the ``r``-th equal leading-axis shard of the
    rank-order sum.  ``chunk_bytes`` splits each *shard* into pipeline
    chunks of at most that many logical bytes.  See the module
    docstring for codec regimes and accounting.
    """
    return _fused_reduce(
        comm, arrays, codec, False, tag, chunk_bytes, throughput,
        charge_compute, shared_result=False,
    )


def icompressed_allreduce(
    comm,
    arrays: Sequence[np.ndarray],
    codec=None,
    tag: str = "",
    chunk_bytes: int | None = None,
    throughput: CodecThroughput | None = None,
    charge_compute: bool = True,
    shared_result: bool = False,
) -> PendingFusedReduce:
    """Compressed ring allreduce: fused reduce-scatter + allgather.

    ``wait()`` returns decoded per-rank sums (``shared_result`` hands
    every rank the same read-only array, as :meth:`Communicator.
    iallreduce` does).  With a summable codec the numerics equal the
    unfused encode → allreduce → decode path bit for bit; with a frame
    codec (integer payloads) or ``codec=None`` they equal the plain
    rank-order fold bit for bit.
    """
    return _fused_reduce(
        comm, arrays, codec, True, tag, chunk_bytes, throughput,
        charge_compute, shared_result,
    )
