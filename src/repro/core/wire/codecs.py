"""Lossless integer codecs for the index ALLGATHER wire format.

The paper's §III-C compression halves *value* traffic with FP16, but the
Θ(G·K) index ALLGATHER of the uniqueness exchange (§III-A) still ships
raw int64 word indices.  Sorted unique Zipf indices are extremely
compressible: consecutive deltas are tiny (most fit in a few bits) and
dense index ranges collapse into runs.  The codecs here exploit exactly
that, with **bit-exact** roundtrip guarantees — ``decode(encode(x))``
equals ``x`` bit for bit, for any 1-D int32/int64 input, sorted or not.

Frame format
------------
Every ``encode`` produces a *self-delimiting* uint8 frame::

    byte 0      frame kind (1 = raw, 2 = delta-bitpack, 3 = run-length,
                4 = entropy)
    byte 1      dtype code (0 = int32, 1 = int64)
    bytes 2-9   element count n (u64, little-endian)
    payload     kind-specific, parseable given the header

Self-delimitation is what makes the codecs compose with allgatherv
semantics: the collective concatenates per-rank frames into one uint8
buffer, and :func:`decode_frames` walks the frames back out — so the
decoded result is exactly the rank-order concatenation of the original
per-rank vectors, with per-rank boundaries preserved.

Payloads
--------
* **raw** — the input bytes verbatim (little-endian).  Every codec falls
  back to a raw frame when its encoding would not beat it, which yields
  the hard bound ``encoded_nbytes <= raw_nbytes + FRAME_HEADER_BYTES``.
* **delta-bitpack** — block size as 4 bytes, first value as 8 bytes,
  then the zigzag-encoded deltas of consecutive elements, bit-packed in
  blocks whose width is chosen from each block's largest delta.  The
  block size rides in the payload so frames decode regardless of which
  ``DeltaBitpackCodec(block=...)`` produced them.  Deltas are taken in
  modular uint64 arithmetic, so unsorted inputs and maximal-span int64
  pairs (``[int64.min, int64.max]``) roundtrip exactly.
* **run-length** — ``(start, length)`` pairs for maximal runs of
  consecutive ``+1`` increments; ideal for dense index ranges.
* **entropy** — canonical Huffman over the *bit-widths* of the zigzag
  modular deltas, followed by each delta's raw low bits (top bit
  implicit).  Width symbols concentrate the skew of a Zipf-sorted index
  vector into a few-bit prefix code, beating fixed per-block widths
  because every delta pays only its own width plus ~H(width) bits.

Neither codec sorts: both are order-preserving, and the *caller* decides
whether sorting is safe (the unique exchange sorts before encoding
because ``np.unique`` downstream is order-insensitive; the baseline
allgather must not, since index order pairs with value rows).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..compression import WireCodec

__all__ = [
    "DELTA_BLOCK",
    "FRAME_HEADER_BYTES",
    "DeltaBitpackCodec",
    "EntropyCodec",
    "LosslessIntCodec",
    "RunLengthCodec",
    "decode_frames",
]

#: Bytes of the per-frame header (kind + dtype code + element count).
FRAME_HEADER_BYTES = 10

#: Deltas per bit-packing block; each block stores one width byte.
#: Small blocks adapt the width to Zipf's skew — a sorted word-LM index
#: vector packs its dense head at a few bits while the sparse tail's
#: huge deltas stay confined to their own blocks.  128 roughly doubles
#: the measured reduction on 1B-Word-shaped payloads vs 1024, at less
#: than 1% width-byte overhead.
DELTA_BLOCK = 128

_KIND_RAW = 1
_KIND_DELTA = 2
_KIND_RLE = 3
_KIND_ENTROPY = 4

#: Width symbols for the entropy codec: bit_length of a zigzag delta,
#: an integer in [0, 64].
_N_WIDTH_SYMBOLS = 65

_DTYPE_CODES = {np.dtype(np.int32): 0, np.dtype(np.int64): 1}
_CODE_DTYPES = {code: dt for dt, code in _DTYPE_CODES.items()}

_U64_ONE = np.uint64(1)
_U64_ZERO = np.uint64(0)
_U64_ALL = np.uint64(0xFFFFFFFFFFFFFFFF)


def _check_input(arr: np.ndarray) -> np.dtype:
    """Validate a codec input; return its dtype."""
    if not isinstance(arr, np.ndarray):
        raise ValueError(f"codec input must be an ndarray, got {type(arr).__name__}")
    if arr.ndim != 1:
        raise ValueError(f"index codecs take 1-D arrays, got shape {arr.shape}")
    if arr.dtype not in _DTYPE_CODES:
        raise ValueError(
            f"index codecs take int32/int64 arrays, got {arr.dtype}"
        )
    return arr.dtype


def _header(kind: int, dtype: np.dtype, n: int) -> bytes:
    return bytes([kind, _DTYPE_CODES[dtype]]) + int(n).to_bytes(8, "little")


def _zigzag(signed: np.ndarray) -> np.ndarray:
    """Map int64 to uint64 so small-magnitude values get small codes."""
    u = signed.view(np.uint64)
    mask = np.where(signed < 0, _U64_ALL, _U64_ZERO)
    return (u << _U64_ONE) ^ mask


def _unzigzag(zz: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag`; returns the uint64 bit pattern."""
    mask = _U64_ZERO - (zz & _U64_ONE)
    return (zz >> _U64_ONE) ^ mask


def _pack_low_bits(vals: np.ndarray, width: int) -> np.ndarray:
    """Pack the low ``width`` bits of each uint64 into a byte stream."""
    bits = np.unpackbits(
        vals.astype(">u8", copy=False).view(np.uint8).reshape(-1, 8), axis=1
    )
    return np.packbits(bits[:, 64 - width:])


def _unpack_low_bits(buf: np.ndarray, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_low_bits` for ``n`` packed values."""
    if width == 0:
        return np.zeros(n, dtype=np.uint64)
    bits = np.unpackbits(buf, count=n * width).reshape(n, width)
    full = np.zeros((n, 64), dtype=np.uint8)
    full[:, 64 - width:] = bits
    return np.packbits(full.reshape(-1)).view(">u8").astype(np.uint64)


def _modular_deltas(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(int64 view of the values, zigzagged modular consecutive deltas)."""
    v = np.ascontiguousarray(arr.astype(np.int64, copy=False))
    u = v.view(np.uint64)
    du = u[1:] - u[:-1]  # wraps mod 2**64: exact for any int64 span
    return v, _zigzag(du.view(np.int64))


def _frame_bytes(kind: int, dtype: np.dtype, n: int, payload: bytes) -> np.ndarray:
    return np.frombuffer(_header(kind, dtype, n) + payload, dtype=np.uint8)


def _raw_frame(arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
    payload = np.ascontiguousarray(arr, dtype=dtype.newbyteorder("<")).tobytes()
    return _frame_bytes(_KIND_RAW, dtype, arr.size, payload)


class LosslessIntCodec(WireCodec):
    """Base class for the self-delimiting lossless integer codecs.

    Subclasses implement ``encode``; ``decode`` is shared because every
    frame carries its own kind byte — a buffer may even mix frames from
    different codecs (as a chunked or mixed-codec gather produces).
    """

    #: Roundtrip is bit-exact; the sanitizer can verify it cheaply.
    lossless = True
    #: Encoded size depends on the data, not just the dtype.
    data_dependent = True

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Decode a (possibly multi-frame) uint8 buffer back to indices."""
        return decode_frames(arr, dtype)

    def wire_dtype(self, dtype: np.dtype) -> np.dtype:
        """Frames are always byte streams."""
        return np.dtype(np.uint8)


class DeltaBitpackCodec(LosslessIntCodec):
    """Sort-free delta + per-block bit-packing (the unique-index codec).

    Encodes consecutive differences (zigzagged, modular-uint64) with a
    per-block bit width chosen from the block's largest delta, so sorted
    Zipf index vectors — whose deltas are overwhelmingly tiny — pack
    into a few bits per index instead of 64.  Falls back to a raw frame
    whenever packing would not beat the input bytes.

    Parameters
    ----------
    block:
        Deltas per packing block (one width byte each).  Smaller blocks
        adapt faster to mixed-magnitude deltas at one byte per block of
        overhead.
    """

    def __init__(self, block: int = DELTA_BLOCK):
        if block <= 0:
            raise ValueError("block must be positive")
        self.block = int(block)

    @property
    def name(self) -> str:
        """Short stable name used in registries and ledger scopes."""
        return "delta"

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Encode one index vector into a self-delimiting uint8 frame."""
        dtype = _check_input(arr)
        n = arr.size
        if n == 0:
            return _frame_bytes(_KIND_DELTA, dtype, 0, b"")
        v, zz = _modular_deltas(arr)
        chunks: list[bytes] = [
            int(self.block).to_bytes(4, "little"),
            np.array([v[0]], dtype="<i8").tobytes(),
        ]
        for start in range(0, zz.size, self.block):
            blk = zz[start:start + self.block]
            width = int(blk.max()).bit_length()
            chunks.append(bytes([width]))
            if width:
                chunks.append(_pack_low_bits(blk, width).tobytes())
        payload = b"".join(chunks)
        if len(payload) >= arr.nbytes:
            return _raw_frame(arr, dtype)
        return _frame_bytes(_KIND_DELTA, dtype, n, payload)

    def estimate_nbytes(self, arr: np.ndarray, sample: int = 1024) -> int:
        """Cheap encoded-size estimate from a strided sorted sample.

        Used by the adaptive selector's crossover model.  Sampling every
        ``stride``-th element of the sorted input multiplies typical
        deltas by ``stride``, so the estimate is conservative (it
        over-states the encoded size); the hard raw-fallback bound caps
        it either way.
        """
        _check_input(arr)
        if arr.size <= 1:
            return FRAME_HEADER_BYTES + arr.nbytes
        stride = max(1, arr.size // sample)
        probe = np.sort(arr[::stride])
        est = self.encode(probe).size / probe.size * arr.size
        return int(min(est, FRAME_HEADER_BYTES + arr.nbytes))


class RunLengthCodec(LosslessIntCodec):
    """Run-length codec for contiguous index ranges.

    Encodes maximal runs of consecutive ``+1`` increments as
    ``(start, length)`` pairs — 16 bytes per run regardless of run
    length, so dense index ranges (e.g. a saturated vocabulary head)
    collapse to almost nothing.  Falls back to a raw frame when the
    input is run-poor.
    """

    @property
    def name(self) -> str:
        """Short stable name used in registries and ledger scopes."""
        return "rle"

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Encode one index vector into a self-delimiting uint8 frame."""
        dtype = _check_input(arr)
        n = arr.size
        if n == 0:
            return _frame_bytes(_KIND_RLE, dtype, 0, b"")
        v = np.ascontiguousarray(arr.astype(np.int64, copy=False))
        u = v.view(np.uint64)
        breaks = np.flatnonzero((u[1:] - u[:-1]) != _U64_ONE)
        run_starts = np.concatenate(([0], breaks + 1))
        run_lengths = np.diff(np.concatenate((run_starts, [n])))
        n_runs = run_starts.size
        payload_size = 8 + 16 * n_runs
        if payload_size >= arr.nbytes:
            return _raw_frame(arr, dtype)
        payload = (
            int(n_runs).to_bytes(8, "little")
            + v[run_starts].astype("<i8", copy=False).tobytes()
            + run_lengths.astype("<u8").tobytes()
        )
        return _frame_bytes(_KIND_RLE, dtype, n, payload)

    def estimate_nbytes(self, arr: np.ndarray, sample: int = 1024) -> int:
        """Cheap encoded-size estimate from a contiguous prefix slice.

        A strided sample would destroy runs, so the run density is
        measured on ``arr[:sample]`` and extrapolated.
        """
        _check_input(arr)
        if arr.size <= 1:
            return FRAME_HEADER_BYTES + arr.nbytes
        probe = np.sort(arr[: int(sample)])
        est = self.encode(probe).size / probe.size * arr.size
        return int(min(est, FRAME_HEADER_BYTES + arr.nbytes))


def _delta_bit_lengths(zz: np.ndarray) -> np.ndarray:
    """Per-delta ``bit_length`` (0..64) of zigzagged uint64 deltas."""
    bits = np.unpackbits(
        zz.astype(">u8", copy=False).view(np.uint8).reshape(-1, 8), axis=1
    )
    widths = (64 - bits.argmax(axis=1)).astype(np.uint8)
    widths[zz == _U64_ZERO] = 0  # argmax of an all-zero row is 0, not 64
    return widths


def _huffman_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths per symbol (0 for absent symbols).

    Deterministic: ties in the merge heap break on insertion order, so
    identical inputs yield identical tables on every rank.  A lone
    symbol gets length 1 (the code ``0``).
    """
    syms = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.uint8)
    if syms.size == 0:
        return lengths
    if syms.size == 1:
        lengths[syms[0]] = 1
        return lengths
    heap: list[tuple[int, int, list[int]]] = [
        (int(counts[s]), i, [int(s)]) for i, s in enumerate(syms)
    ]
    heapq.heapify(heap)
    tie = len(heap)
    while len(heap) > 1:
        fa, _, sa = heapq.heappop(heap)
        fb, _, sb = heapq.heappop(heap)
        for s in sa:
            lengths[s] += 1
        for s in sb:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tie, sa + sb))
        tie += 1
    return lengths


def _canonical_code_table(
    lengths: np.ndarray,
) -> list[tuple[int, int, int]]:
    """Canonical codes from code lengths: ``(symbol, length, code)``.

    Symbols sort by (length, symbol); codes count up within a length
    and left-shift on every length increase — the standard canonical
    construction, so the 65-byte length table alone reproduces the
    codebook at decode time.
    """
    order = sorted((int(L), s) for s, L in enumerate(lengths) if L)
    table: list[tuple[int, int, int]] = []
    code = -1
    prev_len = 0
    for length, sym in order:
        code = (code + 1) << (length - prev_len)
        prev_len = length
        table.append((sym, length, code))
    return table


class EntropyCodec(LosslessIntCodec):
    """Canonical-Huffman entropy coder over delta bit-widths.

    The delta-bitpack codec spends one width per *block*; this codec
    spends a Huffman code per *delta*, coding each delta as its width
    symbol followed by ``width - 1`` raw low bits (the top bit of a
    ``width``-bit value is implicitly 1).  On Zipf-sorted unique index
    vectors the width distribution is sharply peaked, so the per-delta
    cost approaches ``H(width) + E[width - 1]`` bits — measurably below
    the per-block packed width.  Falls back to a raw frame whenever the
    coded payload would not beat the input bytes, preserving the
    ``encoded <= raw + FRAME_HEADER_BYTES`` bound.

    Payload layout (after the shared frame header)::

        8 bytes    first value (<i8)
        65 bytes   canonical code lengths for width symbols 0..64
        8 bytes    bitstream length in bits (u64, little-endian)
        k bytes    packed bitstream (``np.packbits`` bit order)
    """

    @property
    def name(self) -> str:
        """Short stable name used in registries and ledger scopes."""
        return "entropy"

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Encode one index vector into a self-delimiting uint8 frame."""
        dtype = _check_input(arr)
        n = arr.size
        if n == 0:
            return _frame_bytes(_KIND_ENTROPY, dtype, 0, b"")
        if n == 1:
            # No deltas to code; the 81-byte payload floor always loses.
            return _raw_frame(arr, dtype)
        v, zz = _modular_deltas(arr)
        widths = _delta_bit_lengths(zz)
        counts = np.bincount(widths, minlength=_N_WIDTH_SYMBOLS)
        lengths = _huffman_code_lengths(counts)
        codes = np.zeros(_N_WIDTH_SYMBOLS, dtype=np.uint64)
        for sym, _length, code in _canonical_code_table(lengths):
            codes[sym] = code
        w64 = widths.astype(np.int64)
        per_delta_bits = lengths[widths].astype(np.int64) + np.maximum(
            w64 - 1, 0
        )
        offsets = np.zeros(per_delta_bits.size, dtype=np.int64)
        np.cumsum(per_delta_bits[:-1], out=offsets[1:])
        total_bits = int(per_delta_bits.sum())
        bits = np.zeros(total_bits, dtype=np.uint8)
        for sym in np.flatnonzero(counts):
            mask = widths == sym
            off = offsets[mask]
            length = int(lengths[sym])
            code = int(codes[sym])
            for j in range(length):
                if (code >> (length - 1 - j)) & 1:
                    bits[off + j] = 1
            if sym > 1:
                vals = zz[mask]
                for j in range(int(sym) - 1):
                    bits[off + length + j] = (
                        (vals >> np.uint64(int(sym) - 2 - j)) & _U64_ONE
                    ).astype(np.uint8)
        payload = (
            np.array([v[0]], dtype="<i8").tobytes()
            + lengths.tobytes()
            + int(total_bits).to_bytes(8, "little")
            + np.packbits(bits).tobytes()
        )
        if len(payload) >= arr.nbytes:
            return _raw_frame(arr, dtype)
        return _frame_bytes(_KIND_ENTROPY, dtype, n, payload)

    def estimate_nbytes(self, arr: np.ndarray, sample: int = 1024) -> int:
        """Cheap encoded-size estimate from a strided sorted sample.

        Same conservative construction as the delta codec's estimator:
        striding a sorted vector multiplies typical deltas by the
        stride, over-stating widths and therefore the coded size.
        """
        _check_input(arr)
        if arr.size <= 1:
            return FRAME_HEADER_BYTES + arr.nbytes
        stride = max(1, arr.size // sample)
        probe = np.sort(arr[::stride])
        est = self.encode(probe).size / probe.size * arr.size
        return int(min(est, FRAME_HEADER_BYTES + arr.nbytes))


def _decode_delta_payload(
    raw: bytes, offset: int, n: int
) -> tuple[np.ndarray, int]:
    """Decode a delta-bitpack payload; return (uint64 values, new offset)."""
    block = int.from_bytes(raw[offset:offset + 4], "little")
    offset += 4
    if block <= 0:
        raise ValueError(f"corrupt delta frame: block size {block}")
    first = np.frombuffer(raw, dtype="<i8", count=1, offset=offset)
    offset += 8
    deltas = np.empty(n - 1, dtype=np.uint64)
    done = 0
    while done < n - 1:
        blk_n = min(block, n - 1 - done)
        width = raw[offset]
        offset += 1
        nbytes = (blk_n * width + 7) // 8
        packed = np.frombuffer(raw, dtype=np.uint8, count=nbytes, offset=offset)
        offset += nbytes
        deltas[done:done + blk_n] = _unpack_low_bits(packed, blk_n, width)
        done += blk_n
    u = np.empty(n, dtype=np.uint64)
    u[0] = first.astype(np.int64)[0:1].view(np.uint64)[0]
    if n > 1:
        np.cumsum(_unzigzag(deltas), out=u[1:])
        u[1:] += u[0]
    return u, offset


def _decode_rle_payload(raw: bytes, offset: int, n: int) -> tuple[np.ndarray, int]:
    """Decode a run-length payload; return (uint64 values, new offset)."""
    n_runs = int.from_bytes(raw[offset:offset + 8], "little")
    offset += 8
    starts = np.frombuffer(raw, dtype="<i8", count=n_runs, offset=offset)
    offset += 8 * n_runs
    lengths = np.frombuffer(raw, dtype="<u8", count=n_runs, offset=offset)
    offset += 8 * n_runs
    su = starts.astype(np.int64).view(np.uint64)
    lu = lengths.astype(np.uint64)
    steps = np.ones(n, dtype=np.uint64)
    steps[0] = su[0]
    if n_runs > 1:
        firsts = np.cumsum(lu)[:-1].astype(np.intp)
        steps[firsts] = su[1:] - (su[:-1] + lu[:-1] - _U64_ONE)
    return np.cumsum(steps), offset


def _decode_entropy_payload(
    raw: bytes, offset: int, n: int
) -> tuple[np.ndarray, int]:
    """Decode an entropy payload; return (uint64 values, new offset)."""
    first = np.frombuffer(raw, dtype="<i8", count=1, offset=offset)
    offset += 8
    lengths = np.frombuffer(
        raw, dtype=np.uint8, count=_N_WIDTH_SYMBOLS, offset=offset
    )
    offset += _N_WIDTH_SYMBOLS
    nbits = int.from_bytes(raw[offset:offset + 8], "little")
    offset += 8
    nbytes = (nbits + 7) // 8
    packed = np.frombuffer(raw, dtype=np.uint8, count=nbytes, offset=offset)
    offset += nbytes
    codebook = {
        (length, code): sym
        for sym, length, code in _canonical_code_table(lengths)
    }
    if n > 1 and not codebook:
        raise ValueError("corrupt entropy frame: empty codebook")
    bits = np.unpackbits(packed, count=nbits).tolist() if nbits else []
    zz = np.empty(n - 1, dtype=np.uint64)
    pos = 0
    lookup = codebook.get
    for i in range(n - 1):
        code = 0
        length = 0
        while True:
            if pos >= nbits:
                raise ValueError("corrupt entropy frame: truncated bitstream")
            code = (code << 1) | bits[pos]
            pos += 1
            length += 1
            sym = lookup((length, code))
            if sym is not None:
                break
        if sym == 0:
            zz[i] = 0
        else:
            val = 1
            for _ in range(sym - 1):
                if pos >= nbits:
                    raise ValueError(
                        "corrupt entropy frame: truncated bitstream"
                    )
                val = (val << 1) | bits[pos]
                pos += 1
            zz[i] = val
    if pos != nbits:
        raise ValueError("corrupt entropy frame: trailing bits")
    u = np.empty(n, dtype=np.uint64)
    u[0] = first.astype(np.int64)[0:1].view(np.uint64)[0]
    if n > 1:
        np.cumsum(_unzigzag(zz), out=u[1:])
        u[1:] += u[0]
    return u, offset


def decode_frames(arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Decode a concatenation of frames back into one index vector.

    ``arr`` is the uint8 buffer an allgather of per-rank frames yields;
    the result is the rank-order concatenation of the original vectors.
    ``dtype`` must match the dtype recorded in every frame — a mismatch
    means the caller lost track of what was encoded, which is an error,
    not a cast.
    """
    if arr.dtype != np.uint8:
        raise ValueError(f"expected a uint8 frame buffer, got {arr.dtype}")
    want = np.dtype(dtype)
    if want not in _DTYPE_CODES:
        raise ValueError(f"frames hold int32/int64 indices, not {want}")
    raw = arr.tobytes()
    parts: list[np.ndarray] = []
    offset = 0
    while offset < len(raw):
        if offset + FRAME_HEADER_BYTES > len(raw):
            raise ValueError("truncated frame header")
        kind = raw[offset]
        frame_dtype = _CODE_DTYPES.get(raw[offset + 1])
        if frame_dtype is None:
            raise ValueError(f"unknown frame dtype code {raw[offset + 1]}")
        if frame_dtype != want:
            raise ValueError(
                f"frame holds {frame_dtype} but decode asked for {want}"
            )
        n = int.from_bytes(raw[offset + 2:offset + 10], "little")
        offset += FRAME_HEADER_BYTES
        if n == 0:
            parts.append(np.zeros(0, dtype=want))
            continue
        if kind == _KIND_RAW:
            count_bytes = n * want.itemsize
            vals = np.frombuffer(
                raw, dtype=want.newbyteorder("<"), count=n, offset=offset
            ).astype(want, copy=False)
            offset += count_bytes
        elif kind == _KIND_DELTA:
            u, offset = _decode_delta_payload(raw, offset, n)
            vals = u.view(np.int64).astype(want, copy=False)
        elif kind == _KIND_RLE:
            u, offset = _decode_rle_payload(raw, offset, n)
            vals = u.view(np.int64).astype(want, copy=False)
        elif kind == _KIND_ENTROPY:
            u, offset = _decode_entropy_payload(raw, offset, n)
            vals = u.view(np.int64).astype(want, copy=False)
        else:
            raise ValueError(f"unknown frame kind {kind}")
        parts.append(np.ascontiguousarray(vals))
    if not parts:
        return np.zeros(0, dtype=want)
    return np.concatenate(parts)
