"""Pluggable wire-compression stack for the simulated comm layer.

Generalizes the single §III-C :class:`~repro.core.compression.Fp16Codec`
into a registry of codecs with distinct roles:

* :mod:`~repro.core.wire.codecs` — lossless, self-delimiting integer
  frame codecs (delta-bitpack, run-length, canonical-Huffman entropy)
  for the uniqueness exchange's Θ(G·K) index ALLGATHER;
* :mod:`~repro.core.wire.registry` — name -> codec factories and the
  composable :class:`CodecPipeline`;
* :mod:`~repro.core.wire.cost` — per-codec throughput constants and the
  compression crossover inequality;
* :mod:`~repro.core.wire.adaptive` — per-message codec selection from
  size, dtype, and a sampled compressibility estimate;
* :mod:`~repro.core.wire.transfer` — the chunked encoded allgather that
  pipelines encode/transmit/decode on the two-stream timeline;
* :mod:`~repro.core.wire.fused` — fused compress-reduce collectives
  (compressed ring reduce-scatter / allreduce with per-hop recoding);
* :mod:`~repro.core.wire.policy` — the :class:`WirePolicy` object the
  trainer/CLI hand down (``--wire-codec``, ``--wire-chunk-bytes``).

See ``docs/COMPRESSION.md`` for the codec zoo and the cost model.
"""

from .adaptive import AdaptiveCodecSelector
from .codecs import (
    DELTA_BLOCK,
    FRAME_HEADER_BYTES,
    DeltaBitpackCodec,
    EntropyCodec,
    LosslessIntCodec,
    RunLengthCodec,
    decode_frames,
)
from .cost import (
    DEFAULT_CODEC_THROUGHPUTS,
    CodecThroughput,
    codec_throughput,
    compressed_transfer_seconds,
    compression_wins,
    slowest_throughput,
    throughput_from_metrics,
)
from .fused import (
    FusedReducePlan,
    PendingFusedReduce,
    icompressed_allreduce,
    icompressed_reduce_scatter,
    plan_fused_reduce,
)
from .policy import WirePolicy
from .registry import CodecPipeline, available_codecs, make_codec, register_codec
from .transfer import PendingEncodedGather, iencoded_allgather, wire_instruments

__all__ = [
    "AdaptiveCodecSelector",
    "CodecPipeline",
    "CodecThroughput",
    "DEFAULT_CODEC_THROUGHPUTS",
    "DELTA_BLOCK",
    "DeltaBitpackCodec",
    "EntropyCodec",
    "FRAME_HEADER_BYTES",
    "FusedReducePlan",
    "LosslessIntCodec",
    "PendingEncodedGather",
    "PendingFusedReduce",
    "RunLengthCodec",
    "WirePolicy",
    "available_codecs",
    "codec_throughput",
    "compressed_transfer_seconds",
    "compression_wins",
    "decode_frames",
    "icompressed_allreduce",
    "icompressed_reduce_scatter",
    "iencoded_allgather",
    "plan_fused_reduce",
    "slowest_throughput",
    "throughput_from_metrics",
    "wire_instruments",
    "make_codec",
    "register_codec",
]
