"""The simulated-cluster communicator: MPI-flavoured collectives with
memory, cost, and schedule accounting.

Design
------
The simulator is **SPMD-in-one-process**: all ranks live in the host
Python process and the training loop advances them together.  A
collective therefore takes a *list* of per-rank arrays (index = rank)
and returns the per-rank results, instead of being called once per MPI
process.  This keeps the numerics bit-exact and the control flow
single-threaded, while the ledger and the per-device allocators capture
what a real cluster would have moved and held:

* each collective charges its **scratch buffers** to every participating
  :class:`~repro.cluster.device.SimulatedDevice` for the duration of the
  call — an ALLGATHER of dense gradients really does spike every GPU by
  ``G*K*D`` floats, which is how the baseline OOMs in Tables III/IV;
* each collective records **wire bytes per rank** and **alpha-beta model
  time** to the :class:`~repro.cluster.tracing.CostLedger`;
* each collective is placed on the per-rank
  :class:`~repro.cluster.timeline.Timeline`, so overlapped schedules
  produce a measured makespan instead of a summed phase list.

Async engine
------------
Every collective has a non-blocking ``i*`` variant (``iallreduce``,
``iallgather``, ``ibroadcast``, ``ireduce_scatter``) returning a
:class:`WorkHandle` — the same issue/wait split PyTorch ``ProcessGroup``
and Horovod expose.  Issue computes the numerics eagerly (the simulator
is deterministic, so results cannot depend on wait order — bit-exactness
by construction), charges scratch, appends the ledger event, and places
the collective on the comm stream; ``wait()`` releases the scratch and
blocks the compute streams at the collective's timeline end.  The
blocking methods are exactly ``issue + wait``, so existing callers see
identical numerics, ledger totals, and peak footprints.

The API mirrors mpi4py's buffer-object conventions (`Allreduce`,
`Allgather`, ...) in lower-case, operating on numpy arrays directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import ExitStack

import numpy as np

from . import collectives as coll
from .device import DeviceSpec, ScopedAllocation, SimulatedDevice, TITAN_X
from .interconnect import Interconnect, PAPER_CLUSTER_FABRIC
from .timeline import Timeline
from .tracing import CostLedger

__all__ = ["Communicator", "WorkHandle"]


class WorkHandle:
    """One in-flight non-blocking collective.

    Returned by the communicator's ``i*`` methods.  The numeric results
    are computed at issue time (the simulator is single-threaded and
    deterministic); what the handle defers is the *accounting*: scratch
    buffers stay charged to every device, and the simulated compute
    streams are not blocked, until :meth:`wait`.

    A handle must be awaited exactly once before the results are used —
    dropping one leaks scratch memory and desynchronizes the timeline,
    which is the bug class lint rule ``REPRO007`` and the runtime
    sanitizer's dropped-handle check both target.
    """

    def __init__(
        self,
        comm: "Communicator",
        op: str,
        results: list[np.ndarray],
        scratch: ExitStack,
        scratch_bytes: int,
        ticket,
        tag: str,
    ):
        self._comm = comm
        self.op = op
        self.tag = tag
        self._results = results
        self._scratch = scratch
        self.scratch_bytes = scratch_bytes
        self.ticket = ticket
        self._complete = False

    def wait(self) -> list[np.ndarray]:
        """Complete the collective and return the per-rank results.

        Releases the scratch buffers, removes the handle from the
        communicator's pending set, and advances every rank's compute
        stream to the collective's timeline end.  Idempotent: a second
        ``wait()`` returns the cached results without re-accounting.
        """
        if not self._complete:
            if self._comm.verifier is not None:
                self._comm.verifier.observe_wait(self)
            self._complete = True
            self._scratch.close()
            self._comm._pending.discard(self)
            if self.ticket is not None:
                self._comm.timeline.complete(self.ticket)
        return self._results

    def is_complete(self) -> bool:
        """Whether :meth:`wait` has already been called.

        The simulator has no true concurrency: completion is observed,
        never polled, so this reports the handle's await state.
        """
        return self._complete

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self._complete else "pending"
        return f"WorkHandle(op={self.op!r}, tag={self.tag!r}, {state})"


class Communicator:
    """A simulated communicator over ``world_size`` ranks.

    Parameters
    ----------
    world_size:
        Number of simulated ranks (GPUs).
    device_spec:
        Hardware description applied to every rank's device.
    fabric:
        Interconnect topology; defaults to the paper's PCIe + FDR-IB
        cluster with 8 GPUs per node.
    ledger:
        Optional shared cost ledger; a fresh one is created if omitted.
    track_memory:
        When False, scratch-buffer charging is skipped (useful for pure
        accuracy experiments where OOM modelling is irrelevant and the
        simulated ``world`` exceeds what a 12 GB card could hold).
    timeline:
        Optional shared event timeline; a fresh one is created if
        omitted.  All collectives — blocking and non-blocking — are
        scheduled onto it.

    Notes
    -----
    The ``metrics`` attribute is ``None`` by default; a
    :class:`~repro.telemetry.TelemetrySession` sets it to its
    :class:`~repro.telemetry.MetricsRegistry` via ``track()``, after
    which every issued collective also increments the
    ``repro_collectives_total`` / ``repro_collective_wire_bytes_total``
    counter families (labelled by op) and the wire layer records its
    per-codec histograms.
    """

    def __init__(
        self,
        world_size: int,
        device_spec: DeviceSpec = TITAN_X,
        fabric: Interconnect = PAPER_CLUSTER_FABRIC,
        ledger: CostLedger | None = None,
        track_memory: bool = True,
        timeline: Timeline | None = None,
    ):
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size
        self.fabric = fabric
        self.ledger = ledger if ledger is not None else CostLedger()
        self.track_memory = track_memory
        self.timeline = timeline if timeline is not None else Timeline(world_size)
        if self.timeline.world_size != world_size:
            raise ValueError(
                f"timeline world size {self.timeline.world_size} != "
                f"communicator world size {world_size}"
            )
        self.devices = [
            SimulatedDevice(device_id=r, spec=device_spec) for r in range(world_size)  # mesh-ok: one simulated device per flat rank by definition
        ]
        self._pending: set[WorkHandle] = set()
        # Hot-path caches: the ring link for this (fabric, world) pair is
        # immutable, and the telemetry counter families resolve to the
        # same objects on every issue — derive both once, not per call.
        self._ring_link_cache = None
        self._metric_counters = None
        #: Optional telemetry registry (set by TelemetrySession.track).
        self.metrics = None
        #: Optional lockstep verifier (set by LockstepVerifier.attach);
        #: observes every issue/wait/barrier for SPMD cross-checking.
        self.verifier = None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_ranks(self, arrays: Sequence[np.ndarray], op: str) -> None:
        if len(arrays) != self.world_size:
            raise ValueError(
                f"{op}: got {len(arrays)} per-rank arrays for a "
                f"{self.world_size}-rank communicator"
            )

    def _ring_link(self):
        link = self._ring_link_cache
        if link is None:
            link = self._ring_link_cache = self.fabric.ring_link(self.world_size)
        return link

    def _issue(
        self,
        op: str,
        results: list[np.ndarray],
        scratch_bytes: int,
        scratch_tag: str,
        wire_bytes_per_rank: int,
        time_s: float,
        tag: str,
        payload_bytes_per_rank: int | None = None,
        payload: Sequence[np.ndarray] | None = None,
    ) -> WorkHandle:
        """Common issue path: charge scratch, schedule, record, enqueue.

        ``payload`` is the caller's per-rank array list, forwarded (not
        copied) to an attached :class:`~repro.cluster.lockstep.\
LockstepVerifier` so it can fingerprint the envelope and hash the
        in-flight buffers.
        """
        scratch = ExitStack()
        if self.track_memory and scratch_bytes > 0:
            for dev in self.devices:
                scratch.enter_context(
                    ScopedAllocation(dev, scratch_bytes, scratch_tag)
                )
        ticket = self.timeline.schedule_collective(time_s, name=f"{op}:{tag}")
        self.ledger.record(
            op=op,
            world=self.world_size,
            wire_bytes_per_rank=wire_bytes_per_rank,
            time_s=time_s,
            tag=tag,
            start_s=ticket.start,
            end_s=ticket.end,
            payload_bytes_per_rank=payload_bytes_per_rank,
        )
        if self.metrics is not None:
            cached = self._metric_counters
            if cached is None or cached[0] is not self.metrics:
                cached = self._metric_counters = (
                    self.metrics,
                    self.metrics.counter(
                        "repro_collectives_total",
                        "Collectives issued, by op",
                        labelnames=("op",),
                    ),
                    self.metrics.counter(
                        "repro_collective_wire_bytes_total",
                        "Per-rank wire bytes issued, by op",
                        labelnames=("op",),
                    ),
                )
            cached[1].inc(op=op)
            cached[2].inc(wire_bytes_per_rank, op=op)
        handle = WorkHandle(
            self, op, results, scratch, scratch_bytes, ticket, tag
        )
        self._pending.add(handle)
        if self.verifier is not None:
            self.verifier.observe_issue(handle, payload)
        return handle

    # ------------------------------------------------------------------
    # non-blocking collectives (the async engine)
    # ------------------------------------------------------------------

    def iallreduce(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
        shared_result: bool = False,
        stacked: np.ndarray | None = None,
    ) -> WorkHandle:
        """Non-blocking sum-allreduce; ring algorithm cost model.

        Scratch: one extra buffer of the message size per rank (the ring
        works in-place on shards, needing only a receive shard; we charge
        a conservative full-message receive buffer), held until
        ``wait()``.

        ``payload_bytes`` is the optional pre-codec (logical) per-rank
        payload size: codec layers pass it so the ledger can report the
        measured compression factor alongside the encoded wire bytes.

        ``shared_result`` hands every rank the *same* result array (the
        values are identical anyway); callers promise read-only use.
        Accounting (scratch, wire bytes, timeline) is unchanged — only
        host-side buffer copies are skipped.

        ``stacked`` is the caller's assertion that ``arrays`` are, in
        order, the rows of this one ``(world, ...)`` block — letting the
        reduction skip restacking ``world`` views.  Bits, accounting and
        results are identical to the unstacked call.
        """
        self._check_ranks(arrays, "allreduce")
        nbytes = int(arrays[0].nbytes)
        return self._issue(
            op="allreduce",
            results=coll.allreduce_arrays(
                arrays, shared_result=shared_result, stacked=stacked
            ),
            scratch_bytes=nbytes,
            scratch_tag=f"allreduce-recv:{tag}",
            wire_bytes_per_rank=coll.allreduce_wire_bytes(self.world_size, nbytes),
            time_s=coll.ring_allreduce_time(
                self.world_size, nbytes, self._ring_link()
            ),
            tag=tag,
            payload_bytes_per_rank=(
                None
                if payload_bytes is None
                else coll.allreduce_wire_bytes(self.world_size, payload_bytes)
            ),
            payload=arrays,
        )

    def iallgather(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
        shared_result: bool = False,
    ) -> WorkHandle:
        """Non-blocking allgather (allgatherv).

        Scratch: every rank must hold the **full gathered result** — the
        ``Θ(G·K·D)`` footprint that limits the baseline — until
        ``wait()``.

        ``payload_bytes`` is the optional pre-codec (logical) max
        per-rank contribution, recorded for measured-compression
        reporting (see :meth:`iallreduce`).  ``shared_result`` is as for
        :meth:`iallreduce`: one shared result object, read-only callers.
        """
        self._check_ranks(arrays, "allgather")
        per_rank_bytes = [int(np.atleast_1d(a).nbytes) for a in arrays]
        total_bytes = sum(per_rank_bytes)
        max_contrib = max(per_rank_bytes)
        return self._issue(
            op="allgather",
            results=coll.allgather_arrays(arrays, shared_result=shared_result),
            scratch_bytes=total_bytes,
            scratch_tag=f"allgather-recv:{tag}",
            wire_bytes_per_rank=coll.allgather_wire_bytes(
                self.world_size, max_contrib
            ),
            time_s=coll.ring_allgather_time(
                self.world_size, max_contrib, self._ring_link()
            ),
            tag=tag,
            payload_bytes_per_rank=(
                None
                if payload_bytes is None
                else coll.allgather_wire_bytes(self.world_size, payload_bytes)
            ),
            payload=arrays,
        )

    def ibroadcast(
        self, arrays: Sequence[np.ndarray], root: int = 0, tag: str = ""
    ) -> WorkHandle:
        """Non-blocking broadcast of the root's array to all ranks."""
        self._check_ranks(arrays, "broadcast")
        nbytes = int(arrays[root].nbytes)
        return self._issue(
            op="broadcast",
            results=coll.broadcast_arrays(arrays, root=root),
            scratch_bytes=nbytes,
            scratch_tag=f"broadcast-recv:{tag}",
            wire_bytes_per_rank=coll.broadcast_wire_bytes(
                self.world_size, nbytes
            ),
            time_s=coll.ring_broadcast_time(
                self.world_size, nbytes, self._ring_link()
            ),
            tag=tag,
            payload=arrays,
        )

    def ireduce_scatter(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> WorkHandle:
        """Non-blocking sum-reduce + scatter of equal shards, one per rank."""
        self._check_ranks(arrays, "reduce_scatter")
        nbytes = int(arrays[0].nbytes)
        return self._issue(
            op="reduce_scatter",
            results=coll.reduce_scatter_arrays(arrays),
            scratch_bytes=nbytes // self.world_size,
            scratch_tag=f"reduce_scatter-recv:{tag}",
            wire_bytes_per_rank=coll.reduce_scatter_wire_bytes(
                self.world_size, nbytes
            ),
            time_s=coll.ring_reduce_scatter_time(
                self.world_size, nbytes, self._ring_link()
            ),
            tag=tag,
            payload=arrays,
        )

    def issue_scheduled(
        self,
        op: str,
        results: Sequence[np.ndarray] | None = None,
        *,
        time_s: float,
        wire_bytes_per_rank: int,
        scratch_bytes: int = 0,
        scratch_tag: str = "",
        tag: str = "",
        payload_bytes_per_rank: int | None = None,
        payload: Sequence[np.ndarray] | None = None,
    ) -> WorkHandle:
        """Issue one explicitly-costed collective step.

        Entry point for composite transfer schedules — e.g. the per-hop
        ring steps of the fused compressed reductions in
        :mod:`repro.core.wire.fused` — whose numerics the caller has
        already computed and whose wire time/bytes the caller derives
        from data-dependent encoded frame sizes.  Accounting is the
        standard :meth:`_issue` funnel: scratch charged to every device
        until ``wait()``, one ``time_s`` collective placed on the shared
        link (normal Timeline contention rules apply), a ledger event
        with the encoded ``wire_bytes_per_rank`` (``payload_bytes_per_rank``
        rides along for measured-compression reporting), collective
        metrics counters, and lockstep-verifier observation of
        ``payload``.  ``wait()`` advances every rank's compute clock to
        the step's end, exactly like any other collective.
        """
        if time_s < 0:
            raise ValueError("time_s must be non-negative")
        if wire_bytes_per_rank < 0:
            raise ValueError("wire_bytes_per_rank must be non-negative")
        return self._issue(
            op=op,
            results=[] if results is None else list(results),
            scratch_bytes=scratch_bytes,
            scratch_tag=scratch_tag or f"{op}-recv:{tag}",
            wire_bytes_per_rank=wire_bytes_per_rank,
            time_s=time_s,
            tag=tag,
            payload_bytes_per_rank=payload_bytes_per_rank,
            payload=payload,
        )

    # ------------------------------------------------------------------
    # blocking collectives (issue + wait; numerics and accounting are
    # bit-identical to the pre-async engine)
    # ------------------------------------------------------------------

    def allreduce(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
    ) -> list[np.ndarray]:
        """Sum-allreduce across ranks (ring algorithm cost model)."""
        return self.iallreduce(arrays, tag=tag, payload_bytes=payload_bytes).wait()

    def allgather(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
    ) -> list[np.ndarray]:
        """Allgather (allgatherv) across ranks."""
        return self.iallgather(arrays, tag=tag, payload_bytes=payload_bytes).wait()

    def broadcast(
        self, arrays: Sequence[np.ndarray], root: int = 0, tag: str = ""
    ) -> list[np.ndarray]:
        """Broadcast the root's array to all ranks."""
        return self.ibroadcast(arrays, root=root, tag=tag).wait()

    def reduce_scatter(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Sum-reduce then scatter equal shards, one per rank."""
        return self.ireduce_scatter(arrays, tag=tag).wait()

    def barrier(self, tag: str = "") -> None:
        """Synchronization point: latency-only, no payload."""
        link = self._ring_link()
        time_s = 2 * (self.world_size - 1) * link.latency
        ticket = self.timeline.schedule_collective(time_s, name=f"barrier:{tag}")
        self.timeline.complete(ticket)
        self.ledger.record(
            op="barrier",
            world=self.world_size,
            wire_bytes_per_rank=0,
            time_s=time_s,
            tag=tag,
            start_s=ticket.start,
            end_s=ticket.end,
        )
        if self.verifier is not None:
            self.verifier.observe_barrier(tag)

    def wait_all(self) -> int:
        """Wait every pending handle (drain the comm streams).

        Returns the number of handles completed.  Useful at step or
        epoch boundaries to guarantee no work is silently in flight.
        """
        pending = list(self._pending)
        for handle in pending:
            handle.wait()
        if self.verifier is not None:
            self.verifier.check("wait_all")
        return len(pending)

    # ------------------------------------------------------------------
    # memory views
    # ------------------------------------------------------------------

    @property
    def pending_work(self) -> tuple[WorkHandle, ...]:
        """Handles issued but not yet awaited (order unspecified)."""
        return tuple(self._pending)

    @property
    def in_flight_scratch_bytes(self) -> int:
        """Scratch bytes currently charged *per rank* by pending async work.

        Every collective charges its scratch to all devices, so this is
        the per-device (not summed-over-devices) in-flight footprint.
        Zero when ``track_memory`` is off or nothing is pending.
        """
        if not self.track_memory:
            return 0
        return sum(h.scratch_bytes for h in self._pending)

    @property
    def peak_bytes_per_rank(self) -> int:
        """Maximum peak footprint over all devices.

        The peak *includes* scratch of in-flight async work: a handle
        issued but not yet awaited keeps its receive buffers charged to
        every device, exactly as a real non-blocking collective pins its
        buffers until completion.
        """
        return max(dev.peak_bytes for dev in self.devices)

    def reset_peaks(self) -> int:
        """Reset every device's high-water mark; report in-flight scratch.

        Each device's peak is reset to its *current* footprint — which
        still contains the scratch of any pending (issued, un-awaited)
        async collectives, since those buffers remain live until their
        handle's ``wait()``.  A post-reset ``peak_bytes_per_rank`` is
        therefore never smaller than the in-flight async scratch.

        Returns
        -------
        int
            The per-rank in-flight scratch bytes still charged at reset
            time (``in_flight_scratch_bytes``), so callers measuring
            "peak since reset" can see how much of the floor is pending
            async work rather than persistent tensors.
        """
        for dev in self.devices:
            dev.reset_peak()
        return self.in_flight_scratch_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(world_size={self.world_size}, "
            f"device={self.devices[0].spec.name!r})"
        )
