"""The simulated-cluster communicator: MPI-flavoured collectives with
memory and cost accounting.

Design
------
The simulator is **SPMD-in-one-process**: all ranks live in the host
Python process and the training loop advances them together.  A
collective therefore takes a *list* of per-rank arrays (index = rank)
and returns the per-rank results, instead of being called once per MPI
process.  This keeps the numerics bit-exact and the control flow
single-threaded, while the ledger and the per-device allocators capture
what a real cluster would have moved and held:

* each collective charges its **scratch buffers** to every participating
  :class:`~repro.cluster.device.SimulatedDevice` for the duration of the
  call — an ALLGATHER of dense gradients really does spike every GPU by
  ``G*K*D`` floats, which is how the baseline OOMs in Tables III/IV;
* each collective records **wire bytes per rank** and **alpha-beta model
  time** to the :class:`~repro.cluster.tracing.CostLedger`.

The API mirrors mpi4py's buffer-object conventions (`Allreduce`,
`Allgather`, ...) in lower-case, operating on numpy arrays directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import ExitStack

import numpy as np

from . import collectives as coll
from .device import DeviceSpec, ScopedAllocation, SimulatedDevice, TITAN_X
from .interconnect import Interconnect, PAPER_CLUSTER_FABRIC
from .tracing import CostLedger

__all__ = ["Communicator"]


class Communicator:
    """A simulated communicator over ``world_size`` ranks.

    Parameters
    ----------
    world_size:
        Number of simulated ranks (GPUs).
    device_spec:
        Hardware description applied to every rank's device.
    fabric:
        Interconnect topology; defaults to the paper's PCIe + FDR-IB
        cluster with 8 GPUs per node.
    ledger:
        Optional shared cost ledger; a fresh one is created if omitted.
    track_memory:
        When False, scratch-buffer charging is skipped (useful for pure
        accuracy experiments where OOM modelling is irrelevant and the
        simulated ``world`` exceeds what a 12 GB card could hold).
    """

    def __init__(
        self,
        world_size: int,
        device_spec: DeviceSpec = TITAN_X,
        fabric: Interconnect = PAPER_CLUSTER_FABRIC,
        ledger: CostLedger | None = None,
        track_memory: bool = True,
    ):
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size
        self.fabric = fabric
        self.ledger = ledger if ledger is not None else CostLedger()
        self.track_memory = track_memory
        self.devices = [
            SimulatedDevice(device_id=r, spec=device_spec) for r in range(world_size)
        ]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_ranks(self, arrays: Sequence[np.ndarray], op: str) -> None:
        if len(arrays) != self.world_size:
            raise ValueError(
                f"{op}: got {len(arrays)} per-rank arrays for a "
                f"{self.world_size}-rank communicator"
            )

    def _ring_link(self):
        return self.fabric.ring_link(self.world_size)

    def _scratch(self, stack: ExitStack, nbytes: int, tag: str) -> None:
        """Charge a temporary buffer of ``nbytes`` on every device."""
        if not self.track_memory or nbytes == 0:
            return
        for dev in self.devices:
            stack.enter_context(ScopedAllocation(dev, nbytes, tag))

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def allreduce(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Sum-allreduce across ranks (ring algorithm cost model).

        Scratch: one extra buffer of the message size per rank (the ring
        works in-place on shards, needing only a receive shard; we charge
        a conservative full-message receive buffer).
        """
        self._check_ranks(arrays, "allreduce")
        nbytes = int(arrays[0].nbytes)
        with ExitStack() as stack:
            self._scratch(stack, nbytes, f"allreduce-recv:{tag}")
            results = coll.allreduce_arrays(arrays)
        self.ledger.record(
            op="allreduce",
            world=self.world_size,
            wire_bytes_per_rank=coll.allreduce_wire_bytes(self.world_size, nbytes),
            time_s=coll.ring_allreduce_time(self.world_size, nbytes, self._ring_link()),
            tag=tag,
        )
        return results

    def allgather(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Allgather (allgatherv) across ranks.

        Scratch: every rank must hold the **full gathered result** — this
        is the ``Θ(G·K·D)`` footprint that limits the baseline.
        """
        self._check_ranks(arrays, "allgather")
        per_rank_bytes = [int(np.atleast_1d(a).nbytes) for a in arrays]
        total_bytes = sum(per_rank_bytes)
        max_contrib = max(per_rank_bytes)
        with ExitStack() as stack:
            self._scratch(stack, total_bytes, f"allgather-recv:{tag}")
            results = coll.allgather_arrays(arrays)
        self.ledger.record(
            op="allgather",
            world=self.world_size,
            wire_bytes_per_rank=coll.allgather_wire_bytes(
                self.world_size, max_contrib
            ),
            time_s=coll.ring_allgather_time(
                self.world_size, max_contrib, self._ring_link()
            ),
            tag=tag,
        )
        return results

    def broadcast(
        self, arrays: Sequence[np.ndarray], root: int = 0, tag: str = ""
    ) -> list[np.ndarray]:
        """Broadcast the root's array to all ranks."""
        self._check_ranks(arrays, "broadcast")
        nbytes = int(arrays[root].nbytes)
        with ExitStack() as stack:
            self._scratch(stack, nbytes, f"broadcast-recv:{tag}")
            results = coll.broadcast_arrays(arrays, root=root)
        self.ledger.record(
            op="broadcast",
            world=self.world_size,
            wire_bytes_per_rank=coll.broadcast_wire_bytes(self.world_size, nbytes),
            time_s=coll.ring_broadcast_time(self.world_size, nbytes, self._ring_link()),
            tag=tag,
        )
        return results

    def reduce_scatter(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Sum-reduce then scatter equal shards, one per rank."""
        self._check_ranks(arrays, "reduce_scatter")
        nbytes = int(arrays[0].nbytes)
        shard_bytes = nbytes // self.world_size
        with ExitStack() as stack:
            self._scratch(stack, shard_bytes, f"reduce_scatter-recv:{tag}")
            results = coll.reduce_scatter_arrays(arrays)
        self.ledger.record(
            op="reduce_scatter",
            world=self.world_size,
            wire_bytes_per_rank=coll.reduce_scatter_wire_bytes(
                self.world_size, nbytes
            ),
            time_s=coll.ring_reduce_scatter_time(
                self.world_size, nbytes, self._ring_link()
            ),
            tag=tag,
        )
        return results

    def barrier(self, tag: str = "") -> None:
        """Synchronization point: latency-only, no payload."""
        link = self._ring_link()
        self.ledger.record(
            op="barrier",
            world=self.world_size,
            wire_bytes_per_rank=0,
            time_s=2 * (self.world_size - 1) * link.latency,
            tag=tag,
        )

    # ------------------------------------------------------------------
    # memory views
    # ------------------------------------------------------------------

    @property
    def peak_bytes_per_rank(self) -> int:
        """Maximum peak footprint over all devices."""
        return max(dev.peak_bytes for dev in self.devices)

    def reset_peaks(self) -> None:
        for dev in self.devices:
            dev.reset_peak()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(world_size={self.world_size}, "
            f"device={self.devices[0].spec.name!r})"
        )
