"""Process groups: sub-communicators over subsets of ranks.

The seeding technique (Section III-B of the paper) partitions the G GPUs
into *seed groups*: GPUs in the same group draw the same sampled-softmax
candidates.  A :class:`ProcessGroup` provides the rank-set bookkeeping
for such partitions, and can materialize a child
:class:`~repro.cluster.communicator.Communicator` restricted to its
members (sharing the parent's ledger, so cost attribution stays global).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .communicator import Communicator

__all__ = [
    "ProcessGroup",
    "group_of_rank",
    "partition_ranks",
    "sub_communicator",
]


@dataclass(frozen=True)
class ProcessGroup:
    """An ordered, duplicate-free subset of a parent communicator's ranks."""

    parent_world: int
    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.ranks) == 0:
            raise ValueError("a process group needs at least one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in group: {self.ranks}")
        for r in self.ranks:
            if not 0 <= r < self.parent_world:
                raise ValueError(
                    f"rank {r} out of range for world size {self.parent_world}"
                )

    @property
    def size(self) -> int:
        return len(self.ranks)

    def contains(self, rank: int) -> bool:
        return rank in self.ranks

    def local_rank(self, global_rank: int) -> int:
        """Position of ``global_rank`` inside this group."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ValueError(
                f"rank {global_rank} is not a member of group {self.ranks}"
            ) from None


def partition_ranks(world_size: int, num_groups: int) -> list[ProcessGroup]:
    """Split ``world_size`` ranks into ``num_groups`` contiguous groups.

    Group sizes differ by at most one (the first ``world_size % num_groups``
    groups get the extra rank).  Used by the seeding strategies to assign
    GPUs to shared-seed groups.
    """
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    if num_groups > world_size:
        raise ValueError(
            f"cannot split {world_size} ranks into {num_groups} non-empty groups"
        )
    base, extra = divmod(world_size, num_groups)
    groups: list[ProcessGroup] = []
    start = 0
    for g in range(num_groups):
        size = base + (1 if g < extra else 0)
        groups.append(
            ProcessGroup(parent_world=world_size, ranks=tuple(range(start, start + size)))
        )
        start += size
    assert start == world_size
    return groups


def group_of_rank(groups: Sequence[ProcessGroup], rank: int) -> int:
    """Index of the group containing ``rank``; raises if not found."""
    for i, g in enumerate(groups):
        if g.contains(rank):
            return i
    raise ValueError(f"rank {rank} not in any group")


def sub_communicator(parent: Communicator, group: ProcessGroup) -> Communicator:
    """A child communicator over ``group``'s ranks, sharing the parent ledger.

    The child gets fresh device objects (memory accounting inside a
    sub-collective is rarely the quantity of interest) but every event it
    records lands in the parent's ledger for unified reporting.
    """
    if group.parent_world != parent.world_size:
        raise ValueError(
            f"group parent world {group.parent_world} != communicator world "
            f"{parent.world_size}"
        )
    return Communicator(
        world_size=group.size,
        device_spec=parent.devices[0].spec,
        fabric=parent.fabric,
        ledger=parent.ledger,
        track_memory=parent.track_memory,
    )
