"""Fault injection: degraded links, stragglers, and mid-run rank failures.

Long training runs on hundreds of GPUs meet hardware trouble; the paper's
Hero run (192 GPUs for 34 hours) is exactly the regime where a failure
story matters.  This module provides:

* :func:`degrade_fabric` — an interconnect with reduced bandwidth on one
  or both tiers (a flapping switch, a congested PCIe root complex),
  letting cost-model studies quantify sensitivity to network health;
* :func:`inject_straggler` — slow one rank's compute stream on a
  :class:`~repro.cluster.timeline.Timeline` by a constant factor (a
  thermally-throttled GPU, a noisy host), so the synchronous-straggler
  analysis of :mod:`repro.perf.stragglers` can be validated against a
  measured schedule rather than only the extreme-value formula;
* :class:`FailingCommunicator` — a communicator that raises
  :class:`RankFailureError` after a configured number of collectives,
  simulating a node crash mid-step.  Combined with
  :mod:`repro.train.checkpoint` this supports the standard
  checkpoint/restart recovery pattern, tested end-to-end in
  ``tests/cluster/test_failures.py``;
* the **fault taxonomy** consumed by the supervised recovery loop of
  :mod:`repro.train.resilience`: :class:`TransientLinkError` (a flapping
  link — the collective succeeds if retried) vs the permanent
  :class:`RankFailureError` (the rank is gone; the world must shrink);
* :class:`FaultPlan` / :class:`FaultEvent` — a declarative, seedable
  schedule of faults keyed by global collective index, replayed
  deterministically by :class:`ChaosCommunicator`.  The same plan object
  drives the chaos tests and the differential (faulted-vs-clean)
  equivalence checks.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from .communicator import Communicator
from .interconnect import Interconnect, LinkSpec
from .timeline import Timeline

__all__ = [
    "degrade_fabric",
    "inject_straggler",
    "RankFailureError",
    "TransientLinkError",
    "FailingCommunicator",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "ChaosCommunicator",
]


def degrade_fabric(
    fabric: Interconnect,
    intra_factor: float = 1.0,
    inter_factor: float = 1.0,
) -> Interconnect:
    """A copy of ``fabric`` with bandwidths divided by the given factors.

    Factors must be >= 1 (this injects degradation, not upgrades).
    """
    if intra_factor < 1.0 or inter_factor < 1.0:
        raise ValueError("degradation factors must be >= 1")

    def slow(link: LinkSpec, factor: float) -> LinkSpec:
        return LinkSpec(bandwidth=link.bandwidth / factor, latency=link.latency)

    return replace(
        fabric,
        intra_node=slow(fabric.intra_node, intra_factor),
        inter_node=slow(fabric.inter_node, inter_factor),
    )


def inject_straggler(
    timeline: Timeline, rank: int, slowdown: float
) -> Timeline:
    """Make ``rank`` a straggler: scale its compute durations by ``slowdown``.

    ``slowdown`` must be >= 1 (this injects degradation, not speedups).
    Returns the timeline for chaining.  Every subsequent collective the
    rank participates in starts no earlier than the rank's slowed issue
    point, so the whole synchronous schedule pays the straggler — the
    mechanism behind :func:`repro.perf.stragglers.straggler_slowdown`.
    """
    if slowdown < 1.0:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    timeline.set_compute_scale(rank, slowdown)
    return timeline


class RankFailureError(RuntimeError):
    """A simulated rank crashed during a collective.

    Synchronous collectives are all-or-nothing: when one rank dies, every
    participant observes the failure (as NCCL communicators do).
    """

    def __init__(self, rank: int, op: str, collective_index: int):
        self.rank = rank
        self.op = op
        self.collective_index = collective_index
        super().__init__(
            f"rank {rank} failed during {op} (collective #{collective_index})"
        )


class FailingCommunicator(Communicator):
    """A communicator that kills one rank after ``fail_after`` collectives.

    ``fail_after=None`` never fails (useful for parameterized tests).
    The failure is raised *before* the doomed collective touches any
    state, so ledger and device accounting stay consistent — exactly the
    view a surviving scheduler would have.
    """

    def __init__(
        self,
        *args,
        fail_after: int | None = None,
        failing_rank: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if fail_after is not None and fail_after < 0:
            raise ValueError("fail_after must be non-negative")
        if not 0 <= failing_rank < self.world_size:
            raise ValueError("failing_rank out of range")
        self.fail_after = fail_after
        self.failing_rank = failing_rank
        self._collectives = 0

    def _maybe_fail(self, op: str) -> None:
        if self.fail_after is not None and self._collectives >= self.fail_after:
            raise RankFailureError(self.failing_rank, op, self._collectives)
        self._collectives += 1

    # The failure fires at *issue* time — a crashed rank never enqueues
    # the collective — so both the blocking calls (issue + wait) and the
    # async ``i*`` API observe it before any state is touched.

    def iallreduce(self, arrays, tag="", **kwargs):
        """Failure-checked non-blocking allreduce."""
        self._maybe_fail("allreduce")
        return super().iallreduce(arrays, tag=tag, **kwargs)

    def iallgather(self, arrays, tag="", **kwargs):
        """Failure-checked non-blocking allgather."""
        self._maybe_fail("allgather")
        return super().iallgather(arrays, tag=tag, **kwargs)

    def ibroadcast(self, arrays, root=0, tag=""):
        """Failure-checked non-blocking broadcast."""
        self._maybe_fail("broadcast")
        return super().ibroadcast(arrays, root=root, tag=tag)

    def ireduce_scatter(self, arrays, tag=""):
        """Failure-checked non-blocking reduce-scatter."""
        self._maybe_fail("reduce_scatter")
        return super().ireduce_scatter(arrays, tag=tag)


class TransientLinkError(RuntimeError):
    """A link flapped during a collective; a retry may succeed.

    The *transient* half of the fault taxonomy.  Unlike
    :class:`RankFailureError` (the rank is gone for good), a transient
    fault models a recoverable fabric hiccup: a flapping switch port, a
    dropped RDMA completion, a timed-out NCCL kernel that a fresh
    communicator round would complete.  :class:`ChaosCommunicator`
    raises it at *issue* time, before any state is touched, so the
    supervised loop in :mod:`repro.train.resilience` can rewind the step
    and retry with backoff.
    """

    def __init__(self, rank: int, op: str, collective_index: int, attempt: int):
        self.rank = rank
        self.op = op
        self.collective_index = collective_index
        self.attempt = attempt
        super().__init__(
            f"transient link fault at rank {rank} during {op} "
            f"(collective #{collective_index}, attempt {attempt})"
        )


class FaultKind(str, Enum):
    """The fault taxonomy understood by :class:`FaultPlan`.

    * ``TRANSIENT_LINK`` — recoverable fabric hiccup; the collective is
      retried (raises :class:`TransientLinkError` ``retries`` times,
      then succeeds).
    * ``RANK_LOSS`` — permanent crash; raises
      :class:`RankFailureError` once and the world must shrink.
    * ``STRAGGLER`` — non-fatal slowdown; scales one rank's compute
      stream on the timeline (no exception is raised).
    """

    TRANSIENT_LINK = "transient_link"
    RANK_LOSS = "rank_loss"
    STRAGGLER = "straggler"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, keyed by the global collective issue index.

    Parameters
    ----------
    kind:
        Which member of the taxonomy fires.
    collective_index:
        The 0-based index (in issue order, counting only *successful*
        issues) of the first collective at or after which the event
        triggers.  Keying on issue order rather than wall/sim time makes
        replay deterministic regardless of the cost model.
    rank:
        The afflicted rank.
    retries:
        ``TRANSIENT_LINK`` only — how many consecutive issue attempts
        fail before the collective goes through.
    slowdown:
        ``STRAGGLER`` only — compute-stream scale factor (>= 1).
    """

    kind: FaultKind
    collective_index: int
    rank: int = 0
    retries: int = 1
    slowdown: float = 1.0

    def __post_init__(self):
        if self.collective_index < 0:
            raise ValueError("collective_index must be non-negative")
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.kind is FaultKind.TRANSIENT_LINK and self.retries < 1:
            raise ValueError("transient events need retries >= 1")
        if self.kind is FaultKind.STRAGGLER and self.slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1")

    def to_dict(self) -> dict:
        """JSON-serializable representation (used by :class:`FaultPlan`)."""
        return {
            "kind": self.kind.value,
            "collective_index": self.collective_index,
            "rank": self.rank,
            "retries": self.retries,
            "slowdown": self.slowdown,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=FaultKind(data["kind"]),
            collective_index=int(data["collective_index"]),
            rank=int(data.get("rank", 0)),
            retries=int(data.get("retries", 1)),
            slowdown=float(data.get("slowdown", 1.0)),
        )


class FaultPlan:
    """A declarative, replayable schedule of faults.

    Events are kept sorted by ``collective_index``; the plan itself is
    immutable at runtime — all mutable replay state (which events have
    fired, remaining retries) lives in :class:`ChaosCommunicator`, so
    one plan object can drive both arms of a differential test.

    Plans round-trip through JSON (:meth:`save` / :meth:`load`) so the
    CLI's ``train --resilient --fault-plan plan.json`` and the chaos
    suite share the same format, and :meth:`random` draws a plan
    deterministically from a seed for the randomized chaos tests.
    """

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent] = (), seed: int = 0):
        self.events = tuple(
            sorted(events, key=lambda e: (e.collective_index, e.rank, e.kind.value))
        )
        self.seed = int(seed)

    @classmethod
    def random(
        cls,
        seed: int,
        world_size: int,
        num_collectives: int,
        n_transient: int = 2,
        n_rank_loss: int = 0,
        n_straggler: int = 0,
        max_retries: int = 3,
        max_slowdown: float = 3.0,
    ) -> "FaultPlan":
        """Draw a plan deterministically from ``seed``.

        Transient and straggler events land uniformly over the first
        ``num_collectives`` issues; a rank loss (at most one is
        meaningful per plan arm) lands in the second half so there is
        progress to recover.
        """
        if world_size < 1 or num_collectives < 1:
            raise ValueError("world_size and num_collectives must be >= 1")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for _ in range(n_transient):
            events.append(
                FaultEvent(
                    kind=FaultKind.TRANSIENT_LINK,
                    collective_index=int(rng.integers(num_collectives)),
                    rank=int(rng.integers(world_size)),
                    retries=int(rng.integers(1, max_retries + 1)),
                )
            )
        for _ in range(n_straggler):
            events.append(
                FaultEvent(
                    kind=FaultKind.STRAGGLER,
                    collective_index=int(rng.integers(num_collectives)),
                    rank=int(rng.integers(world_size)),
                    slowdown=float(1.0 + rng.random() * (max_slowdown - 1.0)),
                )
            )
        for _ in range(n_rank_loss):
            events.append(
                FaultEvent(
                    kind=FaultKind.RANK_LOSS,
                    collective_index=int(
                        rng.integers(num_collectives // 2, num_collectives)
                    ),
                    rank=int(rng.integers(world_size)),
                )
            )
        return cls(events, seed=seed)

    def to_dict(self) -> dict:
        """JSON-serializable representation of the whole plan."""
        return {
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            events=[FaultEvent.from_dict(e) for e in data.get("events", [])],
            seed=int(data.get("seed", 0)),
        )

    def save(self, path: str | pathlib.Path) -> None:
        """Write the plan as JSON to ``path``."""
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Read a plan previously written by :meth:`save`."""
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    def transient_events(self) -> tuple[FaultEvent, ...]:
        """The ``TRANSIENT_LINK`` subset, in schedule order."""
        return tuple(e for e in self.events if e.kind is FaultKind.TRANSIENT_LINK)

    def permanent_events(self) -> tuple[FaultEvent, ...]:
        """The ``RANK_LOSS`` subset, in schedule order."""
        return tuple(e for e in self.events if e.kind is FaultKind.RANK_LOSS)

    def only_transient(self) -> "FaultPlan":
        """A copy of the plan with permanent rank losses stripped.

        Used by the differential tests: a transient-only plan must leave
        the final weights bit-identical to a fault-free run.
        """
        return FaultPlan(
            [e for e in self.events if e.kind is not FaultKind.RANK_LOSS],
            seed=self.seed,
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = {}
        for e in self.events:
            kinds[e.kind.value] = kinds.get(e.kind.value, 0) + 1
        return f"FaultPlan(seed={self.seed}, events={kinds})"


class ChaosCommunicator(Communicator):
    """A communicator that replays a :class:`FaultPlan` deterministically.

    Before each collective *issues* (before any state mutation — the
    same rollback-safe point :class:`FailingCommunicator` uses), the
    plan is consulted:

    * due ``STRAGGLER`` events scale the rank's compute stream once and
      the issue proceeds;
    * due ``TRANSIENT_LINK`` events with retries remaining decrement
      their budget and raise :class:`TransientLinkError` **without**
      advancing the collective counter, so the retried issue meets the
      same event until its budget is exhausted;
    * due ``RANK_LOSS`` events fire once and raise
      :class:`RankFailureError`.

    Every injection is appended to :attr:`injected` —
    ``(collective_index, op, event)`` tuples — which the chaos tests use
    to assert the plan actually fired.
    """

    def __init__(self, *args, plan: FaultPlan | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan = plan if plan is not None else FaultPlan()
        self._collectives = 0
        self._remaining = {
            i: ev.retries
            for i, ev in enumerate(self.plan.events)
            if ev.kind is FaultKind.TRANSIENT_LINK
        }
        self._fired: set[int] = set()
        self.injected: list[tuple[int, str, FaultEvent]] = []

    @property
    def collectives_issued(self) -> int:
        """Number of successfully issued collectives so far."""
        return self._collectives

    def _consult(self, op: str, advance: bool = True) -> None:  # spmd-ok: chaos injection is deliberately rank-divergent — the plan kills/delays specific ranks by design
        for i, ev in enumerate(self.plan.events):
            if i in self._fired:
                continue
            if ev.collective_index > self._collectives:
                break  # events are sorted; nothing further is due yet
            if ev.kind is FaultKind.STRAGGLER:
                self._fired.add(i)
                inject_straggler(self.timeline, ev.rank, ev.slowdown)
                self.injected.append((self._collectives, op, ev))
            elif ev.kind is FaultKind.TRANSIENT_LINK:
                remaining = self._remaining[i]
                if remaining <= 0:
                    self._fired.add(i)
                    continue
                self._remaining[i] = remaining - 1
                attempt = ev.retries - remaining + 1
                self.injected.append((self._collectives, op, ev))
                raise TransientLinkError(ev.rank, op, self._collectives, attempt)
            else:  # FaultKind.RANK_LOSS
                self._fired.add(i)
                self.injected.append((self._collectives, op, ev))
                raise RankFailureError(ev.rank, op, self._collectives)
        if advance:
            self._collectives += 1

    # Like FailingCommunicator, faults fire at *issue* time: a chaotic
    # collective never charges scratch, never lands on the timeline, and
    # never records a ledger event, so a supervised retry sees clean
    # accounting.

    def iallreduce(self, arrays, tag="", **kwargs):
        """Plan-checked non-blocking allreduce."""
        self._consult("allreduce")
        return super().iallreduce(arrays, tag=tag, **kwargs)

    def iallgather(self, arrays, tag="", **kwargs):
        """Plan-checked non-blocking allgather."""
        self._consult("allgather")
        return super().iallgather(arrays, tag=tag, **kwargs)

    def ibroadcast(self, arrays, root=0, tag=""):
        """Plan-checked non-blocking broadcast."""
        self._consult("broadcast")
        return super().ibroadcast(arrays, root=root, tag=tag)

    def ireduce_scatter(self, arrays, tag=""):
        """Plan-checked non-blocking reduce-scatter."""
        self._consult("reduce_scatter")
        return super().ireduce_scatter(arrays, tag=tag)

    def barrier(self, tag=""):
        """Plan-checked barrier.

        A due ``RANK_LOSS`` fires here too — a crashed rank never reaches
        the barrier, so the survivors must observe the eviction rather
        than hang.  Consulting does **not** advance the collective
        counter: barriers are not payload collectives, and advancing
        would shift the issue indices every existing fault plan keys on.
        """
        self._consult("barrier", advance=False)
        super().barrier(tag=tag)
