"""Fault injection: degraded links, stragglers, and mid-run rank failures.

Long training runs on hundreds of GPUs meet hardware trouble; the paper's
Hero run (192 GPUs for 34 hours) is exactly the regime where a failure
story matters.  This module provides:

* :func:`degrade_fabric` — an interconnect with reduced bandwidth on one
  or both tiers (a flapping switch, a congested PCIe root complex),
  letting cost-model studies quantify sensitivity to network health;
* :func:`inject_straggler` — slow one rank's compute stream on a
  :class:`~repro.cluster.timeline.Timeline` by a constant factor (a
  thermally-throttled GPU, a noisy host), so the synchronous-straggler
  analysis of :mod:`repro.perf.stragglers` can be validated against a
  measured schedule rather than only the extreme-value formula;
* :class:`FailingCommunicator` — a communicator that raises
  :class:`RankFailureError` after a configured number of collectives,
  simulating a node crash mid-step.  Combined with
  :mod:`repro.train.checkpoint` this supports the standard
  checkpoint/restart recovery pattern, tested end-to-end in
  ``tests/cluster/test_failures.py``.
"""

from __future__ import annotations

from dataclasses import replace

from .communicator import Communicator
from .interconnect import Interconnect, LinkSpec
from .timeline import Timeline

__all__ = [
    "degrade_fabric",
    "inject_straggler",
    "RankFailureError",
    "FailingCommunicator",
]


def degrade_fabric(
    fabric: Interconnect,
    intra_factor: float = 1.0,
    inter_factor: float = 1.0,
) -> Interconnect:
    """A copy of ``fabric`` with bandwidths divided by the given factors.

    Factors must be >= 1 (this injects degradation, not upgrades).
    """
    if intra_factor < 1.0 or inter_factor < 1.0:
        raise ValueError("degradation factors must be >= 1")

    def slow(link: LinkSpec, factor: float) -> LinkSpec:
        return LinkSpec(bandwidth=link.bandwidth / factor, latency=link.latency)

    return replace(
        fabric,
        intra_node=slow(fabric.intra_node, intra_factor),
        inter_node=slow(fabric.inter_node, inter_factor),
    )


def inject_straggler(
    timeline: Timeline, rank: int, slowdown: float
) -> Timeline:
    """Make ``rank`` a straggler: scale its compute durations by ``slowdown``.

    ``slowdown`` must be >= 1 (this injects degradation, not speedups).
    Returns the timeline for chaining.  Every subsequent collective the
    rank participates in starts no earlier than the rank's slowed issue
    point, so the whole synchronous schedule pays the straggler — the
    mechanism behind :func:`repro.perf.stragglers.straggler_slowdown`.
    """
    if slowdown < 1.0:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    timeline.set_compute_scale(rank, slowdown)
    return timeline


class RankFailureError(RuntimeError):
    """A simulated rank crashed during a collective.

    Synchronous collectives are all-or-nothing: when one rank dies, every
    participant observes the failure (as NCCL communicators do).
    """

    def __init__(self, rank: int, op: str, collective_index: int):
        self.rank = rank
        self.op = op
        self.collective_index = collective_index
        super().__init__(
            f"rank {rank} failed during {op} (collective #{collective_index})"
        )


class FailingCommunicator(Communicator):
    """A communicator that kills one rank after ``fail_after`` collectives.

    ``fail_after=None`` never fails (useful for parameterized tests).
    The failure is raised *before* the doomed collective touches any
    state, so ledger and device accounting stay consistent — exactly the
    view a surviving scheduler would have.
    """

    def __init__(
        self,
        *args,
        fail_after: int | None = None,
        failing_rank: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if fail_after is not None and fail_after < 0:
            raise ValueError("fail_after must be non-negative")
        if not 0 <= failing_rank < self.world_size:
            raise ValueError("failing_rank out of range")
        self.fail_after = fail_after
        self.failing_rank = failing_rank
        self._collectives = 0

    def _maybe_fail(self, op: str) -> None:
        if self.fail_after is not None and self._collectives >= self.fail_after:
            raise RankFailureError(self.failing_rank, op, self._collectives)
        self._collectives += 1

    # The failure fires at *issue* time — a crashed rank never enqueues
    # the collective — so both the blocking calls (issue + wait) and the
    # async ``i*`` API observe it before any state is touched.

    def iallreduce(self, arrays, tag=""):
        """Failure-checked non-blocking allreduce."""
        self._maybe_fail("allreduce")
        return super().iallreduce(arrays, tag=tag)

    def iallgather(self, arrays, tag=""):
        """Failure-checked non-blocking allgather."""
        self._maybe_fail("allgather")
        return super().iallgather(arrays, tag=tag)

    def ibroadcast(self, arrays, root=0, tag=""):
        """Failure-checked non-blocking broadcast."""
        self._maybe_fail("broadcast")
        return super().ibroadcast(arrays, root=root, tag=tag)

    def ireduce_scatter(self, arrays, tag=""):
        """Failure-checked non-blocking reduce-scatter."""
        self._maybe_fail("reduce_scatter")
        return super().ireduce_scatter(arrays, tag=tag)
