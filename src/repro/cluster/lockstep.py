"""Dynamic SPMD lockstep verification: per-rank collective fingerprints.

The static rules (REPRO010–012) prove what they can from the AST; this
module catches the rest at runtime.  A :class:`LockstepVerifier`
attached to a :class:`~repro.cluster.communicator.Communicator` hooks
the single ``_issue`` funnel and fingerprints every collective **per
rank** as ``(issue index, op, tag, shape, dtype)``.  At synchronization
points — ``barrier``, ``wait_all``, ``Sanitizer.finish()``, or an
explicit :meth:`LockstepVerifier.check` — the per-rank streams are
cross-checked: on a real cluster a rank that issued a different (or no)
collective would deadlock the job silently; here it becomes an immediate
:class:`~repro.analysis.sanitizer.CollectiveMismatchError` with a
per-rank divergence report naming the diverging rank and call site.

A happens-before checker rides along: when ``hash_mode`` is not
``"off"``, every payload buffer is hashed at issue and re-hashed at
``wait()`` — a mutation while the transfer is (logically) in flight
raises :class:`~repro.analysis.sanitizer.InFlightMutationError`, the
runtime twin of lint rule REPRO012.  The default ``"sample"`` mode
hashes only the head and tail of each buffer so the verifier stays
well under the 5% overhead budget on ``bench_micro_collectives``;
``"full"`` hashes every byte for correctness tests.

Ranks evicted by the elastic recovery loop are recorded via
:meth:`LockstepVerifier.mark_failed` and reported as missing
participants rather than divergences — a dead rank is *expected* to
stop issuing.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["LockstepVerifier", "LockstepReport"]

#: Collectives whose payload envelope must match on every rank.
_UNIFORM_SHAPE_OPS = frozenset({"allreduce", "reduce_scatter", "broadcast"})

_HASH_MODES = ("off", "sample", "full")


def _mismatch_error(message: str) -> Exception:
    # Imported lazily: repro.analysis.sanitizer imports the communicator
    # at module level, so a module-level import here would be a cycle.
    from ..analysis.sanitizer import CollectiveMismatchError

    return CollectiveMismatchError(message)


def _mutation_error(message: str) -> Exception:
    from ..analysis.sanitizer import InFlightMutationError

    return InFlightMutationError(message)


@dataclass(frozen=True)
class LockstepReport:
    """Outcome of one cross-rank fingerprint check."""

    point: str
    world_size: int
    #: Fingerprints recorded per rank at check time.
    counts: tuple[int, ...]
    #: ``(rank, reason)`` for every evicted rank.
    evicted: tuple[tuple[int, str], ...]
    #: Length of the verified common prefix.
    verified: int

    def describe(self) -> str:
        """Human-readable summary naming missing participants."""
        lines = [
            f"lockstep@{self.point}: verified {self.verified} collective(s) "
            f"across {self.world_size} rank(s)"
        ]
        for rank, reason in self.evicted:
            lines.append(
                f"  rank {rank}: missing participant — evicted ({reason})"
            )
        return "\n".join(lines)


class LockstepVerifier:
    """Cross-checks per-rank collective fingerprints at sync points.

    Parameters
    ----------
    world_size:
        Number of ranks to track.
    hash_mode:
        In-flight buffer hashing: ``"off"`` (fingerprints only),
        ``"sample"`` (head+tail of each buffer, the cheap default), or
        ``"full"`` (every byte; use in correctness tests).
    sample_bytes:
        Byte budget for each end of a buffer in ``"sample"`` mode.
    """

    def __init__(
        self,
        world_size: int,
        hash_mode: str = "sample",
        sample_bytes: int = 1024,
    ):
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if hash_mode not in _HASH_MODES:
            raise ValueError(
                f"hash_mode must be one of {_HASH_MODES}, got {hash_mode!r}"
            )
        if sample_bytes <= 0:
            raise ValueError("sample_bytes must be positive")
        self.world_size = world_size
        self.hash_mode = hash_mode
        self.sample_bytes = sample_bytes
        #: Per-rank fingerprint streams: (index, op, tag, shape, dtype).
        self._streams: list[list[tuple]] = [[] for _ in range(world_size)]  # mesh-ok: one fingerprint stream per flat rank
        #: Verified common-prefix length.
        self._checked = 0
        #: rank -> eviction reason.
        self._evicted: dict[int, str] = {}
        #: id(handle) -> (handle, [(rank, array, digest), ...]).
        self._inflight: dict[int, tuple[object, list[tuple]]] = {}
        #: Successfully observed collective issues.
        self.collectives_observed = 0

    @classmethod
    def attach(cls, comm, **kwargs) -> "LockstepVerifier":
        """Build a verifier for ``comm`` and install it as its observer."""
        verifier = cls(comm.world_size, **kwargs)
        comm.verifier = verifier
        return verifier

    # -- rank liveness -------------------------------------------------

    @property
    def live_ranks(self) -> tuple[int, ...]:
        """Ranks still expected to participate."""
        return tuple(
            r for r in range(self.world_size) if r not in self._evicted  # mesh-ok: liveness is a flat-world property
        )

    def mark_failed(self, rank: int, reason: str = "rank failure") -> None:
        """Record that ``rank`` died: it becomes a missing participant."""
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world {self.world_size}"
            )
        self._evicted.setdefault(rank, reason)

    # -- observation hooks (called by the Communicator) ----------------

    def record(
        self,
        rank: int,
        op: str,
        tag: str = "",
        shape: Sequence[int] = (),
        dtype: str = "",
    ) -> None:
        """Append one fingerprint by hand (hand-built scenarios/tests)."""
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world {self.world_size}"
            )
        stream = self._streams[rank]
        stream.append((len(stream), op, str(tag), tuple(shape), str(dtype)))

    def observe_issue(self, handle, arrays) -> None:
        """Fingerprint one issued collective for every live rank.

        ``arrays`` is the per-rank payload list handed to the ``i*``
        method (None for payload-free ops).  Signature uniformity is
        checked immediately: an op in :data:`_UNIFORM_SHAPE_OPS` with
        per-rank shapes/dtypes, or any op with per-rank dtypes, is a
        mismatched-signature deadlock on a real cluster.
        """
        op = getattr(handle, "op", "?")
        tag = str(getattr(handle, "tag", ""))
        hashing = self.hash_mode != "off"
        hashes: list[tuple] = []
        base = None  # (rank, shape, dtype) of the first rank with a payload
        mismatch = None
        for rank in self.live_ranks:
            if arrays is None or rank >= len(arrays):
                shape, dtype = (), ""
            else:
                a = arrays[rank]
                if isinstance(a, np.ndarray):
                    if hashing:
                        hashes.append((rank, a, self._digest(a)))
                else:
                    a = np.asarray(a)
                shape, dtype = a.shape, str(a.dtype)
                if base is None:
                    base = (rank, shape, dtype)
                elif mismatch is None and (
                    dtype != base[2]
                    or (op in _UNIFORM_SHAPE_OPS and shape != base[1])
                ):
                    mismatch = (rank, shape, dtype)
            stream = self._streams[rank]
            stream.append((len(stream), op, tag, shape, dtype))
        self.collectives_observed += 1
        if mismatch is not None:
            rank, shape, dtype = mismatch
            raise _mismatch_error(
                f"mismatched `{op}` signature (tag={tag!r}): rank "
                f"{base[0]} brought shape={base[1]} "
                f"dtype={base[2]} but rank {rank} brought "
                f"shape={shape} dtype={dtype} — per-rank envelopes "
                "never match on a real cluster (static counterpart: "
                "lint rule REPRO011)"
            )
        if hashes:
            self._inflight[id(handle)] = (handle, hashes)

    def observe_wait(self, handle) -> None:
        """Re-hash the handle's payload buffers; detect in-flight writes."""
        entry = self._inflight.pop(id(handle), None)
        if entry is None:
            return
        _, hashes = entry
        for rank, array, digest in hashes:
            if self._digest(array) != digest:
                raise _mutation_error(
                    f"rank {rank}'s buffer for `{handle.op}` "
                    f"(tag={handle.tag!r}) was mutated between issue and "
                    "wait(): the in-flight transfer may read either value "
                    "— wait() before writing, or stage into a copy "
                    "(static counterpart: lint rule REPRO012)"
                )

    def observe_barrier(self, tag: str = "") -> LockstepReport:
        """Fingerprint a barrier and cross-check all live streams."""
        for rank in self.live_ranks:
            stream = self._streams[rank]
            stream.append((len(stream), "barrier", str(tag), (), ""))
        return self.check(f"barrier:{tag or '-'}")

    # -- cross-rank verification --------------------------------------

    def check(self, point: str = "check") -> LockstepReport:
        """Cross-check per-rank streams; raise on divergence.

        Compares every live rank's fingerprints beyond the already
        verified prefix against the lowest live rank's stream.  A
        content difference or a count difference raises
        ``CollectiveMismatchError`` naming the diverging rank, the issue
        index, and both call sites (tags); evicted ranks are excluded
        and reported as missing participants in the returned
        :class:`LockstepReport`.
        """
        live = self.live_ranks
        if not live:
            return self._report(point)
        base_rank = live[0]
        base = self._streams[base_rank]
        lengths = {r: len(self._streams[r]) for r in live}
        common = min(lengths.values())
        for pos in range(self._checked, common):
            want = base[pos]
            for rank in live:
                got = self._streams[rank][pos]
                if got != want:
                    raise _mismatch_error(
                        self._divergence_message(
                            point, base_rank, want, rank, got
                        )
                    )
        self._checked = common
        if len(set(lengths.values())) > 1:
            detail = ", ".join(
                f"rank {r}: {n}" for r, n in sorted(lengths.items())
            )
            laggards = sorted(r for r, n in lengths.items() if n == common)
            ahead = self._streams[max(lengths, key=lengths.get)][common]
            raise _mismatch_error(
                f"lockstep divergence at {point}: rank(s) "
                f"{laggards} stopped after {common} collective(s) while "
                f"others issued #{ahead[0]} `{ahead[1]}` "
                f"(tag={ahead[2]!r}) — on a real cluster the ranks ahead "
                f"block forever ({detail})"
            )
        return self._report(point)

    def _report(self, point: str) -> LockstepReport:
        return LockstepReport(
            point=point,
            world_size=self.world_size,
            counts=tuple(len(s) for s in self._streams),
            evicted=tuple(sorted(self._evicted.items())),
            verified=self._checked,
        )

    def _divergence_message(
        self, point: str, base_rank: int, want: tuple, rank: int, got: tuple
    ) -> str:
        def fmt(fp: tuple) -> str:
            idx, op, tag, shape, dtype = fp
            return (
                f"#{idx} `{op}` (tag={tag!r}, shape={shape}, "
                f"dtype={dtype or '-'})"
            )

        return (
            f"lockstep divergence at {point}: rank {rank} diverges from "
            f"rank {base_rank} at collective #{want[0]} — "
            f"rank {base_rank} issued {fmt(want)} but rank {rank} issued "
            f"{fmt(got)}; on a real cluster these never match and both "
            "ranks deadlock"
        )

    # -- buffer hashing ------------------------------------------------

    def _digest(self, array: np.ndarray) -> int:
        if array.flags.c_contiguous:
            flat = array.reshape(-1)
        else:
            flat = np.ascontiguousarray(array).reshape(-1)
        if self.hash_mode == "sample" and flat.nbytes > 2 * self.sample_bytes:
            k = max(1, self.sample_bytes // max(1, flat.itemsize))
            # Chain head and tail through one CRC — no concatenation copy.
            return zlib.crc32(flat[-k:].tobytes(), zlib.crc32(flat[:k].tobytes()))
        return zlib.crc32(flat.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LockstepVerifier(world_size={self.world_size}, "
            f"hash_mode={self.hash_mode!r}, "
            f"observed={self.collectives_observed})"
        )
