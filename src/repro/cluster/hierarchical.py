"""Hierarchical (two-level) allreduce over the PCIe/Infiniband fabric.

A flat ring over a multi-node job pushes *all* traffic through the slow
inter-node links.  The hierarchical scheme exploits the fast intra-node
tier (Table II: PCIe at 32 GB/s vs FDR at 15 GB/s bidirectional):

1. intra-node ring **reduce-scatter** — each of the ``L`` GPUs in a node
   ends up with a 1/L shard of the node's sum (PCIe);
2. inter-node ring **allreduce** of each shard across nodes — GPU ``i``
   of every node forms a ring with its peers (Infiniband, message n/L);
3. intra-node ring **allgather** — shards recombine inside each node
   (PCIe).

Total inter-node bytes per GPU drop from ``2 n (G-1)/G`` to
``2 (n/L) (M-1)/M`` for ``M`` nodes — an ``~L x`` reduction on the slow
tier.  This is the structure NCCL/Horovod hierarchical allreduce uses;
the paper's flat CUDA-aware-MPI rings are the baseline it is compared
against in ``benchmarks/bench_hierarchical.py``.

The three phases are expressed over a 2-axis
:class:`~repro.cluster.mesh.DeviceMesh` ``("node", "local")``: phases 1
and 3 run per ``local``-axis subgroup (the GPUs of one node) and phase 2
per ``node``-axis subgroup (GPU *i* of every node) — the same grouping
the bespoke index arithmetic used to spell out by hand.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from .collectives import (
    allgather_arrays,
    allreduce_arrays,
    reduce_scatter_arrays,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from .communicator import Communicator
from .interconnect import Interconnect
from .mesh import DeviceMesh

__all__ = ["hierarchical_allreduce_time", "hierarchical_allreduce"]


@lru_cache(maxsize=4096)
def hierarchical_allreduce_time(
    world: int, nbytes: int, fabric: Interconnect
) -> float:
    """Alpha-beta time of the three-phase hierarchical allreduce.

    Falls back to a flat intra-node ring when the job fits on one node.
    For simplicity the model assumes full nodes (world divisible by the
    node width); partially-filled nodes are rounded to the slower case.
    Memoized: pure in (world, nbytes, fabric), and the trainer calls it
    with an identical key for every bucket of every step.
    """
    if world <= 0:
        raise ValueError("world must be positive")
    local = min(world, fabric.gpus_per_node)
    nodes = fabric.num_nodes(world)
    if nodes == 1:
        return ring_allreduce_time(world, nbytes, fabric.intra_node)
    shard = nbytes / local
    return (
        ring_reduce_scatter_time(local, nbytes, fabric.intra_node)
        + ring_allreduce_time(nodes, int(shard), fabric.inter_node)
        + ring_allgather_time(local, int(shard), fabric.intra_node)
    )


def hierarchical_allreduce(
    comm: Communicator, arrays: Sequence[np.ndarray], tag: str = ""
) -> list[np.ndarray]:
    """Sum-allreduce with hierarchical semantics and cost accounting.

    Functionally identical to :meth:`Communicator.allreduce` (every rank
    receives the global sum); the ledger records the cheaper two-level
    time and the reduced per-rank wire volume.  Requires the leading
    dimension to be divisible by the node-local group size when the job
    spans nodes (the shard constraint of phase 1).
    """
    if len(arrays) != comm.world_size:
        raise ValueError(
            f"got {len(arrays)} per-rank arrays for a "
            f"{comm.world_size}-rank communicator"
        )
    fabric = comm.fabric
    world = comm.world_size
    local = min(world, fabric.gpus_per_node)
    nodes = fabric.num_nodes(world)
    nbytes = int(arrays[0].nbytes)

    if nodes == 1:
        return comm.allreduce(arrays, tag=tag)

    if world % local != 0:
        raise ValueError(
            f"hierarchical allreduce needs full nodes: {world} ranks with "
            f"{local} per node"
        )
    flat = [np.atleast_1d(a) for a in arrays]
    if flat[0].shape[0] % local != 0:
        raise ValueError(
            f"leading dimension {flat[0].shape[0]} not divisible by the "
            f"node-local group size {local}"
        )

    # Rank n*local + l sits at mesh coordinate (node=n, local=l) — the
    # mesh's row-major layout matches the fabric's physical placement.
    mesh = DeviceMesh(("node", "local"), (nodes, local))
    buffers: list[np.ndarray] = list(flat)

    # Phase 1: reduce-scatter inside each node.
    for g in mesh.groups("local"):
        shards = reduce_scatter_arrays([buffers[r] for r in g.ranks])
        for r, shard in zip(g.ranks, shards):
            buffers[r] = shard

    # Phase 2: allreduce each shard index across nodes.
    for g in mesh.groups("node"):
        reduced = allreduce_arrays([buffers[r] for r in g.ranks])
        for r, arr in zip(g.ranks, reduced):
            buffers[r] = arr

    # Phase 3: allgather inside each node.
    results: list[np.ndarray] = [None] * world  # type: ignore[list-item]
    for g in mesh.groups("local"):
        gathered = allgather_arrays([buffers[r] for r in g.ranks])
        for r, out in zip(g.ranks, gathered):
            results[r] = out.reshape(arrays[r].shape)

    shard_bytes = nbytes // local
    wire = (
        int(np.ceil((local - 1) / local * nbytes))       # phase 1
        + int(np.ceil(2 * (nodes - 1) / nodes * shard_bytes))  # phase 2
        + (local - 1) * shard_bytes                       # phase 3
    )
    comm.ledger.record(
        op="hierarchical_allreduce",
        world=world,
        wire_bytes_per_rank=wire,
        time_s=hierarchical_allreduce_time(world, nbytes, fabric),
        tag=tag,
    )
    return results
