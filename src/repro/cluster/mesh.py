"""Device mesh with named axes + per-axis subgroup collectives.

Megatron-LM's follow-up (PAPERS.md, 2104.04473) composes tensor,
pipeline, and data parallelism by arranging the G GPUs in a logical
mesh: a rank is a coordinate tuple, and every parallelism dimension
talks only to the ranks that share its other coordinates.  This module
gives the simulated cluster the same substrate:

* :class:`DeviceMesh` — a named-axis view over the flat rank list.
  The layout is row-major with the **last axis fastest-varying**, so
  the innermost axis occupies contiguous ranks — placing the
  bandwidth-hungry ``tensor`` (or ``local``) axis on intra-node links
  exactly as Megatron's topology mapping does.  Per-axis subgroups are
  ordinary :class:`~repro.cluster.process_group.ProcessGroup` objects.
* :class:`MeshCommunicator` — per-axis collectives over a flat
  :class:`~repro.cluster.communicator.Communicator`.  Numerics run per
  subgroup (disjoint subgroups reduce independently) while the single
  issue funnel of the parent communicator keeps scratch, ledger,
  timeline, telemetry, chaos injection, and lockstep verification all
  working unchanged.  Each axis can additionally carry its own
  per-subgroup :class:`~repro.cluster.lockstep.LockstepVerifier` ring.

Cost model: disjoint subgroups of one axis run concurrently on
disjoint links (the Megatron placement assumption), so one mesh
collective is a single timeline event whose duration is the ring time
of the *largest* subgroup message over the axis link — intra-node when
every subgroup of the axis fits in a node, inter-node otherwise.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache
from itertools import product

import numpy as np

from . import collectives as coll
from .communicator import Communicator, WorkHandle
from .interconnect import Interconnect, LinkSpec
from .lockstep import LockstepVerifier
from .process_group import ProcessGroup

__all__ = [
    "DeviceMesh",
    "HYBRID_AXES",
    "MeshCommunicator",
    "hybrid_mesh",
    "parse_mesh_spec",
]

#: The conventional axis order for hybrid training meshes.
HYBRID_AXES = ("pipe", "tensor", "data")


def hybrid_mesh(spec: str, world_size: int) -> "DeviceMesh":
    """Parse a training-mesh spec into a canonical 3-axis hybrid mesh.

    Like :func:`parse_mesh_spec` but restricted to the
    :data:`HYBRID_AXES` names — unknown axes are rejected with the valid
    set spelled out, omitted axes default to size 1, and the result
    always carries all three axes in ``(pipe, tensor, data)`` order so
    downstream code can index them positionally.
    """
    parsed = parse_mesh_spec(spec, world_size)
    unknown = [n for n in parsed.axis_names if n not in HYBRID_AXES]
    if unknown:
        raise ValueError(
            f"unknown training-mesh axis(es) {unknown}: a training mesh "
            f"uses only {', '.join(HYBRID_AXES)} "
            "(e.g. '--mesh pipe=2,tensor=2,data=G/4')"
        )
    by_name = dict(zip(parsed.axis_names, parsed.axis_sizes))
    sizes = tuple(by_name.get(n, 1) for n in HYBRID_AXES)
    total = sizes[0] * sizes[1] * sizes[2]
    if total != world_size:
        raise ValueError(
            f"mesh {spec!r} covers {total} rank(s) but the world has "
            f"{world_size}; give the missing factor to one axis "
            "(e.g. 'data=' to infer it)"
        )
    return DeviceMesh(HYBRID_AXES, sizes)


def parse_mesh_spec(spec: str, world_size: int) -> "DeviceMesh":
    """Parse ``"pipe=2,tensor=4,data=G/8"`` into a :class:`DeviceMesh`.

    Axis sizes are positive integers, ``G`` (the world size), or
    ``G/<int>`` (must divide evenly).  One axis may omit its value
    entirely (``data=``) to be inferred from the remaining factor.  The
    axis product must equal ``world_size``.
    """
    if not spec.strip():
        raise ValueError("empty mesh spec")
    names: list[str] = []
    sizes: list[int | None] = []
    for part in spec.split(","):
        part = part.strip()
        if "=" not in part:
            raise ValueError(
                f"bad mesh axis {part!r}: expected '<name>=<size>' "
                "(e.g. 'tensor=4', 'data=G/8')"
            )
        name, _, value = part.partition("=")
        name = name.strip()
        value = value.strip()
        if not name:
            raise ValueError(f"bad mesh axis {part!r}: empty axis name")
        if name in names:
            raise ValueError(f"duplicate mesh axis {name!r}")
        names.append(name)
        if not value:
            sizes.append(None)
        elif value == "G":
            sizes.append(world_size)
        elif value.startswith("G/"):
            divisor = value[2:]
            if not divisor.isdigit() or int(divisor) <= 0:
                raise ValueError(
                    f"bad mesh axis {part!r}: expected 'G/<positive int>'"
                )
            div = int(divisor)
            if world_size % div != 0:
                raise ValueError(
                    f"mesh axis {name!r}: G/{div} does not divide "
                    f"world size {world_size}"
                )
            sizes.append(world_size // div)
        elif value.lstrip("-").isdigit():
            size = int(value)
            if size <= 0:
                raise ValueError(
                    f"mesh axis {name!r} must be positive, got {size}"
                )
            sizes.append(size)
        else:
            raise ValueError(
                f"bad mesh axis {part!r}: size must be an integer, "
                "'G', or 'G/<int>'"
            )
    inferred = [i for i, s in enumerate(sizes) if s is None]
    if len(inferred) > 1:
        raise ValueError("at most one mesh axis may omit its size")
    known = 1
    for s in sizes:
        if s is not None:
            known *= s
    if inferred:
        if world_size % known != 0:
            raise ValueError(
                f"cannot infer axis {names[inferred[0]]!r}: known axes "
                f"product {known} does not divide world size {world_size}"
            )
        sizes[inferred[0]] = world_size // known
    total = 1
    for s in sizes:
        total *= s  # type: ignore[operator]
    if total != world_size:
        raise ValueError(
            f"mesh {spec!r} has {total} rank(s) but the world has "
            f"{world_size}; axis sizes must multiply to the world size"
        )
    return DeviceMesh(tuple(names), tuple(sizes))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DeviceMesh:
    """A named-axis, row-major view over ``prod(axis_sizes)`` flat ranks.

    The last axis varies fastest: rank ``r`` has coordinate
    ``coords(r)`` with ``coords(r)[-1] == r % axis_sizes[-1]``.  The
    2-axis hierarchical layout ``("node", "local")`` therefore maps
    rank ``n*L + l`` to node ``n``, matching the fabric's physical
    node assignment, and a ``("pipe", "tensor", "data")`` hybrid mesh
    keeps each tensor×data block of one pipeline stage contiguous.
    """

    axis_names: tuple[str, ...]
    axis_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.axis_names:
            raise ValueError("a mesh needs at least one axis")
        if len(self.axis_names) != len(self.axis_sizes):
            raise ValueError(
                f"{len(self.axis_names)} axis names vs "
                f"{len(self.axis_sizes)} sizes"
            )
        if len(set(self.axis_names)) != len(self.axis_names):
            raise ValueError(f"duplicate axis names: {self.axis_names}")
        for name, size in zip(self.axis_names, self.axis_sizes):
            if size <= 0:
                raise ValueError(f"axis {name!r} must be positive, got {size}")

    @classmethod
    def from_spec(cls, spec: str, world_size: int) -> "DeviceMesh":
        """Alias for :func:`parse_mesh_spec` (spec string → mesh)."""
        return parse_mesh_spec(spec, world_size)

    # -- shape ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of ranks in the mesh."""
        total = 1
        for s in self.axis_sizes:
            total *= s
        return total

    @property
    def ndim(self) -> int:
        """Number of mesh axes."""
        return len(self.axis_names)

    def axis_index(self, axis: str) -> int:
        """Position of ``axis`` in the axis tuple; raises if unknown."""
        try:
            return self.axis_names.index(axis)
        except ValueError:
            raise ValueError(
                f"unknown mesh axis {axis!r}; have {self.axis_names}"
            ) from None

    def axis_size(self, axis: str) -> int:
        """Number of ranks along ``axis``."""
        return self.axis_sizes[self.axis_index(axis)]

    def describe(self) -> str:
        """The canonical spec string, e.g. ``"pipe=2,tensor=4,data=8"``."""
        return ",".join(
            f"{n}={s}" for n, s in zip(self.axis_names, self.axis_sizes)
        )

    # -- coordinates ---------------------------------------------------

    def _strides(self) -> tuple[int, ...]:
        strides = [1] * self.ndim
        for i in range(self.ndim - 2, -1, -1):
            strides[i] = strides[i + 1] * self.axis_sizes[i + 1]
        return tuple(strides)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Coordinate tuple of a flat rank (row-major, last axis fastest)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for mesh {self}")
        out = []
        for stride, size in zip(self._strides(), self.axis_sizes):
            out.append((rank // stride) % size)
        return tuple(out)

    def rank_at(self, coords: Sequence[int]) -> int:
        """Flat rank of a coordinate tuple."""
        if len(coords) != self.ndim:
            raise ValueError(
                f"{len(coords)} coordinates for a {self.ndim}-axis mesh"
            )
        rank = 0
        for c, stride, size in zip(coords, self._strides(), self.axis_sizes):
            if not 0 <= c < size:
                raise ValueError(f"coordinate {c} out of range (size {size})")
            rank += c * stride
        return rank

    # -- subgroups -----------------------------------------------------

    def groups(self, axis: str) -> tuple[ProcessGroup, ...]:
        """All subgroups of ``axis``: one per combination of other coords.

        Each group lists the ranks whose coordinates agree on every axis
        except ``axis``, ordered by their ``axis`` coordinate.  Together
        the groups partition ``range(size)`` exactly (property-tested).

        The mesh is frozen, so the decomposition is memoized per
        ``(mesh, axis)`` — :class:`MeshCommunicator` asks for the same
        grouping on every collective of every step.
        """
        return _mesh_axis_groups(self, axis)

    def _build_groups(self, axis: str) -> tuple[ProcessGroup, ...]:
        i = self.axis_index(axis)
        other = [
            range(s) for j, s in enumerate(self.axis_sizes) if j != i
        ]
        out = []
        for fixed in product(*other):
            ranks = []
            for v in range(self.axis_sizes[i]):
                coords = list(fixed[:i]) + [v] + list(fixed[i:])
                ranks.append(self.rank_at(coords))
            out.append(ProcessGroup(parent_world=self.size, ranks=tuple(ranks)))
        return tuple(out)

    def group_of(self, axis: str, rank: int) -> ProcessGroup:
        """The ``axis`` subgroup containing ``rank``."""
        for g in self.groups(axis):
            if g.contains(rank):
                return g
        raise ValueError(f"rank {rank} not on mesh {self}")

    def axis_link(self, axis: str, fabric: Interconnect) -> LinkSpec:
        """The link an ``axis`` ring runs on, from the fabric topology.

        Intra-node when every subgroup of the axis stays within one
        node of ``fabric``; inter-node as soon as any subgroup spans a
        node boundary — the conservative choice a topology-aware
        placement would also make.
        """
        for g in self.groups(axis):
            nodes = {fabric.node_of(r) for r in g.ranks}
            if len(nodes) > 1:
                return fabric.inter_node
        return fabric.intra_node

    def __str__(self) -> str:
        return f"DeviceMesh({self.describe()})"


@lru_cache(maxsize=1024)
def _mesh_axis_groups(mesh: DeviceMesh, axis: str) -> tuple[ProcessGroup, ...]:
    """Memoized :meth:`DeviceMesh.groups` (meshes are immutable)."""
    return mesh._build_groups(axis)


class MeshCommunicator:
    """Per-axis subgroup collectives over a flat communicator.

    Each mesh collective runs its numerics independently per subgroup
    of the named axis and issues **one** event through the parent
    communicator's ``_issue`` funnel — so scratch charging, ledger
    records, timeline scheduling, telemetry counters, and the global
    lockstep stream compose without modification.  Fault injection
    composes too: before issuing, the parent's chaos/failure hooks
    (``_consult`` / ``_maybe_fail``) are consulted at the same
    rollback-safe pre-issue point the flat ``i*`` methods use.

    Per-rank payload envelopes legitimately differ *across* subgroups
    (each model-parallel shard has its own shape), so mesh ops ship
    ``payload=None`` to the global verifier — the global stream stays
    rank-uniform — and uniformity *within* each subgroup is enforced by
    the per-axis verifier rings installed by
    :meth:`attach_axis_verifiers` (except for the allgatherv-style
    ``mesh_allgather``, whose ragged member counts are legal).
    """

    def __init__(self, comm: Communicator, mesh: DeviceMesh):
        if comm.world_size != mesh.size:
            raise ValueError(
                f"mesh has {mesh.size} rank(s) but communicator world "
                f"size is {comm.world_size}"
            )
        self.comm = comm
        self.mesh = mesh
        #: axis -> per-subgroup verifiers (index parallels mesh.groups).
        self.axis_verifiers: dict[str, tuple[LockstepVerifier, ...]] = {}

    # -- composition hooks ---------------------------------------------

    @property
    def world_size(self) -> int:
        """Total ranks (the parent communicator's world size)."""
        return self.comm.world_size

    def axis_size(self, axis: str) -> int:
        """Ranks along ``axis`` (delegates to the mesh)."""
        return self.mesh.axis_size(axis)

    def attach_axis_verifiers(
        self, hash_mode: str = "off", sample_bytes: int = 1024
    ) -> dict[str, tuple[LockstepVerifier, ...]]:
        """Install one lockstep verifier per (axis, subgroup).

        Each verifier tracks its subgroup's local ranks; every mesh
        collective on the axis appends one fingerprint per member, so
        :meth:`check_axes` catches a shard that issued a different (or
        no) per-axis collective — the mesh analogue of the global
        lockstep check.
        """
        self.axis_verifiers = {
            axis: tuple(
                LockstepVerifier(
                    g.size, hash_mode=hash_mode, sample_bytes=sample_bytes
                )
                for g in self.mesh.groups(axis)
            )
            for axis in self.mesh.axis_names
        }
        return self.axis_verifiers

    def check_axes(self, point: str = "check") -> dict[str, int]:
        """Cross-check every per-axis verifier ring; raise on divergence.

        Returns ``{axis: verified fingerprint count}`` (the minimum
        over the axis's subgroups), mirroring
        :meth:`~repro.cluster.lockstep.LockstepVerifier.check`.
        """
        out: dict[str, int] = {}
        for axis, verifiers in self.axis_verifiers.items():
            verified = []
            for i, v in enumerate(verifiers):
                report = v.check(f"{point}:{axis}[{i}]")
                verified.append(report.verified)
            out[axis] = min(verified) if verified else 0
        return out

    def _observe_axis(
        self, axis: str, op: str, tag: str, arrays: Sequence[np.ndarray]
    ) -> None:
        verifiers = self.axis_verifiers.get(axis)
        if verifiers is None:
            return
        # mesh_allgather is an allgatherv: ragged per-member counts are
        # legal on a real cluster (the counts travel first), so only its
        # op/tag/dtype sequence is fingerprinted.  The reduce-family ops
        # keep their full envelope — a shape mismatch there deadlocks.
        uniform = op != "mesh_allgather"
        for v, g in zip(verifiers, self.mesh.groups(axis)):
            for local, rank in enumerate(g.ranks):
                a = np.asarray(arrays[rank])
                shape = a.shape if uniform else ()
                v.record(local, op, tag, shape, str(a.dtype))

    def _consult_faults(self, op: str) -> None:
        # Duck-typed pre-issue fault hooks: ChaosCommunicator exposes
        # _consult, FailingCommunicator exposes _maybe_fail.  Calling
        # them here keeps fault injection composing with mesh ops even
        # though the mesh path bypasses the flat i* overrides.
        consult = getattr(self.comm, "_consult", None)
        if consult is not None:
            consult(op)
        maybe_fail = getattr(self.comm, "_maybe_fail", None)
        if maybe_fail is not None:
            maybe_fail(op)

    def _count_axis(self, axis: str, op: str, wire_bytes: int) -> None:
        metrics = self.comm.metrics
        if metrics is None:
            return
        metrics.counter(
            "repro_mesh_collectives_total",
            "Per-axis mesh collectives issued, by axis and op",
            labelnames=("axis", "op"),
        ).inc(axis=axis, op=op)
        metrics.counter(
            "repro_mesh_wire_bytes_total",
            "Per-rank mesh wire bytes issued, by axis and op",
            labelnames=("axis", "op"),
        ).inc(wire_bytes, axis=axis, op=op)

    def _check_ranks(self, arrays: Sequence[np.ndarray], op: str) -> None:
        if len(arrays) != self.comm.world_size:
            raise ValueError(
                f"{op}: got {len(arrays)} per-rank arrays for a "
                f"{self.comm.world_size}-rank mesh"
            )

    # -- per-axis collectives ------------------------------------------

    def iallreduce(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> WorkHandle:
        """Non-blocking sum-allreduce within each ``axis`` subgroup.

        ``arrays`` is the full per-rank list (index = flat rank); each
        subgroup reduces independently in subgroup-member order, so the
        result at rank ``r`` sums exactly over ``r``'s axis peers.
        """
        self._check_ranks(arrays, f"mesh_allreduce[{axis}]")
        op = "mesh_allreduce"
        self._consult_faults(op)
        results: list[np.ndarray] = [None] * self.comm.world_size  # type: ignore[list-item]
        for g in self.mesh.groups(axis):
            reduced = coll.allreduce_arrays([arrays[r] for r in g.ranks])
            for r, out in zip(g.ranks, reduced):
                results[r] = out
        n = self.mesh.axis_size(axis)
        max_bytes = max(int(np.asarray(a).nbytes) for a in arrays)
        link = self.mesh.axis_link(axis, self.comm.fabric)
        wire = coll.allreduce_wire_bytes(n, max_bytes)
        self._observe_axis(axis, op, tag, arrays)
        self._count_axis(axis, op, wire)
        return self.comm._issue(
            op=op,
            results=results,
            scratch_bytes=max_bytes,
            scratch_tag=f"{op}-recv:{tag}",
            wire_bytes_per_rank=wire,
            time_s=coll.ring_allreduce_time(n, max_bytes, link),
            tag=f"{axis}:{tag}",
            payload=None,
        )

    def iallgather(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> WorkHandle:
        """Non-blocking allgather (allgatherv) within each subgroup.

        Rank ``r``'s result is the concatenation of its axis peers'
        contributions in subgroup-member order.
        """
        self._check_ranks(arrays, f"mesh_allgather[{axis}]")
        op = "mesh_allgather"
        self._consult_faults(op)
        results: list[np.ndarray] = [None] * self.comm.world_size  # type: ignore[list-item]
        max_contrib = 0
        max_total = 0
        for g in self.mesh.groups(axis):
            sub = [arrays[r] for r in g.ranks]
            gathered = coll.allgather_arrays(sub)
            for r, out in zip(g.ranks, gathered):
                results[r] = out
            contribs = [int(np.atleast_1d(a).nbytes) for a in sub]
            max_contrib = max(max_contrib, max(contribs))
            max_total = max(max_total, sum(contribs))
        n = self.mesh.axis_size(axis)
        link = self.mesh.axis_link(axis, self.comm.fabric)
        wire = coll.allgather_wire_bytes(n, max_contrib)
        self._observe_axis(axis, op, tag, arrays)
        self._count_axis(axis, op, wire)
        return self.comm._issue(
            op=op,
            results=results,
            scratch_bytes=max_total,
            scratch_tag=f"{op}-recv:{tag}",
            wire_bytes_per_rank=wire,
            time_s=coll.ring_allgather_time(n, max_contrib, link),
            tag=f"{axis}:{tag}",
            payload=None,
        )

    def ibroadcast(
        self,
        axis: str,
        arrays: Sequence[np.ndarray],
        root: int = 0,
        tag: str = "",
    ) -> WorkHandle:
        """Non-blocking broadcast from each subgroup's ``root``-th member."""
        self._check_ranks(arrays, f"mesh_broadcast[{axis}]")
        op = "mesh_broadcast"
        self._consult_faults(op)
        results: list[np.ndarray] = [None] * self.comm.world_size  # type: ignore[list-item]
        max_bytes = 0
        for g in self.mesh.groups(axis):
            sub = [arrays[r] for r in g.ranks]
            out = coll.broadcast_arrays(sub, root=root)
            for r, o in zip(g.ranks, out):
                results[r] = o
            max_bytes = max(max_bytes, int(np.asarray(sub[root]).nbytes))
        n = self.mesh.axis_size(axis)
        link = self.mesh.axis_link(axis, self.comm.fabric)
        wire = coll.broadcast_wire_bytes(n, max_bytes)
        self._observe_axis(axis, op, tag, arrays)
        self._count_axis(axis, op, wire)
        return self.comm._issue(
            op=op,
            results=results,
            scratch_bytes=max_bytes,
            scratch_tag=f"{op}-recv:{tag}",
            wire_bytes_per_rank=wire,
            time_s=coll.ring_broadcast_time(n, max_bytes, link),
            tag=f"{axis}:{tag}",
            payload=None,
        )

    def ireduce_scatter(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> WorkHandle:
        """Non-blocking sum-reduce + scatter within each subgroup."""
        self._check_ranks(arrays, f"mesh_reduce_scatter[{axis}]")
        op = "mesh_reduce_scatter"
        self._consult_faults(op)
        results: list[np.ndarray] = [None] * self.comm.world_size  # type: ignore[list-item]
        max_bytes = 0
        for g in self.mesh.groups(axis):
            sub = [arrays[r] for r in g.ranks]
            out = coll.reduce_scatter_arrays(sub)
            for r, o in zip(g.ranks, out):
                results[r] = o
            max_bytes = max(max_bytes, int(np.asarray(sub[0]).nbytes))
        n = self.mesh.axis_size(axis)
        link = self.mesh.axis_link(axis, self.comm.fabric)
        wire = coll.reduce_scatter_wire_bytes(n, max_bytes)
        self._observe_axis(axis, op, tag, arrays)
        self._count_axis(axis, op, wire)
        return self.comm._issue(
            op=op,
            results=results,
            scratch_bytes=max_bytes // max(1, n),
            scratch_tag=f"{op}-recv:{tag}",
            wire_bytes_per_rank=wire,
            time_s=coll.ring_reduce_scatter_time(n, max_bytes, link),
            tag=f"{axis}:{tag}",
            payload=None,
        )

    # -- blocking wrappers ---------------------------------------------

    def allreduce(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Blocking per-axis allreduce (issue + wait)."""
        return self.iallreduce(axis, arrays, tag=tag).wait()

    def allgather(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Blocking per-axis allgather (issue + wait)."""
        return self.iallgather(axis, arrays, tag=tag).wait()

    def broadcast(
        self,
        axis: str,
        arrays: Sequence[np.ndarray],
        root: int = 0,
        tag: str = "",
    ) -> list[np.ndarray]:
        """Blocking per-axis broadcast (issue + wait)."""
        return self.ibroadcast(axis, arrays, root=root, tag=tag).wait()

    def reduce_scatter(
        self, axis: str, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        """Blocking per-axis reduce-scatter (issue + wait)."""
        return self.ireduce_scatter(axis, arrays, tag=tag).wait()

    def transfer(self, axis: str, nbytes: int, tag: str = "") -> None:
        """Charge one point-to-point transfer along ``axis`` (no payload).

        Models the pipeline-parallel activation/gradient send between
        adjacent stages: every subgroup's pair transfers concurrently,
        so one timeline event of the axis link's transfer time is
        scheduled and ``nbytes`` per rank is recorded to the ledger
        under ``op="mesh_transfer"``.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size must be >= 0, got {nbytes}")
        op = "mesh_transfer"
        self._consult_faults(op)
        link = self.mesh.axis_link(axis, self.comm.fabric)
        time_s = link.transfer_time(nbytes)
        ticket = self.comm.timeline.schedule_collective(
            time_s, name=f"{op}:{axis}:{tag}"
        )
        self.comm.timeline.complete(ticket)
        self.comm.ledger.record(
            op=op,
            world=self.comm.world_size,
            wire_bytes_per_rank=int(nbytes),
            time_s=time_s,
            tag=f"{axis}:{tag}",
            start_s=ticket.start,
            end_s=ticket.end,
        )
        self._count_axis(axis, op, int(nbytes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeshCommunicator({self.mesh.describe()})"
