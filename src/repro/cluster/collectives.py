"""Collective communication algorithms and their cost models.

Two halves live here:

1. **Functional semantics** — pure functions computing what each rank
   holds after a collective, given the per-rank input arrays.  These are
   *numerically real*: the training stack's gradients flow through them,
   so accuracy results are genuine, not simulated.

2. **Cost models** — the standard alpha-beta (latency-bandwidth) costs
   of the bandwidth-optimal algorithms used by efficient MPI/NCCL
   implementations.  The paper cites Baidu's ring allreduce [31]; we
   model ring variants for every collective and recursive doubling as a
   comparison point (used by an ablation bench).

Cost-model conventions: ``G`` ranks, message of ``n`` bytes *per rank*
(for allgather/reduce-scatter, ``n`` is each rank's contribution), link
``beta`` = unidirectional bandwidth (bytes/s), ``alpha`` = per-hop
latency (s).

The cost and wire-byte models are pure functions of hashable arguments
(:class:`~repro.cluster.interconnect.LinkSpec` is frozen), and a training
step at large ``G`` evaluates them with the *same* (world, nbytes, link)
key on every collective — so they are all memoized with ``lru_cache``.
Invalid inputs still raise on every call (``lru_cache`` does not cache
exceptions).

=================  =====================================================
Collective         Ring cost (time)
=================  =====================================================
allreduce          ``2 (G-1)/G * n / beta  +  2 (G-1) alpha``
reduce-scatter     ``(G-1)/G * n / beta  +  (G-1) alpha``
allgather          ``(G-1) * n / beta  +  (G-1) alpha``
broadcast          ``n / beta * (G-1)/G  +  (G-1) alpha``  (scatter+allgather)
=================  =====================================================
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from .interconnect import LinkSpec

__all__ = [
    "allreduce_arrays",
    "allgather_arrays",
    "broadcast_arrays",
    "reduce_scatter_arrays",
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "ring_broadcast_time",
    "recursive_doubling_allreduce_time",
    "allreduce_wire_bytes",
    "allgather_wire_bytes",
    "reduce_scatter_wire_bytes",
    "broadcast_wire_bytes",
]


# ---------------------------------------------------------------------------
# Functional semantics
# ---------------------------------------------------------------------------

def _check_uniform(arrays: Sequence[np.ndarray], op: str) -> None:
    if len(arrays) == 0:
        raise ValueError(f"{op}: need at least one rank")
    shape, dtype = arrays[0].shape, arrays[0].dtype
    for rank, arr in enumerate(arrays):
        if arr.shape != shape:
            raise ValueError(
                f"{op}: rank {rank} has shape {arr.shape}, rank 0 has {shape}"
            )
        if arr.dtype != dtype:
            raise ValueError(
                f"{op}: rank {rank} has dtype {arr.dtype}, rank 0 has {dtype}"
            )


def allreduce_arrays(
    arrays: Sequence[np.ndarray],
    shared_result: bool = False,
    stacked: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Sum-allreduce: every rank receives the elementwise sum of all inputs.

    The reduction is performed in rank order, which is deterministic —
    matching NCCL's behaviour of a fixed reduction order along the ring.
    Each returned array is an independent copy (ranks own their buffers),
    unless ``shared_result`` is set: then every rank receives the *same*
    array object — a host-side optimization for callers that treat the
    (identical-on-every-rank) result as read-only, skipping ``world``
    buffer copies.

    ``stacked`` lets a caller that already holds the per-rank inputs as
    rows of one contiguous ``(world, ...)`` block (the batched executor's
    gradient blocks, the unique exchange's scatter matrix) skip the
    ``np.stack`` of ``world`` views — the dominant Python-side cost of a
    large-G allreduce.  The caller asserts ``arrays[r] is stacked[r]``
    row-for-row; reduction bits are identical either way because
    ``np.stack(arrays)`` would reproduce exactly this block.
    """
    _check_uniform(arrays, "allreduce")
    # Accumulate in the input dtype to mirror on-wire reduction precision.
    # np.add.reduce over a stacked leading axis accumulates element-wise
    # in index order — bit-identical to the sequential rank-order fold —
    # except for size-1 arrays, where the reduction axis is contiguous
    # and numpy switches to pairwise summation; keep the explicit fold
    # for that case.
    if len(arrays) > 2 and arrays[0].size > 1:
        if stacked is None:
            stacked = np.stack(arrays)
        elif stacked.shape != (len(arrays),) + arrays[0].shape:
            raise ValueError(
                f"allreduce: stacked block shape {stacked.shape} does not "
                f"match {len(arrays)} ranks of {arrays[0].shape}"
            )
        total = np.add.reduce(stacked, axis=0)
    else:
        total = arrays[0].copy()
        for arr in arrays[1:]:
            total += arr
    if shared_result:
        return [total] * len(arrays)
    return _fan_out(total, len(arrays))


def _fan_out(result: np.ndarray, world: int) -> list[np.ndarray]:
    """Per-rank buffers of one shared result via a single allocation.

    Rows of one ``(world, ...)`` block are handed out as disjoint views:
    each rank can mutate its own buffer freely, and the simulator pays
    one allocation + one broadcast copy instead of ``world`` of each.
    """
    stacked = np.empty((world,) + result.shape, dtype=result.dtype)
    stacked[:] = result
    return list(stacked)


def allgather_arrays(
    arrays: Sequence[np.ndarray], shared_result: bool = False
) -> list[np.ndarray]:
    """Allgather: every rank receives the rank-order concatenation.

    Per-rank contributions must agree in dtype and trailing dimensions but
    may differ in leading length (an allgatherv), which the uniqueness
    algorithm relies on when ranks hold different numbers of local types.
    ``shared_result`` returns one shared (read-only by convention) array
    object for all ranks instead of per-rank copies — see
    :func:`allreduce_arrays`.
    """
    if len(arrays) == 0:
        raise ValueError("allgather: need at least one rank")
    dtype = arrays[0].dtype
    trailing = arrays[0].shape[1:]
    for rank, arr in enumerate(arrays):
        if arr.dtype != dtype:
            raise ValueError(
                f"allgather: rank {rank} dtype {arr.dtype} != rank 0 {dtype}"
            )
        if arr.shape[1:] != trailing:
            raise ValueError(
                f"allgather: rank {rank} trailing dims {arr.shape[1:]} != "
                f"rank 0 {trailing}"
            )
    gathered = np.concatenate([np.atleast_1d(a) for a in arrays], axis=0)
    if shared_result:
        return [gathered] * len(arrays)
    return _fan_out(gathered, len(arrays))


def broadcast_arrays(
    arrays: Sequence[np.ndarray], root: int = 0
) -> list[np.ndarray]:
    """Broadcast the root rank's array to all ranks."""
    if not 0 <= root < len(arrays):
        raise ValueError(f"broadcast: root {root} out of range 0..{len(arrays) - 1}")
    src = arrays[root]
    return _fan_out(src, len(arrays))


def reduce_scatter_arrays(arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum-reduce then scatter equal shards back, one per rank.

    The leading dimension must divide evenly by the number of ranks.
    """
    _check_uniform(arrays, "reduce_scatter")
    world = len(arrays)
    n = arrays[0].shape[0]
    if n % world != 0:
        raise ValueError(
            f"reduce_scatter: leading dim {n} not divisible by world size {world}"
        )
    total = arrays[0].copy()
    for arr in arrays[1:]:
        total += arr
    shard = n // world
    return [total[r * shard : (r + 1) * shard].copy() for r in range(world)]


# ---------------------------------------------------------------------------
# Wire-byte accounting (per rank, one direction)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=4096)
def allreduce_wire_bytes(world: int, nbytes: int) -> int:
    """Bytes each rank sends during a ring allreduce of an n-byte buffer."""
    _check_world(world)
    if world == 1:
        return 0
    return math.ceil(2 * (world - 1) / world * nbytes)


@lru_cache(maxsize=4096)
def allgather_wire_bytes(world: int, nbytes_per_rank: int) -> int:
    """Bytes each rank sends during a ring allgather (its shard, G-1 times)."""
    _check_world(world)
    return (world - 1) * nbytes_per_rank


@lru_cache(maxsize=4096)
def reduce_scatter_wire_bytes(world: int, nbytes: int) -> int:
    """Bytes each rank sends during a ring reduce-scatter of an n-byte buffer."""
    _check_world(world)
    if world == 1:
        return 0
    return math.ceil((world - 1) / world * nbytes)


@lru_cache(maxsize=4096)
def broadcast_wire_bytes(world: int, nbytes: int) -> int:
    """Bytes the root effectively injects for a scatter+allgather broadcast."""
    _check_world(world)
    if world == 1:
        return 0
    return nbytes


def _check_world(world: int) -> None:
    if world <= 0:
        raise ValueError(f"world size must be positive, got {world}")


# ---------------------------------------------------------------------------
# Time models
# ---------------------------------------------------------------------------

@lru_cache(maxsize=4096)
def ring_allreduce_time(world: int, nbytes: int, link: LinkSpec) -> float:
    """Ring allreduce: reduce-scatter pass + allgather pass.

    Bandwidth term ``2 (G-1)/G * n / beta`` is the classic
    bandwidth-optimal bound; latency term is ``2 (G-1) alpha`` hops.
    """
    _check_world(world)
    if world == 1:
        return 0.0
    bw_term = 2 * (world - 1) / world * nbytes / link.bandwidth
    lat_term = 2 * (world - 1) * link.latency
    return bw_term + lat_term


@lru_cache(maxsize=4096)
def ring_allgather_time(world: int, nbytes_per_rank: int, link: LinkSpec) -> float:
    """Ring allgather of ``nbytes_per_rank`` from each rank: G-1 shard hops."""
    _check_world(world)
    if world == 1:
        return 0.0
    bw_term = (world - 1) * nbytes_per_rank / link.bandwidth
    lat_term = (world - 1) * link.latency
    return bw_term + lat_term


@lru_cache(maxsize=4096)
def ring_reduce_scatter_time(world: int, nbytes: int, link: LinkSpec) -> float:
    """Ring reduce-scatter of an n-byte buffer: half of a ring allreduce."""
    _check_world(world)
    if world == 1:
        return 0.0
    bw_term = (world - 1) / world * nbytes / link.bandwidth
    lat_term = (world - 1) * link.latency
    return bw_term + lat_term


@lru_cache(maxsize=4096)
def ring_broadcast_time(world: int, nbytes: int, link: LinkSpec) -> float:
    """Scatter + ring-allgather broadcast (van de Geijn), pipelined."""
    _check_world(world)
    if world == 1:
        return 0.0
    bw_term = 2 * (world - 1) / world * nbytes / link.bandwidth
    lat_term = (world - 1) * link.latency
    return bw_term + lat_term


@lru_cache(maxsize=4096)
def recursive_doubling_allreduce_time(
    world: int, nbytes: int, link: LinkSpec
) -> float:
    """Recursive-doubling allreduce: ``log2 G`` rounds, full buffer each round.

    Latency-optimal but not bandwidth-optimal; provided as the comparison
    point for the collectives ablation bench (small messages favour it,
    the paper's large embedding gradients favour the ring).
    """
    _check_world(world)
    if world == 1:
        return 0.0
    rounds = math.ceil(math.log2(world))
    return rounds * (link.latency + nbytes / link.bandwidth)
