"""Cost ledger and event tracing for simulated communication.

Every collective issued through :class:`repro.cluster.communicator.Communicator`
records a :class:`CommEvent` here.  The ledger aggregates the two
quantities the paper's analysis is built on:

* **wire bytes per rank** — the communication volume each GPU injects,
  the quantity the uniqueness/seeding/compression techniques shrink;
* **simulated time** — alpha-beta model time of each collective, summed
  into the per-step and per-epoch times reported by Tables III-V.

The ledger also supports *scopes* (named intervals) so a trainer can
attribute cost to phases: ``embedding-sync``, ``dense-allreduce``, …

Performance notes
-----------------
``record`` runs once per collective per step — at G=512 with overlap it
is one of the simulator's hottest non-numpy call sites.  The ledger
therefore keeps **incremental running totals** (overall, by op, and by
scope) updated on append, so ``total_time_s``/``bytes_by_op``/
``snapshot``/``delta_since`` are O(1) instead of re-scanning the event
list, and :class:`CommEvent` is a tuple-backed ``NamedTuple``.  Chrome
traces are still materialized lazily from the stored events — nothing
trace-shaped is built while the simulation runs.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = [
    "CommEvent",
    "CostLedger",
    "LedgerResetError",
    "LedgerScopeError",
    "LedgerSnapshot",
]


class LedgerScopeError(RuntimeError):
    """Unbalanced or mismatched ledger scope push/pop.

    Raised instead of silently corrupting attribution: an unbalanced
    stack means every subsequent event would be charged to the wrong
    phase, which is exactly the kind of bookkeeping bug the analysis
    tooling exists to catch.
    """


class LedgerResetError(RuntimeError):
    """A snapshot from before a :meth:`CostLedger.reset` was diffed.

    ``delta_since`` across a reset used to return *negative* totals
    (the post-reset ledger holds fewer events than the snapshot), which
    silently corrupted per-step byte/time deltas.  Each reset bumps the
    ledger's generation; mixing snapshots across generations now raises
    instead.
    """


class CommEvent(NamedTuple):
    """One collective operation as observed by the ledger.

    ``start_s``/``end_s`` are the collective's placement on the
    per-rank :class:`~repro.cluster.timeline.Timeline` (simulated
    seconds); both are negative when the recording communicator carried
    no timeline (pure cost accounting).

    Tuple-backed (no per-instance ``__dict__``) because one of these is
    built per collective on the simulator's hot path.
    """

    op: str
    world: int
    wire_bytes_per_rank: int
    time_s: float
    tag: str = ""
    scope: str = ""
    start_s: float = -1.0
    end_s: float = -1.0
    payload_bytes_per_rank: int = -1

    @property
    def has_schedule(self) -> bool:
        """Whether this event was placed on a timeline."""
        return self.start_s >= 0.0 and self.end_s >= 0.0

    @property
    def logical_bytes_per_rank(self) -> int:
        """Pre-codec payload bytes; equals wire bytes when not recorded.

        A codec-encoded collective charges its *encoded* size as
        ``wire_bytes_per_rank`` (that is what crosses the link) and
        reports the original payload here, so the measured compression
        factor is ``logical / wire``.
        """
        if self.payload_bytes_per_rank >= 0:
            return self.payload_bytes_per_rank
        return self.wire_bytes_per_rank


@dataclass
class CostLedger:
    """Accumulates communication events and exposes aggregate views.

    Aggregates (totals, per-op and per-scope breakdowns) are maintained
    incrementally on :meth:`record`, so every aggregate query — and in
    particular the :meth:`snapshot`/:meth:`delta_since` pair the
    telemetry layer calls once per step — is O(1) in the number of
    recorded events.
    """

    events: list[CommEvent] = field(default_factory=list)
    _scope_stack: list[str] = field(default_factory=list)
    _generation: int = 0

    def __post_init__(self) -> None:
        # Seed the running totals from any pre-filled events (the merged
        # trace exporter constructs ledgers from deserialized parts).
        self._scope_str = "/".join(self._scope_stack)
        self._total_wire = 0
        self._total_time = 0.0
        self._bytes_by_op: defaultdict[str, int] = defaultdict(int)
        self._time_by_op: defaultdict[str, float] = defaultdict(float)
        self._bytes_by_scope: defaultdict[str, int] = defaultdict(int)
        self._time_by_scope: defaultdict[str, float] = defaultdict(float)
        for e in self.events:
            self._accumulate(e)

    def _accumulate(self, e: CommEvent) -> None:
        self._total_wire += e.wire_bytes_per_rank
        self._total_time += e.time_s
        self._bytes_by_op[e.op] += e.wire_bytes_per_rank
        self._time_by_op[e.op] += e.time_s
        self._bytes_by_scope[e.scope] += e.wire_bytes_per_rank
        self._time_by_scope[e.scope] += e.time_s

    def record(
        self,
        op: str,
        world: int,
        wire_bytes_per_rank: int,
        time_s: float,
        tag: str = "",
        start_s: float = -1.0,
        end_s: float = -1.0,
        payload_bytes_per_rank: int | None = None,
    ) -> CommEvent:
        # Validate before touching any state: a rejected record must
        # leave the running totals exactly as they were.
        if wire_bytes_per_rank < 0:
            raise ValueError("wire_bytes_per_rank must be non-negative")
        if time_s < 0:
            raise ValueError("time_s must be non-negative")
        if payload_bytes_per_rank is not None and payload_bytes_per_rank < 0:
            raise ValueError("payload_bytes_per_rank must be non-negative")
        scope = self._scope_str
        event = CommEvent(
            op,
            world,
            wire_bytes_per_rank,
            time_s,
            tag,
            scope,
            start_s,
            end_s,
            -1 if payload_bytes_per_rank is None else payload_bytes_per_rank,
        )
        self.events.append(event)
        self._total_wire += wire_bytes_per_rank
        self._total_time += time_s
        self._bytes_by_op[op] += wire_bytes_per_rank
        self._time_by_op[op] += time_s
        self._bytes_by_scope[scope] += wire_bytes_per_rank
        self._time_by_scope[scope] += time_s
        return event

    # -- scopes -------------------------------------------------------------

    @property
    def current_scope(self) -> str:
        return self._scope_str

    @property
    def scope_depth(self) -> int:
        return len(self._scope_stack)

    def scope(self, name: str) -> "_LedgerScope":
        """Context manager attributing enclosed events to ``name``."""
        return _LedgerScope(self, name)

    def push_scope(self, name: str) -> None:
        """Enter a named scope (prefer the :meth:`scope` context manager)."""
        if "/" in name:
            raise LedgerScopeError("scope names must not contain '/'")
        stack = self._scope_stack
        stack.append(name)
        self._scope_str = name if len(stack) == 1 else self._scope_str + "/" + name

    def pop_scope(self, expected: str | None = None) -> str:
        """Leave the innermost scope, optionally checking its name.

        Raises
        ------
        LedgerScopeError
            If no scope is open (pop-on-empty), or ``expected`` is given
            and does not match the innermost open scope.
        """
        if not self._scope_stack:
            raise LedgerScopeError(
                "pop_scope on an empty scope stack: every pop must match a "
                "prior push (did an earlier scope exit twice?)"
            )
        top = self._scope_stack[-1]
        if expected is not None and top != expected:
            raise LedgerScopeError(
                f"mismatched ledger scope nesting: tried to close "
                f"{expected!r} but the innermost open scope is {top!r} "
                f"(open stack: {self.current_scope!r})"
            )
        popped = self._scope_stack.pop()
        self._scope_str = "/".join(self._scope_stack)
        return popped

    def assert_balanced(self) -> None:
        """Raise :class:`LedgerScopeError` if any scope is still open.

        Call at the end of a run (the sanitizer does this) to catch a
        ``push_scope`` that never popped — events recorded afterwards
        would be silently mis-attributed.
        """
        if self._scope_stack:
            raise LedgerScopeError(
                f"unbalanced ledger scopes at end of run: "
                f"{self.current_scope!r} still open "
                f"({len(self._scope_stack)} unpopped push(es))"
            )

    # -- aggregates ----------------------------------------------------------

    @property
    def total_wire_bytes_per_rank(self) -> int:
        return self._total_wire

    @property
    def total_time_s(self) -> float:
        return self._total_time

    def bytes_by_op(self) -> dict[str, int]:
        return dict(self._bytes_by_op)

    def time_by_op(self) -> dict[str, float]:
        return dict(self._time_by_op)

    def bytes_by_scope(self) -> dict[str, int]:
        return dict(self._bytes_by_scope)

    def time_by_scope(self) -> dict[str, float]:
        return dict(self._time_by_scope)

    def compression_factor(self, tag_contains: str = "") -> float:
        """Measured byte reduction, ``logical / wire``, over matching events.

        Filters to events whose tag contains ``tag_contains`` (all
        events by default).  1.0 means nothing was compressed — events
        recorded without an explicit payload count as uncompressed.
        This is the *measured*, data-dependent figure, as opposed to a
        codec's nominal :func:`~repro.core.compression.wire_bytes_ratio`.
        """
        wire = logical = 0
        for e in self.events:
            if tag_contains in e.tag:
                wire += e.wire_bytes_per_rank
                logical += e.logical_bytes_per_rank
        if wire == 0:
            return 1.0
        return logical / wire

    @property
    def generation(self) -> int:
        """Number of :meth:`reset` calls so far; stamps every snapshot."""
        return self._generation

    def reset(self) -> None:
        """Drop all events (scope stack is preserved).

        Bumps the ledger generation so snapshots taken before the reset
        cannot be diffed against post-reset totals (see
        :class:`LedgerResetError`).
        """
        self.events.clear()
        self._total_wire = 0
        self._total_time = 0.0
        self._bytes_by_op.clear()
        self._time_by_op.clear()
        self._bytes_by_scope.clear()
        self._time_by_scope.clear()
        self._generation += 1

    def snapshot(self) -> "LedgerSnapshot":
        """Immutable point-in-time totals, for before/after deltas.

        O(1): reads the running totals, never the event list.
        """
        return LedgerSnapshot(
            n_events=len(self.events),
            wire_bytes_per_rank=self._total_wire,
            time_s=self._total_time,
            generation=self._generation,
        )

    def delta_since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        """Totals accumulated since ``snap`` was taken.  O(1).

        Raises
        ------
        LedgerResetError
            If the ledger was :meth:`reset` after ``snap`` was taken —
            the difference would be meaningless (typically negative).
        """
        if snap.generation != self._generation:
            raise LedgerResetError(
                f"snapshot from ledger generation {snap.generation} diffed "
                f"against generation {self._generation}: the ledger was "
                f"reset() in between, so the delta is undefined"
            )
        return LedgerSnapshot(
            n_events=len(self.events) - snap.n_events,
            wire_bytes_per_rank=self._total_wire - snap.wire_bytes_per_rank,
            time_s=self._total_time - snap.time_s,
            generation=self._generation,
        )


    def to_chrome_trace(
        self,
        pid_base: int = 0,
        tid: int = 0,
        time_offset_s: float = 0.0,
        metadata: bool = True,
        generation: int | None = None,
    ) -> list[dict]:
        """Export events in Chrome trace-event format (``chrome://tracing``).

        Each collective involves every rank of its recorded world, so
        each event emits one ``X`` block *per participating rank* at
        ``pid = pid_base + rank`` — matching the one-pid-per-rank
        convention of :meth:`Timeline.to_chrome_trace` instead of the
        old behaviour of collapsing all ranks onto ``pid=0/tid=0``.

        Events that were placed on a timeline keep their scheduled
        issue/complete interval; unscheduled events are laid end-to-end
        on a *per-rank* fallback clock that never rewinds past a
        scheduled block, so mixed traces stay monotone per track.

        Parameters
        ----------
        pid_base:
            Added to every rank's pid (lets a merged multi-generation
            trace give each generation its own pid block).
        tid:
            Thread id used for every ledger track (the merged exporter
            in :mod:`repro.telemetry.spans` places ledger events on
            their own tid beside the compute/comm streams).
        time_offset_s:
            Added to every timestamp, in simulated seconds.
        metadata:
            Whether to emit ``process_name`` / ``thread_name`` ``M``
            metadata events naming each track.
        generation:
            If given, stamped into every event's ``args`` and the track
            names (resilience generation of the recording communicator).
        """
        trace: list[dict] = []
        clocks: dict[int, float] = defaultdict(float)
        seen_ranks: set[int] = set()
        for i, e in enumerate(self.events):
            duration_s = e.time_s
            for r in range(e.world):
                if e.has_schedule:
                    start = e.start_s
                    duration_s = e.end_s - e.start_s
                    clocks[r] = max(clocks[r], e.end_s)
                else:
                    start = clocks[r]
                    clocks[r] = start + duration_s
                seen_ranks.add(r)
                args: dict = {
                    "world": e.world,
                    "rank": r,
                    "wire_bytes_per_rank": e.wire_bytes_per_rank,
                    "seq": i,
                }
                if generation is not None:
                    args["generation"] = generation
                trace.append(
                    {
                        "name": f"{e.op}" + (f" [{e.tag}]" if e.tag else ""),
                        "cat": e.scope or "comm",
                        "ph": "X",
                        "ts": (start + time_offset_s) * 1e6,
                        "dur": duration_s * 1e6,
                        "pid": pid_base + r,
                        "tid": tid,
                        "args": args,
                    }
                )
        if metadata:
            prefix = f"gen{generation} " if generation is not None else ""
            meta: list[dict] = []
            for r in sorted(seen_ranks):
                margs: dict = {"name": f"{prefix}rank {r}"}
                targs: dict = {"name": "ledger"}
                if generation is not None:
                    margs["generation"] = generation
                    targs["generation"] = generation
                meta.append(
                    {"name": "process_name", "ph": "M",
                     "pid": pid_base + r, "tid": tid, "args": margs}
                )
                meta.append(
                    {"name": "thread_name", "ph": "M",
                     "pid": pid_base + r, "tid": tid, "args": targs}
                )
            trace = meta + trace
        return trace

    def write_chrome_trace(self, path) -> None:
        """Write the chrome trace JSON to ``path``."""
        import json

        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f)


@dataclass(frozen=True)
class LedgerSnapshot:
    """Frozen totals of a :class:`CostLedger` at one instant.

    ``generation`` records how many times the ledger had been
    :meth:`~CostLedger.reset` when the snapshot was taken; diffing
    snapshots across a reset raises :class:`LedgerResetError`.
    """

    n_events: int
    wire_bytes_per_rank: int
    time_s: float
    generation: int = 0


class _LedgerScope:
    def __init__(self, ledger: CostLedger, name: str):
        if "/" in name:
            raise ValueError("scope names must not contain '/'")
        self._ledger = ledger
        self._name = name

    def __enter__(self) -> CostLedger:
        self._ledger.push_scope(self._name)
        return self._ledger

    def __exit__(self, *exc_info: object) -> None:
        self._ledger.pop_scope(expected=self._name)
