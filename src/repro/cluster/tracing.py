"""Cost ledger and event tracing for simulated communication.

Every collective issued through :class:`repro.cluster.communicator.Communicator`
records a :class:`CommEvent` here.  The ledger aggregates the two
quantities the paper's analysis is built on:

* **wire bytes per rank** — the communication volume each GPU injects,
  the quantity the uniqueness/seeding/compression techniques shrink;
* **simulated time** — alpha-beta model time of each collective, summed
  into the per-step and per-epoch times reported by Tables III-V.

The ledger also supports *scopes* (named intervals) so a trainer can
attribute cost to phases: ``embedding-sync``, ``dense-allreduce``, …
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = [
    "CommEvent",
    "CostLedger",
    "LedgerScopeError",
    "LedgerSnapshot",
]


class LedgerScopeError(RuntimeError):
    """Unbalanced or mismatched ledger scope push/pop.

    Raised instead of silently corrupting attribution: an unbalanced
    stack means every subsequent event would be charged to the wrong
    phase, which is exactly the kind of bookkeeping bug the analysis
    tooling exists to catch.
    """


@dataclass(frozen=True)
class CommEvent:
    """One collective operation as observed by the ledger.

    ``start_s``/``end_s`` are the collective's placement on the
    per-rank :class:`~repro.cluster.timeline.Timeline` (simulated
    seconds); both are negative when the recording communicator carried
    no timeline (pure cost accounting).
    """

    op: str
    world: int
    wire_bytes_per_rank: int
    time_s: float
    tag: str = ""
    scope: str = ""
    start_s: float = -1.0
    end_s: float = -1.0
    payload_bytes_per_rank: int = -1

    @property
    def has_schedule(self) -> bool:
        """Whether this event was placed on a timeline."""
        return self.start_s >= 0.0 and self.end_s >= 0.0

    @property
    def logical_bytes_per_rank(self) -> int:
        """Pre-codec payload bytes; equals wire bytes when not recorded.

        A codec-encoded collective charges its *encoded* size as
        ``wire_bytes_per_rank`` (that is what crosses the link) and
        reports the original payload here, so the measured compression
        factor is ``logical / wire``.
        """
        if self.payload_bytes_per_rank >= 0:
            return self.payload_bytes_per_rank
        return self.wire_bytes_per_rank


@dataclass
class CostLedger:
    """Accumulates communication events and exposes aggregate views."""

    events: list[CommEvent] = field(default_factory=list)
    _scope_stack: list[str] = field(default_factory=list)

    def record(
        self,
        op: str,
        world: int,
        wire_bytes_per_rank: int,
        time_s: float,
        tag: str = "",
        start_s: float = -1.0,
        end_s: float = -1.0,
        payload_bytes_per_rank: int | None = None,
    ) -> CommEvent:
        if wire_bytes_per_rank < 0:
            raise ValueError("wire_bytes_per_rank must be non-negative")
        if time_s < 0:
            raise ValueError("time_s must be non-negative")
        if payload_bytes_per_rank is not None and payload_bytes_per_rank < 0:
            raise ValueError("payload_bytes_per_rank must be non-negative")
        event = CommEvent(
            op=op,
            world=world,
            wire_bytes_per_rank=wire_bytes_per_rank,
            time_s=time_s,
            tag=tag,
            scope=self.current_scope,
            start_s=start_s,
            end_s=end_s,
            payload_bytes_per_rank=(
                -1 if payload_bytes_per_rank is None else payload_bytes_per_rank
            ),
        )
        self.events.append(event)
        return event

    # -- scopes -------------------------------------------------------------

    @property
    def current_scope(self) -> str:
        return "/".join(self._scope_stack)

    @property
    def scope_depth(self) -> int:
        return len(self._scope_stack)

    def scope(self, name: str) -> "_LedgerScope":
        """Context manager attributing enclosed events to ``name``."""
        return _LedgerScope(self, name)

    def push_scope(self, name: str) -> None:
        """Enter a named scope (prefer the :meth:`scope` context manager)."""
        if "/" in name:
            raise LedgerScopeError("scope names must not contain '/'")
        self._scope_stack.append(name)

    def pop_scope(self, expected: str | None = None) -> str:
        """Leave the innermost scope, optionally checking its name.

        Raises
        ------
        LedgerScopeError
            If no scope is open (pop-on-empty), or ``expected`` is given
            and does not match the innermost open scope.
        """
        if not self._scope_stack:
            raise LedgerScopeError(
                "pop_scope on an empty scope stack: every pop must match a "
                "prior push (did an earlier scope exit twice?)"
            )
        top = self._scope_stack[-1]
        if expected is not None and top != expected:
            raise LedgerScopeError(
                f"mismatched ledger scope nesting: tried to close "
                f"{expected!r} but the innermost open scope is {top!r} "
                f"(open stack: {self.current_scope!r})"
            )
        return self._scope_stack.pop()

    def assert_balanced(self) -> None:
        """Raise :class:`LedgerScopeError` if any scope is still open.

        Call at the end of a run (the sanitizer does this) to catch a
        ``push_scope`` that never popped — events recorded afterwards
        would be silently mis-attributed.
        """
        if self._scope_stack:
            raise LedgerScopeError(
                f"unbalanced ledger scopes at end of run: "
                f"{self.current_scope!r} still open "
                f"({len(self._scope_stack)} unpopped push(es))"
            )

    # -- aggregates ----------------------------------------------------------

    @property
    def total_wire_bytes_per_rank(self) -> int:
        return sum(e.wire_bytes_per_rank for e in self.events)

    @property
    def total_time_s(self) -> float:
        return sum(e.time_s for e in self.events)

    def bytes_by_op(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        for e in self.events:
            out[e.op] += e.wire_bytes_per_rank
        return dict(out)

    def time_by_op(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for e in self.events:
            out[e.op] += e.time_s
        return dict(out)

    def bytes_by_scope(self) -> dict[str, int]:
        out: dict[str, int] = defaultdict(int)
        for e in self.events:
            out[e.scope] += e.wire_bytes_per_rank
        return dict(out)

    def time_by_scope(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for e in self.events:
            out[e.scope] += e.time_s
        return dict(out)

    def compression_factor(self, tag_contains: str = "") -> float:
        """Measured byte reduction, ``logical / wire``, over matching events.

        Filters to events whose tag contains ``tag_contains`` (all
        events by default).  1.0 means nothing was compressed — events
        recorded without an explicit payload count as uncompressed.
        This is the *measured*, data-dependent figure, as opposed to a
        codec's nominal :func:`~repro.core.compression.wire_bytes_ratio`.
        """
        wire = logical = 0
        for e in self.events:
            if tag_contains in e.tag:
                wire += e.wire_bytes_per_rank
                logical += e.logical_bytes_per_rank
        if wire == 0:
            return 1.0
        return logical / wire

    def reset(self) -> None:
        """Drop all events (scope stack is preserved)."""
        self.events.clear()

    def snapshot(self) -> "LedgerSnapshot":
        """Immutable point-in-time totals, for before/after deltas."""
        return LedgerSnapshot(
            n_events=len(self.events),
            wire_bytes_per_rank=self.total_wire_bytes_per_rank,
            time_s=self.total_time_s,
        )

    def delta_since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        """Totals accumulated since ``snap`` was taken."""
        return LedgerSnapshot(
            n_events=len(self.events) - snap.n_events,
            wire_bytes_per_rank=self.total_wire_bytes_per_rank
            - snap.wire_bytes_per_rank,
            time_s=self.total_time_s - snap.time_s,
        )


    def to_chrome_trace(self) -> list[dict]:
        """Export events in Chrome trace-event format (``chrome://tracing``).

        Events that were placed on a timeline keep their scheduled
        issue/complete interval (overlapped collectives render as
        overlapping blocks); unscheduled events are laid end-to-end on a
        fallback clock, preserving the old single-track view.  Every
        block is tagged with op, scope, and per-rank wire bytes, so a
        run's communication profile can be inspected visually.
        """
        trace = []
        clock_us = 0.0
        for i, e in enumerate(self.events):
            duration_us = e.time_s * 1e6
            if e.has_schedule:
                ts = e.start_s * 1e6
                duration_us = (e.end_s - e.start_s) * 1e6
            else:
                ts = clock_us
                clock_us += duration_us
            trace.append(
                {
                    "name": f"{e.op}" + (f" [{e.tag}]" if e.tag else ""),
                    "cat": e.scope or "comm",
                    "ph": "X",
                    "ts": ts,
                    "dur": duration_us,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        "world": e.world,
                        "wire_bytes_per_rank": e.wire_bytes_per_rank,
                        "seq": i,
                    },
                }
            )
        return trace

    def write_chrome_trace(self, path) -> None:
        """Write the chrome trace JSON to ``path``."""
        import json

        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f)


@dataclass(frozen=True)
class LedgerSnapshot:
    """Frozen totals of a :class:`CostLedger` at one instant."""

    n_events: int
    wire_bytes_per_rank: int
    time_s: float


class _LedgerScope:
    def __init__(self, ledger: CostLedger, name: str):
        if "/" in name:
            raise ValueError("scope names must not contain '/'")
        self._ledger = ledger
        self._name = name

    def __enter__(self) -> CostLedger:
        self._ledger.push_scope(self._name)
        return self._ledger

    def __exit__(self, *exc_info: object) -> None:
        self._ledger.pop_scope(expected=self._name)
