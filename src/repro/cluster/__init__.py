"""Simulated multi-GPU cluster substrate.

Provides byte-exact device memory accounting, a two-tier interconnect
model, MPI-style collectives with alpha-beta cost models, and a cost
ledger — the substrate on which the paper's distributed training runs.
"""

from .collectives import (
    allgather_arrays,
    allgather_wire_bytes,
    allreduce_arrays,
    allreduce_wire_bytes,
    broadcast_arrays,
    broadcast_wire_bytes,
    recursive_doubling_allreduce_time,
    reduce_scatter_arrays,
    reduce_scatter_wire_bytes,
    ring_allgather_time,
    ring_allreduce_time,
    ring_broadcast_time,
    ring_reduce_scatter_time,
)
from .communicator import Communicator, WorkHandle
from .failures import (
    ChaosCommunicator,
    FailingCommunicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RankFailureError,
    TransientLinkError,
    degrade_fabric,
    inject_straggler,
)
from .hierarchical import hierarchical_allreduce, hierarchical_allreduce_time
from .lockstep import LockstepReport, LockstepVerifier
from .mesh import (
    HYBRID_AXES,
    DeviceMesh,
    MeshCommunicator,
    hybrid_mesh,
    parse_mesh_spec,
)
from .device import (
    TITAN_X,
    V100,
    DeviceOOMError,
    DeviceSpec,
    ScopedAllocation,
    SimulatedDevice,
)
from .interconnect import (
    INFINIBAND_FDR,
    NVLINK_V100,
    PAPER_CLUSTER_FABRIC,
    PCIE_GEN3,
    V100_FABRIC,
    Interconnect,
    LinkSpec,
)
from .process_group import (
    ProcessGroup,
    group_of_rank,
    partition_ranks,
    sub_communicator,
)
from .timeline import (
    COMM_STREAM,
    COMPUTE_STREAM,
    CollectiveTicket,
    Timeline,
    TimelineEvent,
    events_to_chrome,
)
from .tracing import (
    CommEvent,
    CostLedger,
    LedgerResetError,
    LedgerScopeError,
    LedgerSnapshot,
)

__all__ = [
    "Communicator",
    "WorkHandle",
    "Timeline",
    "TimelineEvent",
    "CollectiveTicket",
    "COMPUTE_STREAM",
    "COMM_STREAM",
    "events_to_chrome",
    "LedgerResetError",
    "LedgerScopeError",
    "FailingCommunicator",
    "RankFailureError",
    "TransientLinkError",
    "ChaosCommunicator",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "degrade_fabric",
    "inject_straggler",
    "hierarchical_allreduce",
    "hierarchical_allreduce_time",
    "LockstepVerifier",
    "LockstepReport",
    "DeviceMesh",
    "MeshCommunicator",
    "HYBRID_AXES",
    "hybrid_mesh",
    "parse_mesh_spec",
    "CommEvent",
    "CostLedger",
    "LedgerSnapshot",
    "DeviceOOMError",
    "DeviceSpec",
    "SimulatedDevice",
    "ScopedAllocation",
    "TITAN_X",
    "V100",
    "Interconnect",
    "LinkSpec",
    "PCIE_GEN3",
    "INFINIBAND_FDR",
    "NVLINK_V100",
    "PAPER_CLUSTER_FABRIC",
    "V100_FABRIC",
    "ProcessGroup",
    "partition_ranks",
    "group_of_rank",
    "sub_communicator",
    "allreduce_arrays",
    "allgather_arrays",
    "broadcast_arrays",
    "reduce_scatter_arrays",
    "allreduce_wire_bytes",
    "allgather_wire_bytes",
    "reduce_scatter_wire_bytes",
    "broadcast_wire_bytes",
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "ring_broadcast_time",
    "recursive_doubling_allreduce_time",
]
