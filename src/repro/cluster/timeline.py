"""Per-rank two-stream event timeline for the async collective engine.

Real accelerators run gradient communication on a **comm stream** that
proceeds concurrently with the **compute stream** still executing the
backward pass; wall-clock per iteration is the *schedule makespan*, not
the sum of phase times.  The synchronous simulator had no notion of
this — ``repro.perf.overlap`` asserted the overlapped time with a closed
formula.  This module *derives* it from an actual execution order.

Model
-----
Each of ``world_size`` ranks owns two streams:

* **compute** — advanced explicitly via :meth:`Timeline.record_compute`
  (the trainer and the perf benches feed it backward-pass chunks).  A
  per-rank *compute scale* models stragglers: every compute duration on
  rank ``r`` is multiplied by ``compute_scale[r]`` (see
  :func:`repro.cluster.failures.inject_straggler`).
* **comm** — occupied by collectives scheduled via
  :meth:`Timeline.schedule_collective`.

Contention rules (the same constraints a ring over one fabric imposes):

1. a collective cannot *start* before every participating rank has
   reached its issue point (``start >= max_r compute_clock[r]`` at issue);
2. the ring link is a single shared resource — collectives serialize on
   it in issue order (``start >= end`` of the previous collective);
3. a rank's compute stream blocks at :meth:`Timeline.complete` (the
   ``wait()``) until the collective's end time.

Durations come from the caller — the communicator passes the existing
:class:`~repro.cluster.interconnect.LinkSpec` alpha-beta cost models —
so the timeline adds *ordering*, never new cost constants.

Performance notes
-----------------
The append paths are hot at large ``G`` (a G=512 training step issues
collectives whose naive bookkeeping would build 512 event objects and
re-scan 512-entry clock lists each).  Three measures keep them cheap:

* :class:`TimelineEvent` is a ``NamedTuple`` (tuple-backed, no
  per-instance ``__dict__``);
* all-rank collectives are journaled as **one** compact record and only
  expanded into per-participant events lazily when :attr:`Timeline.events`
  (or a chrome trace) is actually read;
* running maxima (``makespan``) and per-rank busy totals are maintained
  incrementally, so measurement queries never scan the event journal.

See ``docs/PERFORMANCE.md`` for the profile-before/after methodology.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import NamedTuple

__all__ = [
    "COMPUTE_STREAM",
    "COMM_STREAM",
    "CollectiveTicket",
    "Timeline",
    "TimelineEvent",
    "events_to_chrome",
]

#: Stream names used in events and chrome traces.
COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"


class TimelineEvent(NamedTuple):
    """One interval on one rank's compute or comm stream.

    Tuple-backed for cheap construction on the recording hot path;
    field order is part of the serialization contract of
    :mod:`repro.telemetry.spans` (which writes ``[rank, stream, name,
    start, end]`` rows and reconstructs events positionally).
    """

    rank: int
    stream: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveTicket:
    """The scheduled placement of one collective on the comm streams.

    Returned by :meth:`Timeline.schedule_collective`; passed back to
    :meth:`Timeline.complete` when the issuing code ``wait()``\\ s.
    """

    index: int
    name: str
    start: float
    end: float


class _CollectiveRecord(NamedTuple):
    """Compact journal entry: one collective, all participants.

    ``ranks`` is ``None`` for the common all-ranks case — the expansion
    to per-participant :class:`TimelineEvent` rows happens lazily in
    :meth:`Timeline._materialize_events`.
    """

    name: str
    start: float
    end: float
    ranks: tuple[int, ...] | None


class Timeline:
    """Simulated two-stream (compute + comm) schedule over all ranks.

    Parameters
    ----------
    world_size:
        Number of simulated ranks.

    Notes
    -----
    The timeline is *monotone*: clocks only move forward, and scheduling
    queries are O(1) per event.  All times are simulated seconds from
    the start of the run; use :meth:`mark` / :meth:`elapsed_since` for
    per-iteration spans.
    """

    def __init__(self, world_size: int):
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size
        self.compute_clock = [0.0] * world_size
        self.comm_clock = [0.0] * world_size
        self.compute_scale = [1.0] * world_size
        self._link_free = 0.0
        self._next_index = 0
        # Journal: TimelineEvent for compute, _CollectiveRecord for
        # collectives; expanded lazily by the ``events`` property.
        self._journal: list = []
        self._events_cache: list[TimelineEvent] | None = []
        # Incremental measurement state (never rescans the journal).
        self._max_compute = 0.0
        self._max_comm = 0.0
        self._busy_compute = [0.0] * world_size
        self._busy_comm = [0.0] * world_size

    # ------------------------------------------------------------------
    # stream advancement
    # ------------------------------------------------------------------

    def set_compute_scale(self, rank: int, factor: float) -> None:
        """Scale every subsequent compute duration on ``rank`` by ``factor``.

        ``factor > 1`` makes the rank a straggler; the synchronous
        schedule then pays the slowdown on every collective that rank
        participates in (rule 1 above).
        """
        self._check_rank(rank)
        if factor <= 0:
            raise ValueError(f"compute scale must be positive, got {factor}")
        self.compute_scale[rank] = factor

    def record_compute(
        self, rank: int, seconds: float, name: str = "compute"
    ) -> TimelineEvent:
        """Append ``seconds`` of work to ``rank``'s compute stream.

        The duration is multiplied by the rank's compute scale; returns
        the placed event.
        """
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        start = self.compute_clock[rank]
        end = start + seconds * self.compute_scale[rank]
        self.compute_clock[rank] = end
        if end > self._max_compute:
            self._max_compute = end
        self._busy_compute[rank] += end - start
        event = TimelineEvent(rank, COMPUTE_STREAM, name, start, end)
        self._journal.append(event)
        if self._events_cache is not None:
            self._events_cache.append(event)
        return event

    def schedule_collective(
        self, duration: float, name: str = "", ranks: Sequence[int] | None = None
    ) -> CollectiveTicket:
        """Place one collective of ``duration`` seconds on the comm streams.

        The start time honours the contention rules in the module
        docstring: no earlier than any participating rank's current
        compute position (its issue point), no earlier than any of their
        comm streams, and no earlier than the shared link frees up.
        The collective's completion does **not** block compute — call
        :meth:`complete` when the issuing code waits on its handle.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        comm_clock = self.comm_clock
        if ranks is None:
            # Fast path for the common all-ranks collective: running
            # maxima replace the per-participant scans, and no
            # participant list is materialized at all.
            start = self._max_compute
            if self._max_comm > start:
                start = self._max_comm
            if self._link_free > start:
                start = self._link_free
            end = start + duration
            dur = end - start
            busy = self._busy_comm
            for r in range(self.world_size):  # mesh-ok: default participant set is every rank; callers pass subgroups
                comm_clock[r] = end
                busy[r] += dur
            participants = None
        else:
            participants = tuple(ranks)
            for r in participants:
                self._check_rank(r)
            if not participants:
                raise ValueError("a collective needs at least one participant")
            compute_clock = self.compute_clock
            start = self._link_free
            for r in participants:
                if compute_clock[r] > start:
                    start = compute_clock[r]
                if comm_clock[r] > start:
                    start = comm_clock[r]
            end = start + duration
            dur = end - start
            busy = self._busy_comm
            for r in participants:
                comm_clock[r] = end
                busy[r] += dur
        if end > self._max_comm:
            self._max_comm = end
        self._link_free = end
        self._journal.append(
            _CollectiveRecord(name or "collective", start, end, participants)
        )
        self._events_cache = None
        ticket = CollectiveTicket(self._next_index, name, start, end)
        self._next_index += 1
        return ticket

    def complete(
        self, ticket: CollectiveTicket, ranks: Sequence[int] | None = None
    ) -> float:
        """Block compute streams until ``ticket``'s collective finishes.

        Models ``WorkHandle.wait()``: each waiting rank's compute clock
        advances to at least the collective's end time.  Returns the end
        time.  Idempotent — waiting twice is a no-op.
        """
        end = ticket.end
        compute_clock = self.compute_clock
        if ranks is None:
            for r in range(self.world_size):  # mesh-ok: default participant set is every rank; callers pass subgroups
                if compute_clock[r] < end:
                    compute_clock[r] = end
        else:
            for r in ranks:
                self._check_rank(r)
                if compute_clock[r] < end:
                    compute_clock[r] = end
        if end > self._max_compute:
            self._max_compute = end
        return end

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[TimelineEvent]:
        """All events in historical order (collectives expanded per rank).

        Materialized lazily from the compact journal and cached until
        the next collective is scheduled; treat the returned list as
        read-only.
        """
        cache = self._events_cache
        if cache is None:
            cache = self._materialize_events()
            self._events_cache = cache
        return cache

    def _materialize_events(self) -> list[TimelineEvent]:
        out: list[TimelineEvent] = []
        world = range(self.world_size)  # mesh-ok: expanding all-rank collectives into per-rank rows
        for entry in self._journal:
            if type(entry) is TimelineEvent:
                out.append(entry)
            else:
                name, start, end, ranks = entry
                for r in (world if ranks is None else ranks):  # mesh-ok: expanding an all-rank collective into per-rank rows
                    out.append(
                        TimelineEvent(r, COMM_STREAM, name, start, end)
                    )
        return out

    @property
    def makespan(self) -> float:
        """End of the schedule: the latest point any stream reaches."""
        span = self._max_compute
        if self._max_comm > span:
            span = self._max_comm
        if self._link_free > span:
            span = self._link_free
        return span

    def mark(self) -> float:
        """Snapshot the current makespan (start of a measured interval)."""
        return self.makespan

    def elapsed_since(self, mark: float) -> float:
        """Simulated seconds between ``mark`` and the current makespan."""
        return self.makespan - mark

    def busy_time(self, rank: int, stream: str) -> float:
        """Total occupied seconds of one rank's compute or comm stream."""
        self._check_rank(rank)
        if stream == COMPUTE_STREAM:
            return self._busy_compute[rank]
        if stream == COMM_STREAM:
            return self._busy_comm[rank]
        return 0.0

    def exposed_comm_time(self) -> float:
        """Comm seconds *not* hidden behind compute, over the whole run.

        The difference between the makespan and the busiest compute
        stream: with perfect overlap it is zero; with no compute
        recorded it equals the serialized comm span.
        """
        busiest = max(self._busy_compute, default=0.0)
        return max(0.0, self.makespan - busiest)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_chrome_trace(
        self,
        pid_base: int = 0,
        time_offset_s: float = 0.0,
        generation: int | None = None,
    ) -> list[dict]:
        """Export the schedule in Chrome trace-event format.

        One ``pid`` per rank, one ``tid`` per stream, so the two-stream
        structure renders as paired tracks in ``chrome://tracing``.
        ``pid_base``/``time_offset_s``/``generation`` support the merged
        multi-generation exporter in :mod:`repro.telemetry.spans`.
        The trace rows are built on demand from the compact journal —
        nothing is materialized while the simulation is running.
        """
        return events_to_chrome(
            self.events,
            pid_base=pid_base,
            time_offset_s=time_offset_s,
            generation=generation,
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world size {self.world_size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Timeline(world_size={self.world_size}, "
            f"events={len(self._journal)}, makespan={self.makespan:.3e}s)"
        )


def events_to_chrome(
    events: Sequence[TimelineEvent],
    pid_base: int = 0,
    time_offset_s: float = 0.0,
    generation: int | None = None,
) -> list[dict]:
    """Render timeline events as Chrome ``X`` blocks (pid=rank, tid=stream).

    Module-level so the merged exporter in :mod:`repro.telemetry.spans`
    can render events deserialised from a trace-parts file without
    reconstructing a live :class:`Timeline`.
    """
    trace = []
    for e in events:
        args: dict = {"stream": e.stream}
        if generation is not None:
            args["generation"] = generation
        trace.append(
            {
                "name": e.name,
                "cat": e.stream,
                "ph": "X",
                "ts": (e.start + time_offset_s) * 1e6,
                "dur": e.duration * 1e6,
                "pid": pid_base + e.rank,
                "tid": 0 if e.stream == COMPUTE_STREAM else 1,
                "args": args,
            }
        )
    return trace
