"""Simulated GPU devices with explicit memory accounting.

The paper's scaling argument hinges on *per-GPU memory footprint*: the
baseline ALLGATHER over dense embedding gradients needs ``G * K * D``
floats of temporary buffer on every GPU, which overflows a 12 GB Titan X
beyond 24 GPUs (Tables III and IV report ``*`` = out of memory).  To
reproduce that behaviour faithfully we model each device as a byte-exact
allocator with a hard capacity: every tensor the training stack or a
collective allocates is charged here, and exceeding the capacity raises
:class:`DeviceOOMError` exactly where the real run would have aborted.

The device also carries a compute-throughput description (peak FLOP/s
and an achieved-fraction) used by :mod:`repro.perf` to convert per-step
FLOP counts into simulated wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Allocation",
    "DeviceOOMError",
    "DeviceSpec",
    "ScopedAllocation",
    "SimulatedDevice",
    "TITAN_X",
    "V100",
]


class DeviceOOMError(MemoryError):
    """Raised when an allocation would exceed a device's memory capacity.

    Mirrors a CUDA out-of-memory abort.  The message records the device,
    the failed request and the live footprint so benchmark tables can
    render the paper's ``*`` cells with a real diagnostic behind them.
    """

    def __init__(self, device: "SimulatedDevice", requested: int, tag: str):
        self.device_id = device.device_id
        self.requested = requested
        self.in_use = device.bytes_in_use
        self.capacity = device.spec.memory_bytes
        self.tag = tag
        super().__init__(
            f"device {device.device_id}: allocation of {requested} bytes "
            f"(tag={tag!r}) exceeds capacity: {self.in_use} in use of "
            f"{self.capacity} total"
        )


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) accelerator.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"GeForce GTX Titan X"``.
    memory_bytes:
        Usable device memory.  The paper's Titan X has 12 GB.
    peak_flops:
        Peak single-precision throughput in FLOP/s.
    achieved_fraction:
        Fraction of peak a real kernel mix achieves.  The paper reports
        40% of peak for the word LM and 64% for the character LM; the
        performance model passes a workload-specific value, so this field
        is only a default.
    memory_bandwidth:
        Device-memory bandwidth in bytes/s — bounds the local
        scatter/update cost of applying gathered embedding gradients.
    """

    name: str
    memory_bytes: int
    peak_flops: float
    achieved_fraction: float = 0.40
    memory_bandwidth: float = 336e9

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if not 0.0 < self.achieved_fraction <= 1.0:
            raise ValueError("achieved_fraction must be in (0, 1]")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")

    @property
    def sustained_flops(self) -> float:
        """Realistic FLOP/s = peak * achieved fraction."""
        return self.peak_flops * self.achieved_fraction


#: The GPU used throughout the paper's evaluation (Table II).
TITAN_X = DeviceSpec(
    name="GeForce GTX Titan X",
    memory_bytes=12 * 1024**3,
    peak_flops=6.1e12,
)

#: The GPU used by the prior work the paper compares against (Puri et al.).
V100 = DeviceSpec(
    name="Tesla V100",
    memory_bytes=16 * 1024**3,
    peak_flops=125e12,  # tensor-core peak, as quoted in the paper
    achieved_fraction=0.40,
    memory_bandwidth=900e9,
)


@dataclass
class Allocation:
    """A live allocation on a device, freed via :meth:`SimulatedDevice.free`."""

    device_id: int
    nbytes: int
    tag: str
    freed: bool = False


@dataclass
class SimulatedDevice:
    """One simulated GPU: a capacity-limited byte allocator.

    Parameters
    ----------
    device_id:
        Global rank of this device in the cluster.
    spec:
        Hardware description (capacity, throughput).

    Notes
    -----
    Allocations are explicit (``alloc``/``free``) rather than tied to
    numpy array lifetimes: the simulator runs many ranks in one host
    process, so numpy's own allocator says nothing about what would fit
    on a 12 GB card.  Training code charges model parameters, optimizer
    state, activations and communication buffers here.
    """

    device_id: int
    spec: DeviceSpec
    bytes_in_use: int = 0
    peak_bytes: int = 0
    _live: dict[int, Allocation] = field(default_factory=dict)
    _next_handle: int = 0

    def alloc(self, nbytes: int, tag: str = "") -> int:
        """Charge ``nbytes`` against the device; return a handle for ``free``.

        Raises
        ------
        DeviceOOMError
            If the allocation would exceed the device capacity.
        ValueError
            If ``nbytes`` is negative.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if self.bytes_in_use + nbytes > self.spec.memory_bytes:
            raise DeviceOOMError(self, nbytes, tag)
        self.bytes_in_use += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = Allocation(self.device_id, nbytes, tag)
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation.  Double-free raises ``KeyError``."""
        alloc = self._live.pop(handle)
        alloc.freed = True
        self.bytes_in_use -= alloc.nbytes
        assert self.bytes_in_use >= 0, "allocator accounting went negative"

    def live_allocations(self) -> list[Allocation]:
        """Snapshot of currently live allocations (debugging / leak tests)."""
        return list(self._live.values())

    @property
    def bytes_free(self) -> int:
        return self.spec.memory_bytes - self.bytes_in_use

    def would_fit(self, nbytes: int) -> bool:
        """Check whether an allocation of ``nbytes`` would succeed."""
        return nbytes >= 0 and self.bytes_in_use + nbytes <= self.spec.memory_bytes

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current footprint."""
        self.peak_bytes = self.bytes_in_use


class ScopedAllocation:
    """Context manager charging a temporary buffer for the enclosed block.

    Collectives use this for their scratch space so that footprint spikes
    (the quantity that OOMs the baseline) register in ``peak_bytes`` even
    though the buffer is released before the call returns::

        with ScopedAllocation(device, nbytes, tag="allgather-recv"):
            ...  # do the exchange
    """

    def __init__(self, device: SimulatedDevice, nbytes: int, tag: str = ""):
        self._device = device
        self._nbytes = nbytes
        self._tag = tag
        self._handle: int | None = None

    def __enter__(self) -> "ScopedAllocation":
        self._handle = self._device.alloc(self._nbytes, self._tag)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._device.free(self._handle)
            self._handle = None
