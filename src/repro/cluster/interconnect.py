"""Interconnect topology and bandwidth model.

The paper's cluster (Table II) has two communication tiers:

* **intra-node**: 8 GPUs per node on PCIe at 32 GB/s bidirectional;
* **inter-node**: Infiniband FDR at 15 GB/s bidirectional.

Ring-based collectives are bottlenecked by the *slowest link on the
ring*, so once a job spans more than one node the effective per-step
bandwidth is the Infiniband share.  This module captures exactly that:
a topology (ranks → nodes) plus per-tier link speeds, exposing the
effective bandwidth/latency a collective over a given rank set sees.

All bandwidths are *unidirectional* bytes/s as seen by one direction of
a ring; the bidirectional figures from Table II are halved on
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "INFINIBAND_FDR",
    "Interconnect",
    "LinkSpec",
    "NVLINK_V100",
    "PAPER_CLUSTER_FABRIC",
    "PCIE_GEN3",
    "V100_FABRIC",
]


@dataclass(frozen=True)
class LinkSpec:
    """One communication tier: bandwidth (bytes/s, unidirectional) + latency."""

    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Time to push ``nbytes`` through this link once."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency + nbytes / self.bandwidth


def _half_duplex(bidirectional_bytes_per_s: float) -> float:
    return bidirectional_bytes_per_s / 2.0


#: PCIe 3.0 x16 as in Table II: 32 GB/s bidirectional.
PCIE_GEN3 = LinkSpec(bandwidth=_half_duplex(32e9), latency=5e-6)

#: Infiniband FDR as in Table II: 15 GB/s bidirectional.
INFINIBAND_FDR = LinkSpec(bandwidth=_half_duplex(15e9), latency=1.5e-6)

#: NVLink (V100 systems of the compared prior work), ~300 GB/s bidirectional.
NVLINK_V100 = LinkSpec(bandwidth=_half_duplex(300e9), latency=2e-6)


@dataclass(frozen=True)
class Interconnect:
    """Two-tier topology: ``gpus_per_node`` ranks share the intra-node link.

    Parameters
    ----------
    intra_node:
        Link between GPUs on the same node (PCIe / NVLink).
    inter_node:
        Link between nodes (Infiniband / Ethernet).
    gpus_per_node:
        Number of ranks co-located per node; the paper uses 8.
    """

    intra_node: LinkSpec = PCIE_GEN3
    inter_node: LinkSpec = INFINIBAND_FDR
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (ranks are packed node-by-node)."""
        if rank < 0:
            raise ValueError("rank must be non-negative")
        return rank // self.gpus_per_node

    def num_nodes(self, world_size: int) -> int:
        """Number of nodes a job of ``world_size`` ranks occupies."""
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        return -(-world_size // self.gpus_per_node)  # ceil division

    def spans_nodes(self, world_size: int) -> bool:
        return self.num_nodes(world_size) > 1

    def ring_link(self, world_size: int) -> LinkSpec:
        """The binding link for a ring over ``world_size`` ranks.

        A ring ordered by rank crosses a node boundary iff the job spans
        more than one node; the steady-state ring throughput is then set
        by the slower inter-node hop (every chunk must traverse it).
        For a single-node job the ring stays on the intra-node fabric.
        """
        if self.spans_nodes(world_size):
            return self.inter_node
        return self.intra_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkSpec:
        """Point-to-point link between two specific ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node
        return self.inter_node


#: The exact fabric of the paper's 50-node evaluation cluster.
PAPER_CLUSTER_FABRIC = Interconnect(
    intra_node=PCIE_GEN3, inter_node=INFINIBAND_FDR, gpus_per_node=8
)

#: NVLink/V100 fabric of the prior work compared against in Section V-D.
V100_FABRIC = Interconnect(
    intra_node=NVLINK_V100, inter_node=INFINIBAND_FDR, gpus_per_node=8
)
