"""Merged multi-pid chrome-trace export across generations and streams.

The repo has three span sources that previously exported through
incompatible conventions:

* :class:`~repro.cluster.timeline.Timeline` — compute/comm stream
  intervals, one pid per rank, tid 0/1;
* :class:`~repro.cluster.tracing.CostLedger` — collective cost events
  with scopes and wire bytes;
* :class:`~repro.train.resilience.ResilientRunner` — one
  timeline/ledger pair *per communicator generation* (the world may
  shrink between generations).

This module merges all three into **one** chrome trace: generation
``g`` with world size ``W_g`` occupies a contiguous pid block after all
earlier generations, each rank contributes a compute track (tid 0), a
comm track (tid 1), and a ledger track (tid 2), and generations are laid
out end-to-end in time (offset by the cumulative span of earlier
generations) so the merged view reads as one continuous run.

Traces can round-trip through JSON ("trace parts") so ``repro.cli
trace`` can re-merge and validate a run recorded by an earlier
process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..cluster.timeline import TimelineEvent, events_to_chrome
from ..cluster.tracing import CommEvent, CostLedger

__all__ = [
    "COMPUTE_TID",
    "COMM_TID",
    "LEDGER_TID",
    "GenerationPart",
    "TraceValidationError",
    "merged_trace",
    "parts_from_json",
    "parts_to_json",
    "validate_chrome_trace",
    "write_trace",
]

#: Thread ids of the three per-rank tracks in the merged trace.
COMPUTE_TID = 0
COMM_TID = 1
LEDGER_TID = 2

_TID_NAMES = {COMPUTE_TID: "compute", COMM_TID: "comm", LEDGER_TID: "ledger"}


class TraceValidationError(RuntimeError):
    """A merged chrome trace violated a structural invariant.

    Raised for negative timestamps/durations or overlapping ``X``
    blocks on the same (pid, tid) track — either one means the span
    accounting upstream is wrong.
    """


@dataclass
class GenerationPart:
    """Span data of one communicator generation, as plain events.

    Holding event lists (rather than live ``Timeline``/``CostLedger``
    objects) keeps parts JSON-serialisable, so a trace recorded by
    ``train --telemetry-dir`` can be merged later by ``repro.cli
    trace`` in a different process.
    """

    world_size: int
    timeline_events: List[TimelineEvent] = field(default_factory=list)
    ledger_events: List[CommEvent] = field(default_factory=list)
    label: str = ""

    @classmethod
    def from_run(cls, ledger, timeline, label: str = "") -> "GenerationPart":
        """Capture a live ledger/timeline pair (either may be ``None``)."""
        world = 0
        if timeline is not None:
            world = timeline.world_size
        elif ledger is not None and ledger.events:
            world = max(e.world for e in ledger.events)
        return cls(
            world_size=max(world, 1),
            timeline_events=list(timeline.events) if timeline is not None else [],
            ledger_events=list(ledger.events) if ledger is not None else [],
            label=label,
        )

    @property
    def span_s(self) -> float:
        """Latest event end in this generation (its time footprint)."""
        span = 0.0
        for e in self.timeline_events:
            span = max(span, e.end)
        clock = 0.0
        for e in self.ledger_events:
            if e.has_schedule:
                span = max(span, e.end_s)
                clock = max(clock, e.end_s)
            else:
                clock += e.time_s
                span = max(span, clock)
        return span


def parts_to_json(parts: Sequence[GenerationPart]) -> dict:
    """Serialise generation parts for a trace-parts file."""
    return {
        "version": 1,
        "generations": [
            {
                "world_size": p.world_size,
                "label": p.label,
                "timeline_events": [
                    [e.rank, e.stream, e.name, e.start, e.end]
                    for e in p.timeline_events
                ],
                "ledger_events": [
                    {
                        "op": e.op,
                        "world": e.world,
                        "wire_bytes_per_rank": e.wire_bytes_per_rank,
                        "time_s": e.time_s,
                        "tag": e.tag,
                        "scope": e.scope,
                        "start_s": e.start_s,
                        "end_s": e.end_s,
                        "payload_bytes_per_rank": e.payload_bytes_per_rank,
                    }
                    for e in p.ledger_events
                ],
            }
            for p in parts
        ],
    }


def parts_from_json(obj: dict) -> List[GenerationPart]:
    """Inverse of :func:`parts_to_json` (accepts a dict or a JSON string)."""
    if isinstance(obj, str):
        obj = json.loads(obj)
    parts = []
    for g in obj["generations"]:
        parts.append(
            GenerationPart(
                world_size=int(g["world_size"]),
                timeline_events=[
                    TimelineEvent(int(r), stream, name, float(s), float(e))
                    for r, stream, name, s, e in g["timeline_events"]
                ],
                ledger_events=[CommEvent(**e) for e in g["ledger_events"]],
                label=g.get("label", ""),
            )
        )
    return parts


def merged_trace(
    parts: Sequence[GenerationPart],
    metadata: bool = True,
    serialize_generations: bool = True,
) -> List[dict]:
    """Merge every generation's streams + ledger into one chrome trace.

    Generation ``g`` gets pids ``[sum(W_0..W_{g-1}), ...)`` — one per
    rank — with tids 0/1/2 for compute/comm/ledger, and is shifted in
    time past all earlier generations when ``serialize_generations`` is
    true (a resilient run's generations are sequential in real time).
    """
    trace: List[dict] = []
    pid_base = 0
    offset_s = 0.0
    for g, part in enumerate(parts):
        if metadata:
            label = part.label or f"gen{g}"
            for r in range(part.world_size):  # mesh-ok: one trace track per flat rank
                trace.append(
                    {
                        "name": "process_name", "ph": "M",
                        "pid": pid_base + r, "tid": 0,
                        "args": {"name": f"{label} rank {r}",
                                 "generation": g},
                    }
                )
                for tid, tname in _TID_NAMES.items():
                    trace.append(
                        {
                            "name": "thread_name", "ph": "M",
                            "pid": pid_base + r, "tid": tid,
                            "args": {"name": tname, "generation": g},
                        }
                    )
        trace.extend(
            events_to_chrome(
                part.timeline_events,
                pid_base=pid_base,
                time_offset_s=offset_s,
                generation=g,
            )
        )
        ledger = CostLedger(events=list(part.ledger_events))
        trace.extend(
            ledger.to_chrome_trace(
                pid_base=pid_base,
                tid=LEDGER_TID,
                time_offset_s=offset_s,
                metadata=False,
                generation=g,
            )
        )
        pid_base += part.world_size
        if serialize_generations:
            offset_s += part.span_s
    return trace


def validate_chrome_trace(trace: Sequence[dict]) -> Dict[str, object]:
    """Check structural invariants of a chrome trace; return a summary.

    Raises :class:`TraceValidationError` on negative timestamps or
    durations, or when two ``X`` blocks on the same (pid, tid) track
    overlap by more than floating-point jitter.  Returns counts and the
    pid/tid/generation sets for reporting.
    """
    tracks: Dict[tuple, List[tuple]] = {}
    pids = set()
    generations = set()
    n_events = 0
    for event in trace:
        if event.get("ph") != "X":
            continue
        n_events += 1
        ts = float(event["ts"])
        dur = float(event.get("dur", 0.0))
        if ts < 0:
            raise TraceValidationError(
                f"negative timestamp {ts} on event {event.get('name')!r}"
            )
        if dur < 0:
            raise TraceValidationError(
                f"negative duration {dur} on event {event.get('name')!r}"
            )
        key = (event["pid"], event["tid"])
        tracks.setdefault(key, []).append((ts, ts + dur, event.get("name")))
        pids.add(event["pid"])
        gen = event.get("args", {}).get("generation")
        if gen is not None:
            generations.add(gen)
    epsilon = 1e-3  # one nanosecond of slack, in microseconds
    for (pid, tid), intervals in tracks.items():
        intervals.sort()
        for (s0, e0, n0), (s1, e1, n1) in zip(intervals, intervals[1:]):
            if s1 < e0 - epsilon:
                raise TraceValidationError(
                    f"overlap on track pid={pid} tid={tid}: "
                    f"{n0!r} [{s0}, {e0}) overlaps {n1!r} [{s1}, {e1})"
                )
    return {
        "events": n_events,
        "tracks": len(tracks),
        "pids": sorted(pids),
        "generations": sorted(generations),
    }


def write_trace(path, trace: Sequence[dict]) -> None:
    """Write a chrome trace JSON array to ``path``."""
    with open(path, "w") as f:
        json.dump(list(trace), f)
