"""Run-scoped telemetry: per-step JSONL, metric registry, trace capture.

A :class:`TelemetrySession` is the single observer a run attaches to
everything it wants measured:

* ``track(comm)`` points the communicator's ``metrics`` attribute at the
  session registry (the wire layer feeds per-codec histograms through
  it) and retains the communicator's ledger/timeline pair as one
  *generation* of the merged trace;
* ``record_step(...)`` streams one JSON object per optimizer step to
  ``steps.jsonl`` and updates the step counters/histograms;
* ``record_event(...)`` does the same for recovery events
  (``events.jsonl``);
* ``finalize()`` computes the run-total gauges *directly from the
  ledgers* (so the exports agree with ledger totals exactly), writes
  ``metrics.prom`` / ``metrics.json`` / ``trace.json`` /
  ``trace_parts.json``, and returns a summary dict.

Everything works with ``directory=None`` too — the registry and traces
stay in memory, which is what the tests use.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import List, Optional

from .exporters import to_json, to_prometheus_text
from .registry import MetricsRegistry
from .spans import GenerationPart, merged_trace, parts_to_json, validate_chrome_trace

__all__ = ["TelemetrySession", "run_totals_from_parts"]

#: Histogram buckets for per-rank wire bytes per step.
_BYTE_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


def run_totals_from_parts(parts: List[GenerationPart]) -> dict:
    """Exact run totals derived from generation parts.

    Used both by :meth:`TelemetrySession.finalize` (to set the run
    gauges) and by ``repro.cli trace`` (to verify the written exports
    against the ledger) — sharing one implementation, with one float
    summation order, is what makes "agrees exactly" achievable.
    """
    wire_bytes = 0
    logical_bytes = 0
    comm_time_s = 0.0
    simulated_s = 0.0
    for part in parts:
        for e in part.ledger_events:
            wire_bytes += e.wire_bytes_per_rank
            logical_bytes += e.logical_bytes_per_rank
        comm_time_s += sum(e.time_s for e in part.ledger_events)
        simulated_s += part.span_s
    factor = 1.0 if wire_bytes == 0 else logical_bytes / wire_bytes
    return {
        "wire_bytes_per_rank": wire_bytes,
        "logical_bytes_per_rank": logical_bytes,
        "compression_factor": factor,
        "comm_time_s": comm_time_s,
        "simulated_time_s": simulated_s,
        "generations": len(parts),
        "final_world_size": parts[-1].world_size if parts else 0,
    }


class TelemetrySession:
    """Collects metrics, step records, and trace parts for one run."""

    def __init__(
        self,
        directory: "str | pathlib.Path | None" = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Truncate any stale stream files from a previous run.
            for name in ("steps.jsonl", "events.jsonl"):
                (self.directory / name).write_text("")
        self.steps: List[dict] = []
        self.events: List[dict] = []
        self._tracked: List[tuple] = []
        self._finalized = False
        reg = self.registry
        self._steps_total = reg.counter(
            "repro_steps_total", "Optimizer steps observed by the session"
        )
        self._skipped_total = reg.counter(
            "repro_skipped_steps_total", "Overflow-skipped optimizer steps"
        )
        self._recovery_total = reg.counter(
            "repro_recovery_events_total",
            "Recovery-loop events by kind",
            labelnames=("kind",),
        )
        self._loss_hist = reg.histogram(
            "repro_train_loss", "Per-step mean training loss",
            buckets=(0.5, 1, 2, 4, 8, 16, 32),
        )
        self._step_time_hist = reg.histogram(
            "repro_step_time_seconds", "Simulated seconds per optimizer step"
        )
        self._step_bytes_hist = reg.histogram(
            "repro_step_wire_bytes_per_rank",
            "Per-rank wire bytes injected per optimizer step",
            buckets=_BYTE_BUCKETS,
        )
        self._loss_scale_gauge = reg.gauge(
            "repro_loss_scale", "Current loss scale"
        )

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def track(self, comm, label: str = "") -> None:
        """Adopt a communicator: route its metrics here, keep its spans.

        Each tracked communicator becomes one *generation* in the merged
        trace (a resilient run tracks every rebuilt communicator).
        """
        try:
            comm.metrics = self.registry
        except AttributeError:  # exotic wrappers without settable attrs
            pass
        ledger = getattr(comm, "ledger", None)
        timeline = getattr(comm, "timeline", None)
        self._tracked.append(
            (ledger, timeline, label or f"gen{len(self._tracked)}")
        )

    def adopt_trainer(self, trainer) -> None:
        """Attach to a trainer: it emits steps here; its comm is tracked."""
        trainer.telemetry = self
        self.track(trainer.comm)

    # ------------------------------------------------------------------
    # streaming records
    # ------------------------------------------------------------------

    def record_step(self, **fields: object) -> None:
        """Record one optimizer step (arbitrary JSON-serialisable fields).

        Recognised fields also update the metric registry: ``loss``,
        ``step_time_s``, ``wire_bytes_per_rank``, ``loss_scale``,
        ``skipped``.
        """
        self.steps.append(fields)
        self._append_jsonl("steps.jsonl", fields)
        self._steps_total.inc()
        if fields.get("skipped"):
            self._skipped_total.inc()
        loss = fields.get("loss")
        if isinstance(loss, (int, float)) and math.isfinite(loss):
            self._loss_hist.observe(loss)
        step_time = fields.get("step_time_s")
        if isinstance(step_time, (int, float)):
            self._step_time_hist.observe(step_time)
        wire = fields.get("wire_bytes_per_rank")
        if isinstance(wire, (int, float)):
            self._step_bytes_hist.observe(wire)
        scale = fields.get("loss_scale")
        if isinstance(scale, (int, float)):
            self._loss_scale_gauge.set(scale)

    def record_event(self, kind: str, step: int, detail: str = "") -> None:
        """Record one recovery/lifecycle event (mirrors RecoveryEvent)."""
        record = {"kind": kind, "step": step, "detail": detail}
        self.events.append(record)
        self._append_jsonl("events.jsonl", record)
        self._recovery_total.inc(kind=kind)

    def _append_jsonl(self, name: str, record: dict) -> None:
        if self.directory is None:
            return
        with open(self.directory / name, "a") as f:
            f.write(json.dumps(record) + "\n")

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def parts(self) -> List[GenerationPart]:
        """Generation parts captured from every tracked communicator."""
        return [
            GenerationPart.from_run(ledger, timeline, label=label)
            for ledger, timeline, label in self._tracked
        ]

    def merged_trace(self) -> List[dict]:
        """The merged multi-generation chrome trace (see spans module)."""
        return merged_trace(self.parts())

    def finalize(self) -> dict:
        """Freeze run-total gauges from the ledgers and write all exports.

        Idempotent per session directory; returns a summary dict with
        the totals, the trace validation summary, and the files written.
        """
        parts = self.parts()
        totals = run_totals_from_parts(parts)
        reg = self.registry
        reg.gauge(
            "repro_run_wire_bytes_per_rank",
            "Run-total per-rank wire bytes (exact ledger total)",
        ).set(totals["wire_bytes_per_rank"])
        reg.gauge(
            "repro_run_logical_bytes_per_rank",
            "Run-total per-rank pre-codec payload bytes",
        ).set(totals["logical_bytes_per_rank"])
        reg.gauge(
            "repro_run_compression_factor",
            "Measured run compression factor, logical/wire",
        ).set(totals["compression_factor"])
        reg.gauge(
            "repro_run_comm_time_seconds",
            "Run-total simulated collective time (exact ledger total)",
        ).set(totals["comm_time_s"])
        reg.gauge(
            "repro_run_simulated_time_seconds",
            "Run-total simulated span across generations",
        ).set(totals["simulated_time_s"])
        reg.gauge(
            "repro_run_generations", "Communicator generations tracked"
        ).set(totals["generations"])
        reg.gauge(
            "repro_run_final_world_size", "World size of the last generation"
        ).set(totals["final_world_size"])
        trace = merged_trace(parts)
        trace_summary = validate_chrome_trace(trace)
        summary = {
            "steps": len(self.steps),
            "events": len(self.events),
            "totals": totals,
            "trace": trace_summary,
            "directory": str(self.directory) if self.directory else None,
        }
        if self.directory is not None:
            (self.directory / "metrics.prom").write_text(
                to_prometheus_text(reg)
            )
            with open(self.directory / "metrics.json", "w") as f:
                json.dump(to_json(reg), f, indent=2)
            with open(self.directory / "trace_parts.json", "w") as f:
                json.dump(parts_to_json(parts), f)
            with open(self.directory / "trace.json", "w") as f:
                json.dump(trace, f)
            with open(self.directory / "summary.json", "w") as f:
                json.dump(summary, f, indent=2)
        self._finalized = True
        return summary
