"""Prometheus-text and JSON exporters for a :class:`MetricsRegistry`.

Both exporters walk the registry through the same :func:`collect`
snapshot and format floats with ``repr`` (shortest round-trip form), so
parsing either export recovers bit-identical values — the acceptance
gate for the telemetry layer is *exact* agreement between the two, not
agreement within a tolerance.

:func:`parse_prometheus_text` inverts :func:`to_prometheus_text` back
into the :func:`to_json` structure, which is how the ``repro.cli
trace`` subcommand (and the tests) prove the two exports agree.
"""

from __future__ import annotations

import math
from typing import Dict, List

from .registry import Counter, Gauge, Histogram, MetricError, MetricsRegistry

__all__ = [
    "collect",
    "flatten_samples",
    "format_value",
    "parse_prometheus_text",
    "to_json",
    "to_prometheus_text",
]


def format_value(value: float) -> str:
    """Shortest string that round-trips to the same float (ints stay ints)."""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    as_float = float(text)
    if as_float.is_integer() and "." not in text and "e" not in text.lower():
        return int(text)
    return as_float


def collect(registry: MetricsRegistry) -> List[dict]:
    """Snapshot every family into plain dicts (shared by both exporters)."""
    out: List[dict] = []
    for metric in registry:
        entry: Dict[str, object] = {
            "name": metric.name,
            "type": metric.kind,
            "help": metric.help,
            "labelnames": list(metric.labelnames),
        }
        samples = []
        if isinstance(metric, Histogram):
            for key in metric.series_keys():
                value = metric.value(**metric._labels_dict(key))
                samples.append({
                    "labels": metric._labels_dict(key),
                    "buckets": [[format_value(b), n] for b, n in value.buckets],
                    "sum": value.sum,
                    "count": value.count,
                })
        else:
            for key in metric.series_keys():
                samples.append({
                    "labels": metric._labels_dict(key),
                    "value": metric.value(**metric._labels_dict(key)),
                })
        entry["samples"] = samples
        out.append(entry)
    return out


def to_json(registry: MetricsRegistry) -> dict:
    """JSON-serialisable export: ``{"metrics": [family, ...]}``."""
    return {"metrics": collect(registry)}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (0.0.4) for the registry."""
    lines: List[str] = []
    for family in collect(registry):
        name = family["name"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                for bound, count in sample["buckets"]:
                    le = _label_str(labels, f'le="{bound}"')
                    lines.append(f"{name}_bucket{le} {count}")
                lines.append(
                    f"{name}_sum{_label_str(labels)} {format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise MetricError(f"malformed label section {text!r}")
        j = eq + 2
        out: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                out.append(text[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def _split_sample_line(line: str):
    if line.count("}") and "{" in line:
        brace = line.index("{")
        close = line.rindex("}")
        name = line[:brace]
        labels = _parse_labels(line[brace + 1:close])
        value = line[close + 1:].strip()
    else:
        name, value = line.rsplit(None, 1)
        labels = {}
    return name, labels, value


def parse_prometheus_text(text: str) -> dict:
    """Parse :func:`to_prometheus_text` output back into the JSON shape."""
    families: Dict[str, dict] = {}
    order: List[str] = []
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            families[name] = {"name": name, "type": kind, "help": "",
                              "labelnames": None, "samples": []}
            order.append(name)
            continue
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(None, 3)
            if name in families:
                families[name]["help"] = help_text
            else:
                families[name] = {"name": name, "type": "", "help": help_text,
                                  "labelnames": None, "samples": []}
                order.append(name)
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _split_sample_line(line)
        base = name
        suffix = ""
        for candidate in ("_bucket", "_sum", "_count"):
            if name.endswith(candidate) and name[: -len(candidate)] in types \
                    and types[name[: -len(candidate)]] == "histogram":
                base, suffix = name[: -len(candidate)], candidate
                break
        family = families.get(base)
        if family is None:
            raise MetricError(f"sample {name!r} precedes its # TYPE line")
        if family["type"] == "histogram":
            plain = {k: v for k, v in labels.items() if k != "le"}
            sample = _find_histogram_sample(family["samples"], plain)
            if suffix == "_bucket":
                sample["buckets"].append([labels["le"], int(value)])
            elif suffix == "_sum":
                sample["sum"] = _parse_value(value)
            elif suffix == "_count":
                sample["count"] = int(value)
            else:
                raise MetricError(f"unexpected histogram series {name!r}")
            if family["labelnames"] is None and plain:
                family["labelnames"] = sorted(plain)
        else:
            family["samples"].append({"labels": labels,
                                      "value": _parse_value(value)})
            if family["labelnames"] is None and labels:
                family["labelnames"] = sorted(labels)
    for family in families.values():
        if family["labelnames"] is None:
            family["labelnames"] = []
    return {"metrics": [families[name] for name in order]}


def flatten_samples(export: dict) -> Dict[tuple, object]:
    """Canonical ``{(name, labels, field): value}`` view of an export.

    Label order and family ordering are erased, so two exports compare
    equal exactly when every individual sample value matches exactly —
    this is the comparison both the tests and ``repro.cli trace`` use
    to assert the Prometheus and JSON exports agree.
    """
    flat: Dict[tuple, object] = {}
    for family in export["metrics"]:
        name = family["name"]
        for sample in family["samples"]:
            labels = tuple(sorted((str(k), str(v))
                                  for k, v in sample["labels"].items()))
            if family["type"] == "histogram" or "buckets" in sample:
                for bound, count in sample["buckets"]:
                    flat[(name, labels, f"bucket:{bound}")] = int(count)
                flat[(name, labels, "sum")] = sample["sum"]
                flat[(name, labels, "count")] = int(sample["count"])
            else:
                flat[(name, labels, "value")] = sample["value"]
    return flat


def _find_histogram_sample(samples: List[dict], labels: Dict[str, str]) -> dict:
    for sample in samples:
        if sample["labels"] == labels:
            return sample
    sample = {"labels": labels, "buckets": [], "sum": 0.0, "count": 0}
    samples.append(sample)
    return sample
