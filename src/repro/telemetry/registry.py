"""Metric primitives and the registry that owns them.

The paper's claims are byte-and-seconds claims, so the repo needs one
place where every subsystem reports numbers instead of each module
printing its own ad-hoc summary.  This module provides that place: a
:class:`MetricsRegistry` that creates and owns :class:`Counter`,
:class:`Gauge`, and :class:`Histogram` instances, each of which may
carry a label set (Prometheus-style dimensions such as ``codec="delta"``).

Design rules (enforced by lint rule REPRO009):

* Library code never mutates metric internals directly — it calls
  ``inc`` / ``set`` / ``observe`` on instruments obtained from a
  registry.
* Instruments are created through the registry factories
  (:meth:`MetricsRegistry.counter` et al.), never instantiated
  free-standing, so one registry snapshot describes the whole run.

Values are plain Python floats/ints; the registry performs no I/O.
Export lives in :mod:`repro.telemetry.exporters`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds-flavoured, but generic
#: enough for byte counts once values exceed the last finite bound they
#: simply land in ``+Inf``).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class MetricError(ValueError):
    """Raised on invalid metric names, labels, or update arguments."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
        if label == "le":
            raise MetricError("label name 'le' is reserved for histograms")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


@dataclass(frozen=True)
class HistogramValue:
    """Read-only snapshot of one histogram series.

    ``buckets`` holds ``(upper_bound, cumulative_count)`` pairs ending
    with ``(inf, count)``; ``sum`` and ``count`` mirror the Prometheus
    ``_sum`` / ``_count`` exposition series.
    """

    buckets: Tuple[Tuple[float, int], ...]
    sum: float
    count: int


class _Metric:
    """Common machinery for labelled metric families."""

    kind = ""

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series_keys(self) -> List[Tuple[str, ...]]:
        """Label-value tuples of every series observed so far, sorted."""
        return sorted(self._series)


class Counter(_Metric):
    """Monotonically increasing sum (e.g. total wire bytes)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise MetricError(f"{self.name}: counter increment {amount} < 0")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        """Current total for the series selected by ``labels``."""
        return self._series.get(self._key(labels), 0)


class Gauge(_Metric):
    """Point-in-time value that may go up or down (e.g. loss scale)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Replace the series value."""
        self._series[self._key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        """Shift the series value by ``amount`` (may be negative)."""
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        """Current value for the series selected by ``labels``."""
        return self._series.get(self._key(labels), 0)


class Histogram(_Metric):
    """Cumulative-bucket distribution (e.g. per-codec encode seconds)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(f"{name}: bucket bounds must strictly increase")
        if any(math.isnan(b) for b in bounds):
            raise MetricError(f"{name}: NaN bucket bound")
        if bounds and math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bucket_bounds = bounds

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample into the series selected by ``labels``."""
        value = float(value)
        if math.isnan(value):
            raise MetricError(f"{self.name}: cannot observe NaN")
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * (len(self.bucket_bounds) + 1),
                     "sum": 0.0, "count": 0}
            self._series[key] = state
        index = len(self.bucket_bounds)
        for i, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                index = i
                break
        state["counts"][index] += 1
        state["sum"] += value
        state["count"] += 1

    def value(self, **labels: object) -> HistogramValue:
        """Cumulative-bucket snapshot for the series selected by ``labels``."""
        state = self._series.get(self._key(labels))
        if state is None:
            bounds = self.bucket_bounds + (math.inf,)
            return HistogramValue(tuple((b, 0) for b in bounds), 0.0, 0)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bucket_bounds + (math.inf,), state["counts"]):
            running += n
            cumulative.append((bound, running))
        return HistogramValue(tuple(cumulative), state["sum"], state["count"])


class MetricsRegistry:
    """Creates, deduplicates, and enumerates metric families.

    Factories are idempotent: asking twice for the same name returns the
    same instrument, so independent modules can share a family without
    coordinating.  Re-registering a name with a different kind or label
    set raises :class:`MetricError` — that is always a bug.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"{name}: already registered as {existing.kind}"
                )
            if existing.labelnames != _check_labelnames(labelnames):
                raise MetricError(
                    f"{name}: label mismatch {existing.labelnames} vs {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help=help, labelnames=labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        metric = self._get_or_create(Histogram, name, help, labelnames,
                                     buckets=buckets)
        return metric

    def get(self, name: str) -> _Metric:
        """Look up a family by name; raises :class:`MetricError` if absent."""
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"unknown metric {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[_Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)
