"""Unified telemetry: metrics registry, exporters, merged trace, session.

The observability layer over every subsystem of the reproduction: a
Prometheus-style :class:`MetricsRegistry` (counters, gauges, labelled
histograms), text/JSON exporters that agree exactly, a span API that
merges :class:`~repro.cluster.tracing.CostLedger` scopes, the
two-stream :class:`~repro.cluster.timeline.Timeline` schedule, and
resilience generations into one multi-pid chrome trace, and a
:class:`TelemetrySession` that streams per-step JSONL from training
runs.  See ``docs/OBSERVABILITY.md``.
"""

from .exporters import (
    collect,
    flatten_samples,
    format_value,
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricError,
    MetricsRegistry,
)
from .session import TelemetrySession, run_totals_from_parts
from .spans import (
    COMM_TID,
    COMPUTE_TID,
    LEDGER_TID,
    GenerationPart,
    TraceValidationError,
    merged_trace,
    parts_from_json,
    parts_to_json,
    validate_chrome_trace,
    write_trace,
)

__all__ = [
    "COMM_TID",
    "COMPUTE_TID",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GenerationPart",
    "Histogram",
    "HistogramValue",
    "LEDGER_TID",
    "MetricError",
    "MetricsRegistry",
    "TelemetrySession",
    "TraceValidationError",
    "collect",
    "flatten_samples",
    "format_value",
    "merged_trace",
    "parse_prometheus_text",
    "parts_from_json",
    "parts_to_json",
    "run_totals_from_parts",
    "to_json",
    "to_prometheus_text",
    "validate_chrome_trace",
    "write_trace",
]
