"""Rank-dependence taint analysis for the SPMD static verifier.

The simulator runs every rank in one process, so the only way ranks can
diverge is through *values* that depend on the rank: ``comm.rank``
attributes, rank-named parameters, per-rank shard sizes derived from
them, and :class:`~repro.cluster.chaos.FaultPlan` lookups (a fault plan
names the rank it kills, so anything computed from its events is
rank-dependent by construction).  This module computes, per function,
the set of local names that carry such values, plus a
``returns_tainted`` summary so taint flows through intra-module calls.

Deliberate non-sources
----------------------
``for rank in range(world)`` is the simulator's ubiquitous *benign*
idiom: the loop runs on every rank identically, fanning out over the
per-rank array list.  A plain local assignment or loop target therefore
never seeds taint by name alone — only function **parameters** and
**attribute accesses** with rank-like names do, because those are how a
genuinely rank-specific value enters a scope.  Names bound by
comprehensions shadow outer taint for the same reason.

Rank-like names
---------------
An identifier is rank-like when it is exactly ``rank`` or ends in
``_rank`` — except the size-per-rank family (``*_per_rank``) and
topology maps (``*_of_rank``), which are uniform across ranks.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, FunctionScope, scope_statements

__all__ = ["ModuleTaint", "is_rank_like", "is_plan_events_access"]

#: Builtins whose result depends on their (possibly tainted) arguments.
_PROPAGATING_BUILTINS = frozenset({
    "abs", "bool", "dict", "divmod", "enumerate", "filter", "float",
    "frozenset", "int", "iter", "len", "list", "map", "max", "min",
    "next", "range", "repr", "reversed", "round", "set", "sorted",
    "str", "sum", "tuple", "zip",
})

#: FaultPlan accessors whose items identify specific ranks.
_PLAN_EVENT_ATTRS = frozenset({
    "events", "transient_events", "permanent_events",
})

_MAX_LOCAL_PASSES = 20
_MAX_GLOBAL_PASSES = 10


def is_rank_like(ident: str) -> bool:
    """Whether ``ident`` names a rank-dependent quantity.

    ``wire_bytes_per_rank`` (a uniform size) and ``group_of_rank`` (a
    uniform topology map) are explicitly *not* rank-like.
    """
    if ident == "rank":
        return True
    return (
        ident.endswith("_rank")
        and not ident.endswith("_per_rank")
        and not ident.endswith("_of_rank")
    )


def _base_ident(node: ast.expr) -> str | None:
    """The identifier immediately to the left of an attribute access."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_plan_events_access(node: ast.Attribute) -> bool:
    """Whether ``node`` reads a FaultPlan's event list (``*plan.events``)."""
    if node.attr not in _PLAN_EVENT_ATTRS:
        return False
    base = _base_ident(node.value)
    return base is not None and base.endswith("plan")


def _target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment/loop target (containers skipped)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


class ModuleTaint:
    """Taint facts for one module, computed once at construction.

    ``graph.scopes`` afterwards carry the per-scope ``tainted`` name
    sets and ``returns_tainted`` summaries; :meth:`is_tainted` answers
    queries for arbitrary expressions inside a given scope.
    """

    def __init__(self, tree: ast.Module):
        self.graph = CallGraph(tree)
        self._run()

    # -- public query -------------------------------------------------

    def is_tainted(self, expr: ast.expr, scope: FunctionScope) -> bool:
        """Whether ``expr``, evaluated in ``scope``, is rank-dependent."""
        return self._expr(expr, scope, frozenset())

    # -- fixpoint driver ----------------------------------------------

    def _run(self) -> None:
        for scope in self.graph.scopes:
            for param in scope.all_param_names():
                if is_rank_like(param):
                    scope.tainted.add(param)
        for _ in range(_MAX_GLOBAL_PASSES):
            changed = False
            for scope in self.graph.scopes:
                changed |= self._propagate_local(scope)
                changed |= self._propagate_calls(scope)
            if not changed:
                break

    def _propagate_local(self, scope: FunctionScope) -> bool:
        """Run the intra-scope dataflow to a (bounded) fixpoint."""
        changed_any = False
        for _ in range(_MAX_LOCAL_PASSES):
            changed = False
            for stmt in scope_statements(scope):
                changed |= self._transfer(stmt, scope)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def _transfer(self, stmt: ast.stmt, scope: FunctionScope) -> bool:
        changed = False

        def taint_names(target: ast.expr) -> None:
            nonlocal changed
            for name in _target_names(target):
                if name not in scope.tainted:
                    scope.tainted.add(name)
                    changed = True

        if isinstance(stmt, ast.Assign):
            if self._expr(stmt.value, scope, frozenset()):
                for target in stmt.targets:
                    taint_names(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and self._expr(
                stmt.value, scope, frozenset()
            ):
                taint_names(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            if self._expr(stmt.value, scope, frozenset()):
                taint_names(stmt.target)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self._expr(stmt.iter, scope, frozenset()):
                taint_names(stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None and self._expr(
                    item.context_expr, scope, frozenset()
                ):
                    taint_names(item.optional_vars)
        elif isinstance(stmt, ast.Return):
            if (
                not scope.returns_tainted
                and stmt.value is not None
                and self._expr(stmt.value, scope, frozenset())
            ):
                scope.returns_tainted = True
                changed = True

        # Walrus assignments can hide inside any statement's expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                for node in ast.walk(child):
                    if isinstance(node, ast.NamedExpr) and self._expr(
                        node.value, scope, frozenset()
                    ):
                        taint_names(node.target)
        return changed

    def _propagate_calls(self, scope: FunctionScope) -> bool:
        """Flow taint from call-site arguments into resolved callees."""
        changed = False
        for stmt in scope_statements(scope):
            for child in ast.iter_child_nodes(stmt):
                if not isinstance(child, ast.expr):
                    continue
                for node in ast.walk(child):
                    if isinstance(node, ast.Call):
                        changed |= self._flow_into(node, scope)
        return changed

    def _flow_into(self, call: ast.Call, caller: FunctionScope) -> bool:
        callee = self.graph.resolve(call, caller)
        if callee is None or callee.is_module:
            return False
        params = callee.param_names()
        offset = 1 if self.graph.method_skips_self(call, callee) else 0
        changed = False
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            idx = i + offset
            if idx < len(params) and self._expr(arg, caller, frozenset()):
                if params[idx] not in callee.tainted:
                    callee.tainted.add(params[idx])
                    changed = True
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if kw.arg in callee.all_param_names() and self._expr(
                kw.value, caller, frozenset()
            ):
                if kw.arg not in callee.tainted:
                    callee.tainted.add(kw.arg)
                    changed = True
        return changed

    # -- expression taint ---------------------------------------------

    def _expr(
        self,
        node: ast.expr,
        scope: FunctionScope,
        shadow: frozenset[str],
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id not in shadow and node.id in scope.tainted
        if isinstance(node, ast.Attribute):
            if is_rank_like(node.attr) or is_plan_events_access(node):
                return True
            return self._expr(node.value, scope, shadow)
        if isinstance(node, ast.Call):
            return self._call(node, scope, shadow)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._comprehension(node, scope, shadow)
        if isinstance(node, ast.Lambda):
            return False
        if isinstance(node, ast.Constant):
            return False
        return any(
            self._expr(child, scope, shadow)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def _call(
        self, node: ast.Call, scope: FunctionScope, shadow: frozenset[str]
    ) -> bool:
        if self._expr(node.func, scope, shadow):
            return True
        callee = self.graph.resolve(node, scope)
        if callee is not None and callee.returns_tainted:
            return True
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _PROPAGATING_BUILTINS
        ):
            return any(
                self._expr(arg, scope, shadow) for arg in node.args
            ) or any(
                self._expr(kw.value, scope, shadow) for kw in node.keywords
            )
        return False

    def _comprehension(
        self, node: ast.expr, scope: FunctionScope, shadow: frozenset[str]
    ) -> bool:
        bound: set[str] = set()
        generators = getattr(node, "generators", [])
        for gen in generators:
            if self._expr(gen.iter, scope, shadow | frozenset(bound)):
                return True
            bound.update(_target_names(gen.target))
        inner = shadow | frozenset(bound)
        for gen in generators:
            if any(self._expr(cond, scope, inner) for cond in gen.ifs):
                return True
        parts = []
        if isinstance(node, ast.DictComp):
            parts = [node.key, node.value]
        else:
            parts = [node.elt]  # type: ignore[attr-defined]
        return any(self._expr(part, scope, inner) for part in parts)
