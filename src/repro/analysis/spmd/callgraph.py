"""Per-module call-graph construction for the SPMD static verifier.

The interprocedural taint pass of :mod:`repro.analysis.spmd.taint` needs
to know, for every call site, *which* function in the same module is
being invoked so taint can flow into the callee's parameters and back
out of its return value.  This module builds that map:

* every ``def`` in the module becomes a :class:`FunctionScope` with a
  dotted qualname (``Class.method``, ``outer.inner``);
* the module body itself is a synthetic scope named
  :data:`MODULE_SCOPE`, so top-level statements participate;
* :meth:`CallGraph.resolve` handles the two shapes that matter in this
  codebase — plain ``helper(...)`` calls to module-level functions and
  ``self.method(...)`` / ``cls.method(...)`` calls to methods of the
  caller's own class.  Anything else (imported names, attribute chains
  on other objects) resolves to ``None`` and the taint pass treats it
  conservatively as an opaque call.

The graph is deliberately module-local: the lint engine hands rules one
file at a time, and the repo's collective orchestration is organised so
rank-dependent values rarely cross module boundaries un-renamed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = ["CallGraph", "FunctionScope", "MODULE_SCOPE", "scope_statements"]

#: Qualname of the synthetic scope for the module body.
MODULE_SCOPE = "<module>"

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionScope:
    """One function (or the module body) as a unit of analysis."""

    node: ast.AST
    qualname: str
    class_name: str | None = None
    #: Names of local variables the taint pass has marked rank-dependent.
    tainted: set[str] = field(default_factory=set)
    #: Whether any ``return`` expression of this scope is tainted.
    returns_tainted: bool = False

    @property
    def name(self) -> str:
        """The unqualified function name (``qualname``'s last segment)."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_module(self) -> bool:
        """Whether this is the synthetic module-body scope."""
        return self.qualname == MODULE_SCOPE

    def param_names(self) -> list[str]:
        """Positional-ish parameter names, in declaration order."""
        if not isinstance(self.node, _SCOPE_NODES):
            return []
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args)]

    def all_param_names(self) -> list[str]:
        """Every parameter name, including ``*args``/keyword-only/``**kw``."""
        if not isinstance(self.node, _SCOPE_NODES):
            return []
        a = self.node.args
        names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
        if a.vararg is not None:
            names.append(a.vararg.arg)
        if a.kwarg is not None:
            names.append(a.kwarg.arg)
        return names


def scope_statements(scope: FunctionScope) -> Iterator[ast.stmt]:
    """Statements of one scope, in source order.

    Descends into control-flow bodies (``if``/``for``/``try``/``with``)
    but **not** into nested function or class definitions — those are
    their own scopes.
    """
    body = getattr(scope.node, "body", [])
    yield from _iter_statements(body)


def _iter_statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    for stmt in body:
        if isinstance(stmt, (*_SCOPE_NODES, ast.ClassDef)):
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from _iter_statements(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _iter_statements(handler.body)


class CallGraph:
    """Module-local function table plus intra-module call resolution."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.scopes: list[FunctionScope] = [
            FunctionScope(node=tree, qualname=MODULE_SCOPE)
        ]
        self.by_qualname: dict[str, FunctionScope] = {
            MODULE_SCOPE: self.scopes[0]
        }
        #: class name -> method names defined directly on the class.
        self.class_methods: dict[str, set[str]] = {}
        self._collect(tree, class_name=None, prefix="")

    def _collect(
        self, node: ast.AST, class_name: str | None, prefix: str
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                qual = f"{prefix}{child.name}"
                scope = FunctionScope(
                    node=child, qualname=qual, class_name=class_name
                )
                self.scopes.append(scope)
                # First definition wins on (rare) redefinitions.
                self.by_qualname.setdefault(qual, scope)
                if class_name is not None:
                    self.class_methods.setdefault(class_name, set()).add(
                        child.name
                    )
                self._collect(child, class_name=None, prefix=qual + ".")
            elif isinstance(child, ast.ClassDef):
                self.class_methods.setdefault(child.name, set())
                self._collect(
                    child, class_name=child.name, prefix=f"{child.name}."
                )
            else:
                self._collect(child, class_name=class_name, prefix=prefix)

    def scope_for(self, node: ast.AST) -> FunctionScope | None:
        """The scope whose ``def`` is exactly ``node`` (or the module)."""
        for scope in self.scopes:
            if scope.node is node:
                return scope
        return None

    def resolve(
        self, call: ast.Call, caller: FunctionScope
    ) -> FunctionScope | None:
        """The intra-module callee of ``call``, or None when opaque.

        Resolves ``helper(...)`` to a module-level function and
        ``self.method(...)`` / ``cls.method(...)`` to a method of the
        caller's class.  Returns a tuple-free single target — Python's
        single-dispatch call shapes are all this repo uses.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self.by_qualname.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            return self.by_qualname.get(f"{caller.class_name}.{func.attr}")
        return None

    def method_skips_self(
        self, call: ast.Call, callee: FunctionScope
    ) -> bool:
        """Whether positional args map past an implicit ``self``/``cls``."""
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and callee.class_name is not None
            and bool(callee.param_names())
            and callee.param_names()[0] in ("self", "cls")
        )
