"""Static SPMD collective-matching verification.

The static half of the SPMD verifier (see ``docs/SPMD_VERIFY.md``): a
module-local call graph (:mod:`.callgraph`) and an interprocedural
rank-dependence taint pass (:mod:`.taint`).  The lint rules REPRO010–012
in :mod:`repro.analysis.lint.spmd_rules` are built on these; the dynamic
half lives in :mod:`repro.cluster.lockstep`.
"""

from .callgraph import MODULE_SCOPE, CallGraph, FunctionScope, scope_statements
from .taint import ModuleTaint, is_plan_events_access, is_rank_like

__all__ = [
    "CallGraph",
    "FunctionScope",
    "MODULE_SCOPE",
    "ModuleTaint",
    "is_plan_events_access",
    "is_rank_like",
    "scope_statements",
]
