"""Mesh-discipline rule, ``REPRO013``.

With the :mod:`repro.cluster.mesh` abstraction in place, code that
partitions or enumerates ranks by hand — ``range(world_size)`` and
friends — is a liability: it bakes in the flat-world assumption that a
hybrid ``(pipe, tensor, data)`` run breaks, and it duplicates the
axis→rank arithmetic :meth:`~repro.cluster.mesh.DeviceMesh.groups`
already centralizes (row-major, last axis fastest — easy to get wrong
by hand).  ``REPRO013`` flags every ``range(...)`` whose bound is
derived from a ``world_size`` so new code reaches for the mesh instead.

Escape hatch
------------
Plenty of rank loops are *legitimately* flat: SPMD driver loops that
charge every simulated rank, per-rank device construction, supervisor
bookkeeping.  Annotate those with ``# mesh-ok: <reason>`` on the
flagged line (or the enclosing ``def`` line) — like ``# spmd-ok``, the
marker documents *why* the flat enumeration is correct.  The bare
``# noqa: REPRO013`` also works but records nothing.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from pathlib import Path

from .engine import Finding, ModuleSource, Rule, register

__all__ = ["MeshRankLoopRule", "MESH_OK_MARKER"]

#: The documented suppression marker for deliberate flat rank loops.
MESH_OK_MARKER = "mesh-ok"

_MESH_OK_RE = re.compile(r"#\s*mesh-ok\b")


def _mentions_world_size(node: ast.expr) -> bool:
    """Whether the expression derives from a ``world_size`` value."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "world_size":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "world_size":
            return True
    return False


def _def_lines(tree: ast.Module) -> dict[int, tuple[int, int]]:
    """def lineno -> (body start, body end) for every function."""
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans[node.lineno] = (node.lineno, node.end_lineno or node.lineno)
    return spans


@register
class MeshRankLoopRule(Rule):
    """REPRO013: rank partitioning belongs to the device mesh."""

    rule_id = "REPRO013"
    title = "hand-rolled rank enumeration outside the device mesh"
    rationale = (
        "`range(world_size)` hard-codes the flat-world rank layout; on a "
        "hybrid (pipe, tensor, data) mesh the set of peer ranks depends "
        "on the axis, and the row-major axis->rank arithmetic lives in "
        "DeviceMesh.groups()/coords(). Enumerate subgroup members via "
        "the mesh, or annotate a deliberately flat loop (SPMD driver, "
        "device construction, supervisor bookkeeping) with "
        "`# mesh-ok: <reason>`."
    )

    def applies_to(self, path: Path) -> bool:
        # The mesh module IS the sanctioned home of rank arithmetic.
        return not (path.name == "mesh.py" and "cluster" in path.parts)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        marked = frozenset(
            lineno
            for lineno, line in enumerate(module.text.splitlines(), start=1)
            if _MESH_OK_RE.search(line)
        )
        defs = _def_lines(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "range"
                and any(_mentions_world_size(a) for a in node.args)
            ):
                continue
            span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
            if marked.intersection(span):
                continue
            enclosing = [
                d for d, (lo, hi) in defs.items() if lo <= node.lineno <= hi
            ]
            if any(d in marked for d in enclosing):
                continue
            yield self.finding(
                module,
                node,
                "`range(world_size)`-style rank enumeration outside "
                "repro.cluster.mesh: hybrid meshes break the flat-world "
                "assumption — partition ranks with "
                "`mesh.groups(axis)` / `mesh.coords(rank)`, or mark a "
                "deliberate flat loop `# mesh-ok: <reason>`",
            )
