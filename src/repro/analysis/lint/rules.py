"""The core rule set, ``REPRO001``–``REPRO009``.

The SPMD collective-matching rules ``REPRO010``–``REPRO012`` live in
:mod:`.spmd_rules` (they need the taint layer of
:mod:`repro.analysis.spmd`).  Definitions here are kept sorted by rule
id — registration order is the registry's iteration order, and the
ID-ordering test in ``tests/analysis/test_lint_engine.py`` enforces it.

Each rule guards an invariant the paper's experiments depend on; the
rationale strings say which section breaks when the rule is violated.
Rules are registered into :data:`~repro.analysis.lint.engine.RULE_REGISTRY`
on import and run by default from ``python -m repro.cli lint``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from .engine import Finding, ModuleSource, Rule, register

__all__ = [
    "BareGlobalRngRule",
    "CollectiveOutsideScopeRule",
    "DroppedWorkHandleRule",
    "DtypeDefaultRule",
    "ExportsDriftRule",
    "Float64IntoCommRule",
    "PrintInLibraryRule",
    "TelemetryBypassRule",
    "UncodedCollectivePayloadRule",
]

_NUMPY_ALIASES = {"np", "numpy"}

#: Collective methods of the simulated communicator (and its wrappers).
_COLLECTIVES = {"allreduce", "allgather", "broadcast", "reduce_scatter"}

#: Their non-blocking variants (return a WorkHandle / pending object),
#: plus the async entry points of the core layer built on them.
_ASYNC_COLLECTIVES = {
    "iallreduce",
    "iallgather",
    "ibroadcast",
    "ireduce_scatter",
    "ibucketed_allreduce",
    "iunique_exchange",
    "iexchange",
    "iencoded_allgather",
}


def _attr_chain(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_np_attr(node: ast.AST, *names: str) -> bool:
    """True when ``node`` is ``np.<name>``/``numpy.<name>`` for any name."""
    chain = _attr_chain(node)
    if chain is None:
        return False
    root, _, rest = chain.partition(".")
    return root in _NUMPY_ALIASES and rest in names


@register
class BareGlobalRngRule(Rule):
    """REPRO001: randomness must flow through explicit generators."""

    rule_id = "REPRO001"
    title = "bare global RNG"
    rationale = (
        "The seeding experiments (paper §III-B) assign every rank a seed "
        "group; np.random.* calls on the hidden global state bypass that "
        "assignment and silently decouple ranks. Use an explicit "
        "np.random.Generator (np.random.default_rng(seed))."
    )

    #: Explicitly-seeded constructors that are the *fix*, not the bug.
    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in _NUMPY_ALIASES
                    and parts[1] == "random"
                    and parts[2] not in self.ALLOWED
                ):
                    yield self.finding(
                        module,
                        node,
                        f"global-state RNG `{chain}`: pass an explicit "
                        "np.random.Generator (np.random.default_rng(seed)) "
                        "so the rank's seed group controls the stream",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name != "*" and alias.name not in self.ALLOWED:
                            yield self.finding(
                                module,
                                node,
                                f"`from numpy.random import {alias.name}` "
                                "imports the global-state API; import an "
                                "explicit Generator constructor instead",
                            )


@register
class Float64IntoCommRule(Rule):
    """REPRO002: no float64 payloads at communicator/codec call sites."""

    rule_id = "REPRO002"
    title = "float64 into a communication path"
    rationale = (
        "Wire volumes in Tables III-V assume FP32 payloads (halved to "
        "FP16 by §III-C compression). A float64 array entering a "
        "collective doubles every byte count silently. Cast to "
        "repro.nn.DTYPE before the comm boundary."
    )

    _CALLEES = _COLLECTIVES | _ASYNC_COLLECTIVES | {"encode"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in self._CALLEES:
                continue
            consumed: set[int] = set()
            for sub in self._iter_arg_nodes(node):
                if id(sub) in consumed:
                    continue
                hit = self._float64_use(sub)
                if hit is not None:
                    if isinstance(sub, ast.Call):
                        # Don't double-report the np.float64 inside an
                        # already-flagged astype(...) call.
                        consumed.update(id(n) for n in ast.walk(sub))
                    yield self.finding(
                        module,
                        sub,
                        f"{hit} flows into `.{node.func.attr}(...)`: comm "
                        "payloads are FP32/FP16 — cast with "
                        ".astype(repro.nn.DTYPE) before the boundary",
                    )

    @staticmethod
    def _iter_arg_nodes(call: ast.Call) -> Iterator[ast.AST]:
        for arg in call.args:
            yield from ast.walk(arg)
        for kw in call.keywords:
            yield from ast.walk(kw.value)

    @staticmethod
    def _float64_use(node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute) and _is_np_attr(node, "float64"):
            return "np.float64"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and any(
                _is_np_attr(a, "float64")
                for a in list(node.args)
                + [kw.value for kw in node.keywords]
            )
        ):
            return "astype(np.float64)"
        return None


@register
class CollectiveOutsideScopeRule(Rule):
    """REPRO003: orchestration-level comm must run inside a ledger scope."""

    rule_id = "REPRO003"
    title = "collective outside a ledger scope"
    rationale = (
        "The per-phase cost attribution behind the paper's analysis "
        "(embedding-sync vs dense-allreduce, Tables III-V) only works if "
        "orchestration code issues communication inside "
        "`with ledger.scope(...)`. The comm substrate (cluster/, core/) "
        "inherits the caller's scope and is exempt."
    )

    _CALLEES = _COLLECTIVES | _ASYNC_COLLECTIVES | {"barrier", "sync_replicas"}

    def applies_to(self, path: Path) -> bool:
        parts = set(path.parts)
        return not parts & {"cluster", "core", "analysis"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        yield from self._walk(module, module.tree, in_scope=False)

    def _walk(
        self, module: ModuleSource, node: ast.AST, in_scope: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered = in_scope or any(
                isinstance(item.context_expr, ast.Call)
                and isinstance(item.context_expr.func, ast.Attribute)
                and item.context_expr.func.attr == "scope"
                for item in node.items
            )
            for child in ast.iter_child_nodes(node):
                yield from self._walk(module, child, entered)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._CALLEES
            and not in_scope
        ):
            yield self.finding(
                module,
                node,
                f"`.{node.func.attr}(...)` issued outside any "
                "`with ledger.scope(...)` block: its cost lands in the "
                "unattributed bucket",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, in_scope)


@register
class DtypeDefaultRule(Rule):
    """REPRO004: nn/ dtype defaults name the canonical constants."""

    rule_id = "REPRO004"
    title = "raw or mutable default in nn/ signatures"
    rationale = (
        "The NN stack standardizes on repro.nn.dtypes.DTYPE (FP32, the "
        "paper's hardware) with ACC_DTYPE for exactness paths; a literal "
        "np.float64 default re-pins one signature and drifts the stack. "
        "Mutable defaults are shared across calls and corrupt replicas."
    )

    _FLOAT_NAMES = ("float16", "float32", "float64")

    def applies_to(self, path: Path) -> bool:
        return "nn" in path.parts

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_args(
                module,
                node.args.args[len(node.args.args) - len(node.args.defaults):],
                node.args.defaults,
            )
            yield from self._check_args(
                module,
                [
                    a
                    for a, d in zip(node.args.kwonlyargs, node.args.kw_defaults)
                    if d is not None
                ],
                [d for d in node.args.kw_defaults if d is not None],
            )

    def _check_args(
        self, module: ModuleSource, args: list[ast.arg], defaults: list[ast.expr]
    ) -> Iterator[Finding]:
        for arg, default in zip(args, defaults):
            if arg.arg == "dtype" and _is_np_attr(default, *self._FLOAT_NAMES):
                yield self.finding(
                    module,
                    default,
                    f"dtype default `{_attr_chain(default)}`: use "
                    "repro.nn.dtypes.DTYPE (or ACC_DTYPE for accumulation "
                    "paths) so the stack re-pins in one place",
                )
            elif isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set"}
            ):
                yield self.finding(
                    module,
                    default,
                    f"mutable default for `{arg.arg}`: one instance is "
                    "shared across every call (and every replica) — "
                    "default to None and construct inside",
                )


@register
class ExportsDriftRule(Rule):
    """REPRO005: every module declares __all__ and it names real bindings."""

    rule_id = "REPRO005"
    title = "missing or drifting __all__"
    rationale = (
        "__all__ is the published API contract the docs and the "
        "re-export chain (repro.core, repro.cluster) rely on; a missing "
        "declaration hides drift, and a stale entry breaks "
        "`from module import *` consumers at import time."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        all_node = None
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__all__"
            ):
                all_node = stmt
                break
        if all_node is None:
            yield Finding(
                path=str(module.path),
                line=1,
                col=0,
                rule_id=self.rule_id,
                message="module does not declare __all__ — the public API "
                "is whatever happens not to start with an underscore",
            )
            return
        if not isinstance(all_node.value, (ast.List, ast.Tuple)):
            return  # dynamically built; nothing to verify statically
        names = []
        for elt in all_node.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append((elt, elt.value))
        bound = self._bound_names(module.tree)
        if bound is None:
            return  # star-import present; bindings unknowable statically
        for node, name in names:
            if name not in bound:
                yield self.finding(
                    module,
                    node,
                    f"__all__ exports {name!r} but the module never binds "
                    "it — stale entry or missing import",
                )

    @staticmethod
    def _bound_names(tree: ast.Module) -> set[str] | None:
        bound: set[str] = {"__version__", "__doc__"}
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            bound.add(node.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.partition(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        return None
                    bound.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Common guarded-import shapes; recurse one level.
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                bound.add(
                                    alias.asname
                                    or alias.name.partition(".")[0]
                                )
                    elif isinstance(
                        sub,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            for node in ast.walk(target):
                                if isinstance(node, ast.Name):
                                    bound.add(node.id)
        return bound


@register
class PrintInLibraryRule(Rule):
    """REPRO006: library code never prints."""

    rule_id = "REPRO006"
    title = "print() in library code"
    rationale = (
        "Library output must flow through the CostLedger / returned "
        "report strings so experiment drivers stay machine-readable; a "
        "stray print interleaves with the CLI's table output and breaks "
        "result parsing. Only the CLI layer prints."
    )

    #: Module files allowed to print (the user-facing shell).
    ALLOWED_FILES = frozenset({"cli.py"})

    def applies_to(self, path: Path) -> bool:
        return path.name not in self.ALLOWED_FILES

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code: record to the CostLedger, "
                    "return a string, or raise — the CLI owns stdout",
                )


@register
class DroppedWorkHandleRule(Rule):
    """REPRO007: async collective work handles must be awaited."""

    rule_id = "REPRO007"
    title = "dropped async work handle"
    rationale = (
        "A WorkHandle from an `i*` collective that is never wait()ed "
        "leaks its scratch allocation for the rest of the run and its "
        "completion never reaches the timeline — overlap measurements "
        "and peak-memory numbers both go quietly wrong. The runtime "
        "counterpart is Sanitizer.finish()'s DroppedHandleError."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for owner, body in self._scopes(module.tree):
            yield from self._check_scope(module, owner, body)

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
        """Module body plus every function body, each its own scope."""
        yield tree, tree.body
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, node.body

    @classmethod
    def _statements(cls, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """Statements of one scope, not descending into nested scopes."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield stmt
            for attr in ("body", "orelse", "finalbody"):
                yield from cls._statements(getattr(stmt, attr, []))
            for handler in getattr(stmt, "handlers", []):
                yield from cls._statements(handler.body)

    @staticmethod
    def _issue_op(node: ast.AST) -> str | None:
        """The `i*` callee name when ``node`` is an async-issue call."""
        if not isinstance(node, ast.Call):
            return None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            return None
        return name if name in _ASYNC_COLLECTIVES else None

    @staticmethod
    def _name_loaded(owner: ast.AST, name: str) -> bool:
        """Any Load of ``name`` in the scope (closures included)."""
        return any(
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
            for node in ast.walk(owner)
        )

    def _check_scope(
        self, module: ModuleSource, owner: ast.AST, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in self._statements(body):
            if isinstance(stmt, ast.Expr):
                op = self._issue_op(stmt.value)
                if op is not None:
                    yield self.finding(
                        module,
                        stmt,
                        f"`{op}(...)` handle discarded at issue: nothing "
                        "can ever wait() this collective — keep the "
                        "handle, or use the blocking variant",
                    )
                continue
            target = None
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                target = stmt.targets[0].id
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                target = stmt.target.id
            if target is None or stmt.value is None:
                continue
            op = self._issue_op(stmt.value)
            if op is None:
                continue
            # Conservative: any later Load of the name counts as a use
            # (passing the handle on is assumed to lead to a wait).
            if not self._name_loaded(owner, target):
                yield self.finding(
                    module,
                    stmt,
                    f"handle `{target}` from `{op}(...)` is never used in "
                    "its enclosing scope: the collective is issued but "
                    "nothing wait()s it",
                )


@register
class UncodedCollectivePayloadRule(Rule):
    """REPRO008: orchestration-level payloads route through a WireCodec."""

    rule_id = "REPRO008"
    title = "collective payload bypasses the wire-codec stack"
    rationale = (
        "The compression ablations (paper §III-C) only measure what "
        "crosses the wire if every orchestration-level payload passes "
        "through repro.core.wire — a raw comm.allgather(grads) both "
        "skips compression and books logical bytes as wire bytes, "
        "corrupting the ledger's compression_factor. Route payloads via "
        "a codec/wire policy (or declare payload_bytes for pre-encoded "
        "frames). The comm substrate and the codec stack itself "
        "(cluster/, core/, analysis/) move raw bytes by design."
    )

    #: Payload-carrying entry points.  Exempt: ``iencoded_allgather``
    #: *is* the codec path, and barrier-like calls carry no payload.
    _CALLEES = (_COLLECTIVES | _ASYNC_COLLECTIVES) - {"iencoded_allgather"}

    #: Identifier fragments that signal codec-aware data flow.
    _CODED_TOKENS = ("codec", "wire", "encoded", "frame")

    def applies_to(self, path: Path) -> bool:
        parts = set(path.parts)
        return not parts & {"cluster", "core", "analysis"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = self._callee(node)
            if callee is None:
                continue
            if self._codec_evidence(node):
                continue
            yield self.finding(
                module,
                node,
                f"`{callee}(...)` payload bypasses the wire-codec stack: "
                "pass codec=/wire=, encode the arrays first (declaring "
                "payload_bytes=), or use iencoded_allgather — raw "
                "payloads dodge §III-C compression and mis-book the "
                "ledger's logical/wire byte split",
            )

    @classmethod
    def _callee(cls, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            return None
        return name if name in cls._CALLEES else None

    @classmethod
    def _codec_evidence(cls, call: ast.Call) -> bool:
        """Any sign the payload went through (or carries) a codec.

        Accepted evidence: a ``codec=``/``wire=`` keyword (the exchange
        entry points), ``payload_bytes=`` (caller pre-encoded and is
        declaring logical bytes), an ``.encode(...)`` call inside an
        argument, or an identifier mentioning codec/wire/encoded/frame
        anywhere in the arguments.
        """
        for kw in call.keywords:
            if kw.arg in {"codec", "wire", "payload_bytes"}:
                return True
        for arg in call.args:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "encode"
                ):
                    return True
                if isinstance(sub, ast.Name):
                    ident = sub.id.lower()
                elif isinstance(sub, ast.Attribute):
                    ident = sub.attr.lower()
                else:
                    continue
                if any(tok in ident for tok in cls._CODED_TOKENS):
                    return True
        return False


@register
class TelemetryBypassRule(Rule):
    """REPRO009: library code reports through the metrics registry."""

    rule_id = "REPRO009"
    title = "reporting bypasses the telemetry registry"
    rationale = (
        "The unified telemetry layer only gives one consistent answer "
        "(Prometheus text == JSON == ledger totals, exactly) if every "
        "number flows through a MetricsRegistry. Raw sys.stdout/stderr "
        "writes sidestep the structured JSONL stream, poking a metric's "
        "._series internals dodges label validation and the exporters' "
        "canonical ordering, and a Counter/Gauge/Histogram constructed "
        "outside a registry is invisible to every exporter. Ask the "
        "registry (registry.counter(...).inc()) instead."
    )

    #: Metric classes that must be minted by a MetricsRegistry.
    _METRIC_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})

    def applies_to(self, path: Path) -> bool:
        # The telemetry package owns the internals; the CLI owns stdout.
        return "telemetry" not in path.parts and path.name != "cli.py"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        metric_names = self._telemetry_imports(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                chain = (
                    _attr_chain(node.func)
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if chain in ("sys.stdout.write", "sys.stderr.write"):
                    yield self.finding(
                        module,
                        node,
                        f"`{chain}(...)` in library code: emit through a "
                        "TelemetrySession (record_step/record_event) or "
                        "return the text — raw stream writes bypass the "
                        "structured JSONL telemetry the exporters audit",
                    )
                elif self._bare_metric_ctor(node, metric_names, chain):
                    name = chain or node.func.id  # type: ignore[union-attr]
                    yield self.finding(
                        module,
                        node,
                        f"`{name}(...)` constructed outside a registry: "
                        "metrics minted by hand never reach the exporters "
                        "— use registry.counter/gauge/histogram so the "
                        "family is collected and name-collision checked",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_series"
            ):
                yield self.finding(
                    module,
                    node,
                    "`._series` touched outside repro.telemetry: the "
                    "per-label-set state is private — read via .value() "
                    "or export via to_json/to_prometheus_text",
                )

    @classmethod
    def _telemetry_imports(cls, tree: ast.Module) -> set[str]:
        """Local names bound to telemetry metric classes by imports."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            module = node.module or ""
            if "telemetry" not in module:
                continue
            for alias in node.names:
                if alias.name in cls._METRIC_CLASSES:
                    names.add(alias.asname or alias.name)
        return names

    @classmethod
    def _bare_metric_ctor(
        cls, node: ast.Call, metric_names: set[str], chain: str | None
    ) -> bool:
        if isinstance(node.func, ast.Name):
            return node.func.id in metric_names
        if chain is not None:
            root, _, last = chain.rpartition(".")
            return last in cls._METRIC_CLASSES and "telemetry" in root
        return False
