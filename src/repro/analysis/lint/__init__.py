"""AST lint framework with the project's REPRO rule set.

Importing this package registers the default rules; see
:mod:`repro.analysis.lint.rules` for what each rule guards and
:mod:`repro.analysis.lint.engine` for how to add one.
"""

from .engine import (
    PARSE_ERROR_ID,
    Finding,
    LintEngine,
    ModuleSource,
    Rule,
    default_rules,
    format_findings,
    iter_rule_classes,
    register,
)
from . import rules  # noqa: F401  (import registers the rule set)
from . import spmd_rules  # noqa: F401  (registers REPRO010-012)
from . import mesh_rules  # noqa: F401  (registers REPRO013)

__all__ = [
    "PARSE_ERROR_ID",
    "Finding",
    "LintEngine",
    "ModuleSource",
    "Rule",
    "default_rules",
    "format_findings",
    "iter_rule_classes",
    "register",
    "mesh_rules",
    "rules",
    "spmd_rules",
]
