"""SPMD collective-matching rules, ``REPRO010``–``REPRO012``.

These rules ride on the rank-dependence taint analysis of
:mod:`repro.analysis.spmd` to catch the silent-failure class the
simulator cannot exhibit but a real cluster dies on: ranks issuing
*different* collective sequences.  The three rules mirror the three ways
that happens (see ``docs/SPMD_VERIFY.md`` for the full catalog):

``REPRO010``
    A collective, ``wait``, or early exit sits under control flow whose
    condition is rank-dependent — some ranks issue the call, others
    never arrive: deadlock.
``REPRO011``
    A collective's *signature* (``tag``, shape, dtype, root) is computed
    from a rank-dependent value — every rank arrives, but with
    mismatched envelopes: deadlock or silent corruption.
``REPRO012``
    A buffer handed to an ``i*`` collective is written between issue and
    ``wait()`` — a data race against the in-flight transfer.

Escape hatch
------------
Deliberately rank-divergent code (chaos injection, supervisor-side
recovery) is annotated with ``# spmd-ok: <reason>`` on the flagged
line, on the tainted guard's line, or on the enclosing ``def`` line.
The standard ``# noqa: REPRO01x`` also works but documents nothing —
prefer the marker with a reason.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from pathlib import Path

from ..spmd import FunctionScope, ModuleTaint, scope_statements
from .engine import Finding, ModuleSource, Rule, register
from .rules import _ASYNC_COLLECTIVES, _COLLECTIVES

__all__ = [
    "InFlightBufferMutationRule",
    "RankDivergentControlFlowRule",
    "TaintedCollectiveSignatureRule",
    "SPMD_OK_MARKER",
]

#: The documented suppression marker for intentionally divergent code.
SPMD_OK_MARKER = "spmd-ok"

_SPMD_OK_RE = re.compile(r"#\s*spmd-ok\b")
_DUNDER_RE = re.compile(r"^__.*__$")

#: Calls whose presence makes a function part of the collective schedule.
_COMM_CALLS = (
    _COLLECTIVES
    | _ASYNC_COLLECTIVES
    | {"barrier", "wait", "wait_all", "sync_replicas"}
)

#: Calls whose argument signature must be rank-uniform.
_SIG_CALLS = _COLLECTIVES | _ASYNC_COLLECTIVES | {"barrier"}

#: Array constructors/reshapers whose arguments pin a payload's envelope.
_SHAPE_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "reshape", "astype", "view",
})

_MUTATING_METHODS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "setfield",
})


def _callee_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _stmt_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expressions attached directly to ``stmt`` (child stmts not)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


def _calls_in_stmt(stmt: ast.stmt) -> Iterator[ast.Call]:
    for expr in _stmt_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _root_name(node: ast.expr) -> str | None:
    """The leftmost Name of a subscript/attribute target chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _SpmdInfo:
    """Cached per-module analysis shared by the three rules."""

    __slots__ = ("tree", "taint", "spmd_ok_lines")

    def __init__(self, module: ModuleSource):
        self.tree = module.tree
        self.taint = ModuleTaint(module.tree)
        self.spmd_ok_lines = frozenset(
            lineno
            for lineno, line in enumerate(module.text.splitlines(), start=1)
            if _SPMD_OK_RE.search(line)
        )


#: id(tree) -> analysis; the tree reference keeps the key valid.
_INFO_CACHE: dict[int, _SpmdInfo] = {}


def _info(module: ModuleSource) -> _SpmdInfo:
    key = id(module.tree)
    hit = _INFO_CACHE.get(key)
    if hit is not None and hit.tree is module.tree:
        return hit
    info = _SpmdInfo(module)
    if len(_INFO_CACHE) >= 128:
        _INFO_CACHE.clear()
    _INFO_CACHE[key] = info
    return info


def _scope_touches_comm(info: _SpmdInfo, scope: FunctionScope) -> bool:
    """Whether divergence in ``scope`` can desynchronize the schedule.

    True when the scope's subtree issues a comm call, or the scope is a
    method of a class that *defines* comm entry points (a communicator
    wrapper diverging internally desynchronizes every caller).
    """
    for node in ast.walk(scope.node):
        if isinstance(node, ast.Call) and _callee_name(node) in _COMM_CALLS:
            return True
    if scope.class_name is not None:
        methods = info.taint.graph.class_methods.get(scope.class_name, set())
        if methods & _COMM_CALLS:
            return True
    return False


class _SpmdRule(Rule):
    """Shared plumbing: path filter and the ``# spmd-ok`` escape hatch."""

    def applies_to(self, path: Path) -> bool:
        # The analysis package itself manipulates rank identifiers as
        # *data* (it checks other code); everything else is covered.
        return "analysis" not in path.parts

    @staticmethod
    def _suppressed(
        info: _SpmdInfo,
        scope: FunctionScope,
        node: ast.AST,
        guards: tuple[ast.stmt, ...] = (),
    ) -> bool:
        lines = {getattr(node, "lineno", 0)}
        lines.update(g.lineno for g in guards)
        if not scope.is_module:
            lines.add(scope.node.lineno)
        return bool(lines & info.spmd_ok_lines)


@register
class RankDivergentControlFlowRule(_SpmdRule):
    """REPRO010: no collective or early exit under rank-divergent flow."""

    rule_id = "REPRO010"
    title = "collective under rank-divergent control flow"
    rationale = (
        "Every rank must issue the same collective sequence (the paper's "
        "synchronous data-parallel step); a collective, wait, or early "
        "exit guarded by a rank-dependent condition means some ranks "
        "arrive and others never do — on a real cluster that is a "
        "deadlock, in the simulator it is silent corruption. Hoist the "
        "call out of the branch, or annotate a deliberate divergence "
        "with `# spmd-ok: <reason>`."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        info = _info(module)
        for scope in info.taint.graph.scopes:
            if not _scope_touches_comm(info, scope):
                continue
            body = getattr(scope.node, "body", [])
            yield from self._walk(module, info, scope, body, ())

    def _walk(
        self,
        module: ModuleSource,
        info: _SpmdInfo,
        scope: FunctionScope,
        stmts: list[ast.stmt],
        guards: tuple[ast.stmt, ...],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            new_guards = guards
            if isinstance(stmt, (ast.If, ast.While)) and info.taint.is_tainted(
                stmt.test, scope
            ):
                new_guards = guards + (stmt,)
            if new_guards:
                yield from self._flag(module, info, scope, stmt, new_guards)
            for attr in ("body", "orelse", "finalbody"):
                yield from self._walk(
                    module, info, scope, getattr(stmt, attr, []), new_guards
                )
            for handler in getattr(stmt, "handlers", []):
                yield from self._walk(
                    module, info, scope, handler.body, new_guards
                )

    def _flag(
        self,
        module: ModuleSource,
        info: _SpmdInfo,
        scope: FunctionScope,
        stmt: ast.stmt,
        guards: tuple[ast.stmt, ...],
    ) -> Iterator[Finding]:
        guard_line = guards[-1].lineno
        for call in _calls_in_stmt(stmt):
            name = _callee_name(call)
            if name in _COMM_CALLS and not self._suppressed(
                info, scope, call, guards
            ):
                yield self.finding(
                    module,
                    call,
                    f"`.{name}(...)` under rank-divergent control flow "
                    f"(tainted guard at line {guard_line}): ranks taking "
                    "different branches issue different collective "
                    "sequences — a deadlock on a real cluster. Hoist it "
                    "out of the branch or mark `# spmd-ok: <reason>`",
                )
        if isinstance(
            stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)
        ) and not (
            not scope.is_module and _DUNDER_RE.match(scope.name)
        ):
            if not self._suppressed(info, scope, stmt, guards):
                kind = type(stmt).__name__.lower()
                yield self.finding(
                    module,
                    stmt,
                    f"rank-divergent early exit (`{kind}`) under tainted "
                    f"guard at line {guard_line} in a collective-issuing "
                    "scope: ranks leaving early skip the collectives "
                    "below and the survivors hang. Restructure, or mark "
                    "`# spmd-ok: <reason>`",
                )


@register
class TaintedCollectiveSignatureRule(_SpmdRule):
    """REPRO011: collective signatures must be rank-uniform."""

    rule_id = "REPRO011"
    title = "rank-dependent collective signature"
    rationale = (
        "Matching is by (op, tag, shape, dtype): a tag, root, or payload "
        "shape computed from the rank means every rank shows up to a "
        "*different* collective — mismatched-signature deadlock, the "
        "failure the LockstepVerifier catches at runtime. Per-rank "
        "payload *values* are fine (that is the data); per-rank "
        "*envelopes* are not."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        info = _info(module)
        for scope in info.taint.graph.scopes:
            for stmt in scope_statements(scope):
                for call in _calls_in_stmt(stmt):
                    name = _callee_name(call)
                    if name in _SIG_CALLS:
                        yield from self._check_call(
                            module, info, scope, call, name
                        )

    def _check_call(
        self,
        module: ModuleSource,
        info: _SpmdInfo,
        scope: FunctionScope,
        call: ast.Call,
        name: str,
    ) -> Iterator[Finding]:
        taint = info.taint
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if taint.is_tainted(kw.value, scope) and not self._suppressed(
                info, scope, call
            ):
                yield self.finding(
                    module,
                    kw.value,
                    f"`{kw.arg}=` argument of `.{name}(...)` is "
                    "rank-dependent: ranks would disagree on the "
                    "collective's signature and never match — derive it "
                    "from rank-uniform state or mark `# spmd-ok: <reason>`",
                )
        for arg in call.args[1:]:
            if taint.is_tainted(arg, scope) and not self._suppressed(
                info, scope, call
            ):
                yield self.finding(
                    module,
                    arg,
                    f"positional argument of `.{name}(...)` is "
                    "rank-dependent: signature fields (tag/root/shape) "
                    "must be identical on every rank",
                )
        if call.args:
            yield from self._check_payload_envelope(
                module, info, scope, call, name
            )

    def _check_payload_envelope(
        self,
        module: ModuleSource,
        info: _SpmdInfo,
        scope: FunctionScope,
        call: ast.Call,
        name: str,
    ) -> Iterator[Finding]:
        """Tainted shape/dtype constructors inside the payload argument."""
        for sub in ast.walk(call.args[0]):
            if not isinstance(sub, ast.Call):
                continue
            ctor = _callee_name(sub)
            if ctor not in _SHAPE_CTORS:
                continue
            tainted = any(
                info.taint.is_tainted(a, scope) for a in sub.args
            ) or any(
                info.taint.is_tainted(kw.value, scope)
                for kw in sub.keywords
            )
            if tainted and not self._suppressed(info, scope, sub):
                yield self.finding(
                    module,
                    sub,
                    f"payload of `.{name}(...)` built with "
                    f"rank-dependent `{ctor}(...)`: per-rank shard "
                    "shapes/dtypes give each rank a different envelope — "
                    "a mismatched-signature deadlock",
                )


@register
class InFlightBufferMutationRule(_SpmdRule):
    """REPRO012: no writes to a buffer between ``i*`` issue and wait."""

    rule_id = "REPRO012"
    title = "buffer mutated while its collective is in flight"
    rationale = (
        "An `i*` collective captures its payload by reference; writing "
        "to the array before wait() races the (simulated) transfer — on "
        "real hardware the NIC may read either value. The runtime "
        "counterpart is the LockstepVerifier's issue/wait buffer-hash "
        "check (InFlightMutationError)."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        info = _info(module)
        for scope in info.taint.graph.scopes:
            yield from self._check_scope(module, info, scope)

    def _check_scope(
        self, module: ModuleSource, info: _SpmdInfo, scope: FunctionScope
    ) -> Iterator[Finding]:
        #: handle name -> (issue stmt, op, buffer names)
        open_handles: dict[str, tuple[ast.stmt, str, frozenset[str]]] = {}
        for stmt in scope_statements(scope):
            self._close_waited(stmt, open_handles)
            issued = self._issue_of(stmt)
            if issued is not None:
                handle, op, call = issued
                buffers = frozenset(
                    n.id
                    for arg in call.args
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                )
                open_handles[handle] = (stmt, op, buffers)
                continue
            yield from self._flag_mutations(
                module, info, scope, stmt, open_handles
            )

    @staticmethod
    def _close_waited(
        stmt: ast.stmt,
        open_handles: dict[str, tuple[ast.stmt, str, frozenset[str]]],
    ) -> None:
        for call in _calls_in_stmt(stmt):
            name = _callee_name(call)
            if name in ("wait_all", "wait_pending", "drain"):
                open_handles.clear()
            elif (
                name == "wait"
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
            ):
                open_handles.pop(call.func.value.id, None)

    @staticmethod
    def _issue_of(
        stmt: ast.stmt,
    ) -> tuple[str, str, ast.Call] | None:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            op = _callee_name(stmt.value)
            if op in _ASYNC_COLLECTIVES:
                return stmt.targets[0].id, op, stmt.value
        return None

    def _flag_mutations(
        self,
        module: ModuleSource,
        info: _SpmdInfo,
        scope: FunctionScope,
        stmt: ast.stmt,
        open_handles: dict[str, tuple[ast.stmt, str, frozenset[str]]],
    ) -> Iterator[Finding]:
        if not open_handles:
            return
        for written, node in self._written_buffers(stmt):
            for handle, (issue, op, buffers) in open_handles.items():
                if written in buffers and not self._suppressed(
                    info, scope, node, (issue,)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"`{written}` written while `{op}(...)` issued at "
                        f"line {issue.lineno} (handle `{handle}`) is in "
                        "flight: the transfer may read either value — "
                        "wait() first, or stage the write into a copy",
                    )

    @staticmethod
    def _written_buffers(
        stmt: ast.stmt,
    ) -> Iterator[tuple[str, ast.AST]]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if isinstance(stmt, ast.AugAssign):
                    yield target.id, target
            else:
                root = _root_name(target)
                if root is not None:
                    yield root, target
        for call in _calls_in_stmt(stmt):
            name = _callee_name(call)
            if (
                name in _MUTATING_METHODS
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
            ):
                yield call.func.value.id, call
            elif (
                name == "copyto"
                and call.args
                and isinstance(call.args[0], ast.Name)
            ):
                yield call.args[0].id, call
            for kw in call.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    yield kw.value.id, call
