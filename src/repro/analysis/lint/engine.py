"""The lint engine: rule registry, module loading, noqa, formatting.

The engine is deliberately small: a rule receives a parsed
:class:`ModuleSource` and yields :class:`Finding` objects.  Everything
else — file discovery, ``# noqa`` suppression, ordering, rendering —
lives here so rules stay ~50 lines of pure AST inspection.

Adding a rule
-------------
Subclass :class:`Rule`, set ``rule_id``/``title``/``rationale``,
implement ``check``, and decorate with :func:`register`::

    @register
    class NoEvalRule(Rule):
        rule_id = "REPRO999"
        title = "eval() in library code"
        rationale = "eval hides data flow from every other rule."

        def check(self, module):
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "eval"):
                    yield self.finding(module, node, "eval() is banned")

Suppress a single line with ``# noqa: REPRO999`` (or a bare ``# noqa``
for every rule — use sparingly, it defeats the point).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleSource",
    "PARSE_ERROR_ID",
    "Rule",
    "default_rules",
    "format_findings",
    "iter_rule_classes",
    "register",
]

#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_ID = "REPRO000"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ModuleSource:
    """A parsed module handed to each rule.

    ``path`` is kept as given (relative paths render relative), ``text``
    is the raw source, ``tree`` the parsed AST.  ``noqa`` maps line
    numbers to the set of suppressed rule ids (empty set = suppress all).
    """

    path: Path
    text: str
    tree: ast.Module
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, text: str | None = None) -> "ModuleSource":
        if text is None:
            text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, text=text, tree=tree, noqa=_scan_noqa(text))

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.rule_id in codes


def _scan_noqa(text: str) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "#" not in line or "noqa" not in line.lower():
            continue
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = frozenset()
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


class Rule:
    """Base class for a lint rule.

    Subclasses set the three class attributes and implement
    :meth:`check`.  ``check`` may assume the module parsed; it yields
    findings (suppression is handled by the engine).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` at all (cheap path filter)."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


#: rule_id -> rule class, in registration order.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def iter_rule_classes() -> list[type[Rule]]:
    """All registered rule classes, sorted by rule id."""
    return [RULE_REGISTRY[k] for k in sorted(RULE_REGISTRY)]


def default_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    wanted = None if only is None else {c.upper() for c in only}
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    return [
        cls()
        for rid, cls in sorted(RULE_REGISTRY.items())
        if wanted is None or rid in wanted
    ]


class LintEngine:
    """Run a rule set over files, directories, or in-memory source."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        self.rules = list(rules) if rules is not None else default_rules()

    # -- discovery ----------------------------------------------------------

    @staticmethod
    def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
        for entry in paths:
            p = Path(entry)
            if p.is_dir():
                yield from sorted(
                    f for f in p.rglob("*.py") if "__pycache__" not in f.parts
                )
            else:
                yield p

    # -- linting ------------------------------------------------------------

    def lint_module(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module.path):
                continue
            for f in rule.check(module):
                if not module.is_suppressed(f):
                    findings.append(f)
        return sorted(findings)

    def lint_source(
        self, text: str, path: str | Path = "<memory>"
    ) -> list[Finding]:
        """Lint raw source text (used heavily by the rule unit tests)."""
        return self.lint_module(ModuleSource.parse(Path(path), text))

    def lint_file(self, path: str | Path) -> list[Finding]:
        p = Path(path)
        try:
            module = ModuleSource.parse(p)
        except SyntaxError as exc:
            return [
                Finding(
                    path=str(p),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        return self.lint_module(module)

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for p in self.iter_python_files(paths):
            findings.extend(self.lint_file(p))
        return sorted(findings)


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a tally."""
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    tally = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
    lines.append(f"{len(findings)} finding(s) ({tally})")
    return "\n".join(lines)
