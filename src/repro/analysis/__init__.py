"""Correctness tooling for the reproduction: static lint + runtime sanitizer.

The paper's results hinge on communication-layer discipline that plain
unit tests cannot see: every rank must issue bit-identical collective
sequences, FP16 compression-scaling must not silently saturate, RNG use
must flow through explicit seeded generators, and every byte moved must
be attributed to a ledger scope.  This package provides two complementary
checkers:

* :mod:`repro.analysis.lint` — an AST-based lint framework with
  project-specific rules (``REPRO001``–``REPRO012``, the last three
  built on the :mod:`repro.analysis.spmd` rank-dependence taint
  analysis), run via ``python -m repro.cli lint`` / ``make lint`` and
  enforced on ``src/repro`` itself by a tier-1 test;
* :mod:`repro.analysis.sanitizer` — an opt-in runtime wrapper around
  :class:`~repro.cluster.communicator.Communicator` and the FP16 wire
  codec that detects mismatched per-rank collectives, compression
  overflow (with a counterexample), unbalanced ledger scopes, dropped
  async work handles, and cross-rank issue-order mismatches, run via
  ``python -m repro.cli train --sanitize``;
* :mod:`repro.analysis.spmd` — the interprocedural call-graph + taint
  layer behind rules REPRO010–012 and ``python -m repro.cli
  verify-spmd`` (its dynamic twin, the
  :class:`~repro.cluster.lockstep.LockstepVerifier`, lives in
  :mod:`repro.cluster` to avoid an import cycle).
"""

from .lint import (
    Finding,
    LintEngine,
    ModuleSource,
    Rule,
    default_rules,
    format_findings,
    iter_rule_classes,
)
from .sanitizer import (
    CollectiveMismatchError,
    CompressionOverflowError,
    DoubleApplyError,
    DroppedHandleError,
    InFlightMutationError,
    IssueOrderError,
    SanitizedFp16Codec,
    SanitizedWorkHandle,
    Sanitizer,
    SanitizerError,
    assert_clean_retry_state,
    sanitize_codec,
)

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleSource",
    "Rule",
    "default_rules",
    "format_findings",
    "iter_rule_classes",
    "Sanitizer",
    "SanitizerError",
    "SanitizedWorkHandle",
    "CollectiveMismatchError",
    "CompressionOverflowError",
    "DoubleApplyError",
    "DroppedHandleError",
    "InFlightMutationError",
    "IssueOrderError",
    "SanitizedFp16Codec",
    "assert_clean_retry_state",
    "sanitize_codec",
]
