"""Runtime sanitizer: MPI-style mismatch detection for the SPMD simulator.

Real HPC stacks catch communication bugs with MPI correctness tools and
NCCL debug layers; the simulator's equivalent is :class:`Sanitizer`, an
opt-in wrapper around :class:`~repro.cluster.communicator.Communicator`
(or any of its subclasses) that validates every collective before it
executes:

* **rank-count agreement** — the per-rank list must carry exactly one
  array per rank;
* **shape agreement** — allreduce/reduce_scatter/broadcast payloads must
  be shape-identical across ranks (an allgatherv may be ragged in its
  leading dim only).  On a real cluster a mismatch deadlocks or
  corrupts; here it would silently skew Tables III-V;
* **dtype agreement** — mixed dtypes across ranks mean at least one
  rank fell off the FP16/FP32 discipline of §III-C;
* **payload hygiene** — NaN/Inf anywhere, and saturated values in FP16
  payloads (the signature of a compression-scaling overflow);
* **scope attribution** (opt-in) — collectives must run inside a
  ``with ledger.scope(...)`` block so their cost is attributable.

The async engine adds two failure modes, both covered here:

* **dropped handles** — an ``i*`` collective whose
  :class:`~repro.cluster.communicator.WorkHandle` is never ``wait()``\\ ed
  leaks scratch for the rest of the run and silently omits the
  completion from the timeline.  The sanitizer wraps every handle it
  issues and :meth:`Sanitizer.finish` raises :class:`DroppedHandleError`
  for any still un-awaited (the static counterpart is lint rule
  REPRO007);
* **cross-rank issue-order mismatch** — SPMD code that issues
  collectives in different orders on different ranks deadlocks on a
  real cluster.  Rank-local issue intents recorded via
  :meth:`Sanitizer.declare_issue` are compared by
  :meth:`Sanitizer.assert_uniform_issue_order`, which reports the first
  divergence.

Every violation raises a :class:`SanitizerError` subclass whose message
names the op, the offending rank(s), and a concrete counterexample.

:class:`SanitizedFp16Codec` applies the same philosophy at the FP16
down-cast boundary of :mod:`repro.core.compression`: where the stock
codec deliberately saturates out-of-range values (the behaviour the
accuracy experiments model), the sanitized codec *reports* them, with
the flat indices, original values, and the largest compression-scaling
factor that would have fit.  :class:`SanitizedWireCodec` does the same
for the lossless integer codecs of :mod:`repro.core.wire`: every encode
is roundtripped and compared bit-for-bit against the input.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..cluster.communicator import Communicator, WorkHandle
from ..core.compression import FP16_MAX, Fp16Codec, IdentityCodec, WireCodec

__all__ = [
    "CollectiveMismatchError",
    "CompressionOverflowError",
    "DoubleApplyError",
    "DroppedHandleError",
    "InFlightMutationError",
    "IssueOrderError",
    "OpRecord",
    "SanitizedFp16Codec",
    "SanitizedWireCodec",
    "SanitizedWorkHandle",
    "Sanitizer",
    "SanitizerError",
    "assert_clean_retry_state",
    "sanitize_codec",
]

#: How many offending elements a counterexample report shows.
_MAX_EXAMPLES = 5


class SanitizerError(RuntimeError):
    """Base class for everything the sanitizer detects."""


class CollectiveMismatchError(SanitizerError):
    """Per-rank disagreement in a collective's payload list."""


class CompressionOverflowError(SanitizerError):
    """FP16 compression-scaling produced NaN/Inf or saturated values."""


class DroppedHandleError(SanitizerError):
    """An ``i*`` collective's work handle was never ``wait()``\\ ed.

    The collective's scratch stays charged to every device and its
    completion never lands on the timeline — the async engine's
    equivalent of a leaked request.  Raised by :meth:`Sanitizer.finish`.
    """


class InFlightMutationError(SanitizerError):
    """A buffer handed to an ``i*`` collective was written before wait().

    The collective captured the payload by reference; on real hardware
    the NIC may read either the old or the new value.  Raised by the
    :class:`~repro.cluster.lockstep.LockstepVerifier`'s issue/wait
    buffer-hash check — the dynamic counterpart of lint rule REPRO012.
    """


class IssueOrderError(SanitizerError):
    """Ranks declared collectives in different orders.

    On a real cluster this deadlocks (each rank blocks in a different
    collective); raised by
    :meth:`Sanitizer.assert_uniform_issue_order`.
    """


class DoubleApplyError(SanitizerError):
    """A fault-retry would double-apply a gradient.

    The supervised recovery loop of :mod:`repro.train.resilience` rewinds
    a faulted step and replays it from scratch.  The replay is only
    equivalent to a clean first attempt if *nothing* from the aborted
    attempt survives: a residual dense ``grad`` or queued sparse
    gradient on any parameter would be *accumulated into* by the retried
    backward pass, and the optimizer would apply the gradient twice —
    silently, since replicas all double-apply together and stay
    "synchronized".  Raised by :func:`assert_clean_retry_state`.
    """


def assert_clean_retry_state(replicas, comm=None) -> None:
    """The no-double-apply invariant, checked before a fault retry.

    Raises :class:`DoubleApplyError` if any replica still holds gradient
    state (a dense ``grad`` or queued ``sparse_grads``) from the aborted
    attempt, or — when ``comm`` is given — if async work is still in
    flight (an un-awaited handle from the aborted step would complete
    into the retried one, merging two attempts' accounting).
    """
    for rank, replica in enumerate(replicas):
        for name, p in replica.named_parameters():
            if p.grad is not None:
                raise DoubleApplyError(
                    f"retry with residual state: rank {rank} parameter "
                    f"{name!r} still holds a dense gradient from the "
                    "aborted attempt — the replayed backward would "
                    "accumulate into it and the step would apply the "
                    "gradient twice"
                )
            if p.sparse_grads:
                raise DoubleApplyError(
                    f"retry with residual state: rank {rank} parameter "
                    f"{name!r} still queues {len(p.sparse_grads)} sparse "
                    "gradient(s) from the aborted attempt — the retried "
                    "exchange would ship and apply them twice"
                )
    if comm is not None and comm.pending_work:
        ops = ", ".join(
            f"{h.op}[tag={h.tag!r}]" for h in list(comm.pending_work)[:5]
        )
        raise DoubleApplyError(
            f"retry with {len(comm.pending_work)} async collective(s) "
            f"still in flight ({ops}) — the aborted attempt must be "
            "drained (comm.wait_all()) before the step is replayed"
        )


@dataclass(frozen=True)
class OpRecord:
    """One sanitized collective, kept for op-sequence comparison."""

    op: str
    shapes: tuple[tuple[int, ...], ...]
    dtype: str
    tag: str


def _describe(values: np.ndarray, indices: np.ndarray) -> str:
    shown = indices[:_MAX_EXAMPLES]
    pairs = ", ".join(
        f"[{int(i)}]={values.reshape(-1)[int(i)]}" for i in shown
    )
    extra = "" if indices.size <= _MAX_EXAMPLES else (
        f" (+{indices.size - _MAX_EXAMPLES} more)"
    )
    return pairs + extra


class SanitizedWorkHandle:
    """Tracking wrapper around a :class:`WorkHandle`.

    Returned by the sanitizer's ``i*`` collectives; remembers whether
    :meth:`wait` ran so :meth:`Sanitizer.finish` can name every handle
    that was issued and then dropped.  All other attributes delegate to
    the wrapped handle.
    """

    def __init__(self, handle: WorkHandle, record: OpRecord):
        self._handle = handle
        self.record = record

    def __getattr__(self, name: str):
        return getattr(self._handle, name)

    def wait(self) -> list[np.ndarray]:
        """Complete the collective (delegates to the wrapped handle)."""
        return self._handle.wait()

    def is_complete(self) -> bool:
        """Whether the underlying work has been awaited."""
        return self._handle.is_complete()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.is_complete() else "pending"
        return (
            f"SanitizedWorkHandle({self.record.op}"
            f"[tag={self.record.tag!r}], {state})"
        )


class Sanitizer:
    """Validating wrapper around a communicator.

    Parameters
    ----------
    comm:
        The communicator (or :class:`FailingCommunicator`, or another
        wrapper) whose collectives should be checked.
    require_scope:
        When True, any collective issued while the ledger's scope stack
        is empty raises — the static counterpart is lint rule REPRO003.
    check_finite:
        Scan every payload for NaN/Inf (and FP16 saturation).  On by
        default; the scan is O(payload) like the collective itself.
    forbid_dtypes:
        Dtypes that must never cross the wire — e.g. ``(np.float64,)``
        in an FP16-compressed run, the dynamic counterpart of REPRO002.
    lockstep:
        Attach a :class:`~repro.cluster.lockstep.LockstepVerifier` to
        the wrapped communicator: True builds one with defaults, or pass
        a pre-configured verifier.  Its per-rank fingerprint streams are
        cross-checked by :meth:`finish` (the dynamic counterpart of
        REPRO010/011) and its buffer hashes catch in-flight mutation
        (REPRO012).

    All non-collective attributes (``world_size``, ``ledger``,
    ``devices``, ...) delegate to the wrapped communicator, so a
    ``Sanitizer`` drops into any code that takes a ``Communicator``.
    """

    def __init__(
        self,
        comm: Communicator,
        require_scope: bool = False,
        check_finite: bool = True,
        forbid_dtypes: Sequence[np.dtype | type | str] = (),
        lockstep=False,
    ):
        self._comm = comm
        self.require_scope = require_scope
        self.check_finite = check_finite
        self.forbid_dtypes = tuple(np.dtype(d) for d in forbid_dtypes)
        self.op_log: list[OpRecord] = []
        self._issued_handles: list[SanitizedWorkHandle] = []
        self._rank_issue_logs: dict[int, list[OpRecord]] = {}
        self.lockstep = None
        if lockstep:
            from ..cluster.lockstep import LockstepVerifier

            if isinstance(lockstep, LockstepVerifier):
                self.lockstep = lockstep
                comm.verifier = lockstep
            else:
                self.lockstep = LockstepVerifier.attach(comm)

    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sanitizer({self._comm!r})"

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------

    def _validate(
        self,
        op: str,
        arrays: Sequence[np.ndarray],
        tag: str,
        ragged_leading: bool = False,
    ) -> None:
        world = self._comm.world_size
        if len(arrays) != world:
            raise CollectiveMismatchError(
                f"{op}[tag={tag!r}]: got {len(arrays)} per-rank arrays for "
                f"a {world}-rank communicator — on a real cluster "
                f"{abs(len(arrays) - world)} rank(s) would hang in this "
                "collective"
            )
        for rank, a in enumerate(arrays):
            if not isinstance(a, np.ndarray):
                raise CollectiveMismatchError(
                    f"{op}[tag={tag!r}]: rank {rank} supplied "
                    f"{type(a).__name__}, not an ndarray"
                )

        dtypes = {a.dtype for a in arrays}
        if len(dtypes) > 1:
            detail = ", ".join(
                f"rank {r}: {a.dtype}" for r, a in enumerate(arrays)
            )
            raise CollectiveMismatchError(
                f"{op}[tag={tag!r}]: per-rank dtype mismatch ({detail}) — "
                "at least one rank fell off the wire-format discipline"
            )
        dtype = arrays[0].dtype
        if dtype in self.forbid_dtypes:
            raise CollectiveMismatchError(
                f"{op}[tag={tag!r}]: payload dtype {dtype} is forbidden on "
                "this communicator (float64 on an FP16/FP32 comm path "
                "doubles every wire-byte count in Tables III-V)"
            )

        shapes = [a.shape for a in arrays]
        if ragged_leading:
            trailing = {a.shape[1:] for a in arrays}
            ndims = {a.ndim for a in arrays}
            if len(ndims) > 1 or len(trailing) > 1:
                detail = ", ".join(
                    f"rank {r}: {s}" for r, s in enumerate(shapes)
                )
                raise CollectiveMismatchError(
                    f"{op}[tag={tag!r}]: per-rank shapes disagree beyond "
                    f"the gather axis ({detail}) — allgatherv permits "
                    "ragged leading dims only"
                )
        elif len(set(shapes)) > 1:
            detail = ", ".join(f"rank {r}: {s}" for r, s in enumerate(shapes))
            raise CollectiveMismatchError(
                f"{op}[tag={tag!r}]: per-rank shape mismatch ({detail}) — "
                "every rank must contribute the same signature or the "
                "reduction is undefined"
            )

        if self.check_finite:
            for rank, a in enumerate(arrays):
                bad = np.flatnonzero(~np.isfinite(a))
                if bad.size:
                    raise CollectiveMismatchError(
                        f"{op}[tag={tag!r}]: rank {rank} payload contains "
                        f"{bad.size} non-finite value(s): "
                        f"{_describe(a, bad)}"
                    )
                if a.dtype == np.float16:
                    sat = np.flatnonzero(np.abs(a) >= FP16_MAX)
                    if sat.size:
                        raise CompressionOverflowError(
                            f"{op}[tag={tag!r}]: rank {rank} FP16 payload "
                            f"holds {sat.size} saturated value(s) "
                            f"(|x| >= {FP16_MAX}): {_describe(a, sat)} — "
                            "compression-scaling overflowed before the "
                            "wire; lower the scale factor"
                        )

        if self.require_scope and self._comm.ledger.current_scope == "":
            raise SanitizerError(
                f"{op}[tag={tag!r}] issued outside any ledger scope: wrap "
                "the call in `with comm.ledger.scope(name):` so its cost "
                "is attributed (lint rule REPRO003)"
            )

        self.op_log.append(
            OpRecord(
                op=op,
                shapes=tuple(a.shape for a in arrays),
                dtype=str(dtype),
                tag=tag,
            )
        )

    # ------------------------------------------------------------------
    # collectives (delegate after validation)
    # ------------------------------------------------------------------

    def allreduce(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
    ) -> list[np.ndarray]:
        self._validate("allreduce", arrays, tag)
        return self._comm.allreduce(arrays, tag=tag, payload_bytes=payload_bytes)

    def allgather(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
    ) -> list[np.ndarray]:
        self._validate("allgather", arrays, tag, ragged_leading=True)
        return self._comm.allgather(arrays, tag=tag, payload_bytes=payload_bytes)

    def broadcast(
        self, arrays: Sequence[np.ndarray], root: int = 0, tag: str = ""
    ) -> list[np.ndarray]:
        self._validate("broadcast", arrays, tag)
        return self._comm.broadcast(arrays, root=root, tag=tag)

    def reduce_scatter(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> list[np.ndarray]:
        self._validate("reduce_scatter", arrays, tag)
        return self._comm.reduce_scatter(arrays, tag=tag)

    # Non-blocking variants validate at issue (the moment the payload
    # hits the wire on a real stack) and wrap the returned handle so
    # dropped work is detectable at finish().  They must be explicit
    # methods: ``__getattr__`` delegation would hand back the raw
    # communicator's ``i*`` and bypass every check.

    def _issue_checked(self, handle: WorkHandle) -> SanitizedWorkHandle:
        wrapped = SanitizedWorkHandle(handle, self.op_log[-1])
        self._issued_handles.append(wrapped)
        return wrapped

    def iallreduce(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
        shared_result: bool = False,
        stacked: np.ndarray | None = None,
    ) -> SanitizedWorkHandle:
        """Validated non-blocking allreduce; the handle is tracked."""
        self._validate("allreduce", arrays, tag)
        return self._issue_checked(
            self._comm.iallreduce(
                arrays,
                tag=tag,
                payload_bytes=payload_bytes,
                shared_result=shared_result,
                stacked=stacked,
            )
        )

    def iallgather(
        self,
        arrays: Sequence[np.ndarray],
        tag: str = "",
        payload_bytes: int | None = None,
        shared_result: bool = False,
    ) -> SanitizedWorkHandle:
        """Validated non-blocking allgather; the handle is tracked."""
        self._validate("allgather", arrays, tag, ragged_leading=True)
        return self._issue_checked(
            self._comm.iallgather(
                arrays,
                tag=tag,
                payload_bytes=payload_bytes,
                shared_result=shared_result,
            )
        )

    def ibroadcast(
        self, arrays: Sequence[np.ndarray], root: int = 0, tag: str = ""
    ) -> SanitizedWorkHandle:
        """Validated non-blocking broadcast; the handle is tracked."""
        self._validate("broadcast", arrays, tag)
        return self._issue_checked(
            self._comm.ibroadcast(arrays, root=root, tag=tag)
        )

    def ireduce_scatter(
        self, arrays: Sequence[np.ndarray], tag: str = ""
    ) -> SanitizedWorkHandle:
        """Validated non-blocking reduce-scatter; the handle is tracked."""
        self._validate("reduce_scatter", arrays, tag)
        return self._issue_checked(
            self._comm.ireduce_scatter(arrays, tag=tag)
        )

    def barrier(self, tag: str = "") -> None:
        if self.require_scope and self._comm.ledger.current_scope == "":
            raise SanitizerError(
                f"barrier[tag={tag!r}] issued outside any ledger scope "
                "(lint rule REPRO003)"
            )
        self.op_log.append(OpRecord("barrier", (), "", tag))
        self._comm.barrier(tag=tag)

    # ------------------------------------------------------------------
    # end-of-run invariants
    # ------------------------------------------------------------------

    def finish(self) -> list[OpRecord]:
        """End-of-run checks; returns the op log.

        Raises :class:`DroppedHandleError` if any ``i*`` collective
        issued through this sanitizer was never awaited, then verifies
        the ledger's scope stack is balanced.
        """
        dropped = [h for h in self._issued_handles if not h.is_complete()]
        if dropped:
            detail = ", ".join(
                f"{h.record.op}[tag={h.record.tag!r}]" for h in dropped[:5]
            )
            extra = "" if len(dropped) <= 5 else f" (+{len(dropped) - 5} more)"
            raise DroppedHandleError(
                f"{len(dropped)} async collective(s) were issued but never "
                f"wait()ed: {detail}{extra} — their scratch stays charged "
                "to every device and their completion never reaches the "
                "timeline (lint rule REPRO007)"
            )
        self._comm.ledger.assert_balanced()
        if self.lockstep is not None:
            self.lockstep.check("finish")
        return list(self.op_log)

    # ------------------------------------------------------------------
    # cross-rank issue-order checking
    # ------------------------------------------------------------------

    def declare_issue(self, rank: int, op: str, tag: str = "") -> None:
        """Record that ``rank``'s control flow issues ``op`` next.

        The simulator executes collectives once for all ranks, so
        per-rank divergence can only come from rank-dependent control
        flow *around* the calls.  SPMD orchestration code declares each
        rank's intent here; :meth:`assert_uniform_issue_order` then
        checks all ranks agree — the condition under which the single
        shared call is actually representative of G independent
        processes.
        """
        if not 0 <= rank < self._comm.world_size:
            raise ValueError(
                f"rank {rank} out of range for world size "
                f"{self._comm.world_size}"
            )
        self._rank_issue_logs.setdefault(rank, []).append(
            OpRecord(op=op, shapes=(), dtype="", tag=tag)
        )

    def assert_uniform_issue_order(self) -> None:
        """Raise :class:`IssueOrderError` on the first cross-rank divergence.

        Compares every declaring rank's issue sequence against the
        lowest declaring rank's; a real cluster would deadlock at the
        first position where two ranks enter different collectives.
        """
        if not self._rank_issue_logs:
            return
        ranks = sorted(self._rank_issue_logs)
        base_rank = ranks[0]
        base = self._rank_issue_logs[base_rank]
        for rank in ranks[1:]:
            log = self._rank_issue_logs[rank]
            for i, (a, b) in enumerate(zip(base, log)):
                if a != b:
                    raise IssueOrderError(
                        f"ranks {base_rank} and {rank} issue different "
                        f"collectives at position {i}: "
                        f"{a.op}[tag={a.tag!r}] vs {b.op}[tag={b.tag!r}] — "
                        "on a real cluster both ranks would block forever "
                        "in mismatched collectives"
                    )
            if len(base) != len(log):
                raise IssueOrderError(
                    f"ranks {base_rank} and {rank} issue different "
                    f"collective counts: {len(base)} vs {len(log)} — the "
                    "shorter rank would hang waiting for peers in the "
                    "extra collective"
                )

    def assert_same_sequence(self, other: "Sanitizer") -> None:
        """Compare two communicators' op sequences (e.g. two sub-groups).

        Mirrors MPI correctness tools' cross-communicator matching: the
        first divergence in (op, shapes, dtype) is reported with its
        position.
        """
        for i, (a, b) in enumerate(zip(self.op_log, other.op_log)):
            if a != b:
                raise CollectiveMismatchError(
                    f"op sequences diverge at position {i}: {a} vs {b}"
                )
        if len(self.op_log) != len(other.op_log):
            raise CollectiveMismatchError(
                f"op sequences diverge in length: {len(self.op_log)} vs "
                f"{len(other.op_log)} collectives"
            )


@dataclass(frozen=True)
class SanitizedFp16Codec(Fp16Codec):
    """FP16 codec that reports overflow instead of silently saturating.

    The stock :class:`Fp16Codec` clips ``arr * scale`` into the finite
    FP16 range — the behaviour whose accuracy effects the experiments
    measure.  This variant raises :class:`CompressionOverflowError` at
    the down-cast boundary with a counterexample (flat indices, values,
    and the largest scale that would have fit), so a scaling factor that
    overflows is caught in the run that introduced it rather than as a
    perplexity regression three tables later.
    """

    def encode(self, arr: np.ndarray) -> np.ndarray:
        if not np.issubdtype(arr.dtype, np.floating):
            raise ValueError("codec applies to floating-point tensors")
        bad = np.flatnonzero(~np.isfinite(arr))
        if bad.size:
            raise CompressionOverflowError(
                f"FP16 encode: input already holds {bad.size} non-finite "
                f"value(s) before scaling: {_describe(arr, bad)}"
            )
        scaled = arr.astype(np.float64, copy=False) * self.scale
        over = np.flatnonzero(np.abs(scaled) > FP16_MAX)
        if over.size:
            peak = float(np.abs(arr).max())
            safe = FP16_MAX / peak if peak > 0 else float("inf")
            raise CompressionOverflowError(
                f"FP16 compression-scaling overflow: scale={self.scale} "
                f"pushes {over.size} value(s) past the FP16 max "
                f"({FP16_MAX}); counterexample {_describe(arr, over)} "
                f"(scaled: {_describe(scaled, over)}). Largest safe "
                f"scale for this tensor: {safe:.1f}"
            )
        return super().encode(arr)

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        out = super().decode(arr, dtype)
        bad = np.flatnonzero(~np.isfinite(out))
        if bad.size:
            raise CompressionOverflowError(
                f"FP16 decode produced {bad.size} non-finite value(s): "
                f"{_describe(out, bad)} — the wire tensor was corrupted "
                "or encoded without sanitizing"
            )
        return out


class SanitizedWireCodec(WireCodec):
    """Roundtrip-checking wrapper for *lossless* wire codecs.

    The lossless integer codecs of :mod:`repro.core.wire` promise
    bit-exact ``decode(encode(x)) == x``.  This wrapper enforces the
    promise at encode time: every frame it produces is immediately
    decoded back and compared bit-for-bit (values, dtype, and shape)
    against the input, so a packing bug surfaces at the collective that
    introduced it instead of as a silently corrupted index exchange.
    Decode additionally checks the output dtype matches the request.

    All metadata (``name``, ``lossless``, ``data_dependent``,
    ``wire_dtype``, ``estimate_nbytes``) delegates to the wrapped codec,
    so cost models and ledger scopes see the same identity.
    """

    def __init__(self, inner: WireCodec):
        if not inner.lossless:
            raise ValueError(
                f"SanitizedWireCodec requires a lossless codec; "
                f"{inner.name!r} is lossy — wrap it with its own "
                "sanitizer (e.g. SanitizedFp16Codec) instead"
            )
        self._inner = inner

    @property
    def name(self) -> str:
        """The wrapped codec's name (ledger scopes stay comparable)."""
        return self._inner.name

    @property
    def lossless(self) -> bool:  # type: ignore[override]
        """Delegates to the wrapped codec (always True here)."""
        return self._inner.lossless

    @property
    def data_dependent(self) -> bool:  # type: ignore[override]
        """Delegates to the wrapped codec."""
        return self._inner.data_dependent

    def wire_dtype(self, dtype: np.dtype) -> np.dtype | None:
        """Delegates to the wrapped codec."""
        return self._inner.wire_dtype(dtype)

    def estimate_nbytes(self, arr: np.ndarray, sample: int = 1024) -> int:
        """Delegates to the wrapped codec's size estimator."""
        return self._inner.estimate_nbytes(arr, sample=sample)

    def encode(self, arr: np.ndarray) -> np.ndarray:
        """Encode, then verify the frame decodes back bit-for-bit."""
        frame = self._inner.encode(arr)
        back = self._inner.decode(frame, arr.dtype)
        if back.dtype != arr.dtype or back.shape != arr.shape:
            raise CollectiveMismatchError(
                f"{self.name} roundtrip changed the array signature: "
                f"{arr.dtype}{arr.shape} -> {back.dtype}{back.shape}"
            )
        if not np.array_equal(back, arr):
            bad = np.flatnonzero(back != arr)
            raise CollectiveMismatchError(
                f"{self.name} roundtrip is not bit-exact: {bad.size} "
                f"element(s) differ; input {_describe(arr, bad)} vs "
                f"decoded {_describe(back, bad)} — the codec violated "
                "its lossless contract"
            )
        return frame

    def decode(self, arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Decode and verify the output dtype matches the request."""
        out = self._inner.decode(arr, dtype)
        if out.dtype != np.dtype(dtype):
            raise CollectiveMismatchError(
                f"{self.name} decode returned dtype {out.dtype}, "
                f"caller asked for {np.dtype(dtype)}"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SanitizedWireCodec({self._inner!r})"


def sanitize_codec(codec: WireCodec | None) -> WireCodec | None:
    """Return a checking variant of ``codec`` where one exists.

    ``Fp16Codec`` gains overflow detection; lossless codecs gain the
    bit-exact roundtrip check of :class:`SanitizedWireCodec`; the
    identity codec and ``None`` (no compression) pass through unchanged,
    as does a codec that is already sanitized.
    """
    if codec is None or isinstance(
        codec, (SanitizedFp16Codec, SanitizedWireCodec)
    ):
        return codec
    if isinstance(codec, Fp16Codec):
        return SanitizedFp16Codec(scale=codec.scale)
    if isinstance(codec, IdentityCodec):
        return codec
    if codec.lossless:
        return SanitizedWireCodec(codec)
    return codec
