"""Canonical parameter dtypes for the NN stack.

The paper's cluster trains in single precision (TITAN X / V100 FP32
math, with FP16 reserved for the wire format of Section III-C), so the
default parameter dtype across :mod:`repro.nn` is float32.  Exactness
checks — finite-difference gradient tests, bit-identity invariants —
opt into float64 explicitly by passing ``dtype=ACC_DTYPE``; optimizers
likewise accumulate reductions (e.g. global grad norms) in
:data:`ACC_DTYPE` regardless of the parameter dtype.

Lint rule ``REPRO004`` enforces that dtype defaults inside ``nn/`` name
these constants instead of repeating ``np.float64``/``np.float32``
literals, so the whole stack can be re-pinned in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DTYPE", "ACC_DTYPE"]

#: Default parameter/activation dtype: FP32, per the paper's hardware.
DTYPE: np.dtype = np.dtype(np.float32)

#: Accumulation dtype for precision-critical reductions and exactness tests.
ACC_DTYPE: np.dtype = np.dtype(np.float64)
