"""Megatron-style tensor-parallel layers + a 1F1B pipeline schedule.

Intra-layer (tensor) parallelism from Megatron-LM (PAPERS.md,
1909.08053), expressed in the simulator's SPMD-in-one-process idiom:
each layer holds **all** of its shards (index = tensor-parallel rank),
exactly as the :class:`~repro.cluster.communicator.Communicator` holds
all ranks' arrays.  Numerics are real; the optional ``mesh_comm``
charges the tensor-axis collectives each layer implies to the ledger
and timeline.

* :class:`ColumnParallelLinear` — ``W`` split by output columns; the
  forward all-gathers shard outputs, the backward all-reduces input
  gradients.
* :class:`RowParallelLinear` — ``W`` split by input rows; the forward
  all-reduces partial sums.  ``Column ∘ Row`` is Megatron's two-matmul
  MLP block with one collective per direction.
* :class:`ParallelEmbedding` — vocabulary rows sharded; each shard
  contributes exact rows (zeros elsewhere) and the sum reassembles the
  gather **bit-exactly** (``x + 0.0 == x``).
* :class:`VocabParallelSampledSoftmax` — the crossover-study
  counterpart of the paper's uniqueness exchange: the output embedding
  is vocab-sharded, each shard scores the candidate columns it owns,
  and the logits are all-reduced.  Loss and gradients are bit-exact vs
  the unsharded :class:`~repro.nn.sampled_softmax.SampledSoftmaxLoss`.
* :class:`PipelineSchedule` — GPipe-style 1F1B micro-batch schedule
  with analytic makespan/bubble and timeline recording (compute per
  stage, activation transfers charged on the ``pipe`` axis).

Every sharded layer initializes its **full** parameter with the same
generator draw as the unsharded layer and then slices — so a sharded
model and its unsharded reference start from identical values, the
precondition of the bit-exactness property tests.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .functional import cross_entropy_from_logits
from .module import Module
from .parameter import Parameter, SparseGrad
from .sampled_softmax import LogUniformSampler

__all__ = [
    "ColumnParallelLinear",
    "ParallelEmbedding",
    "PipelineSchedule",
    "RowParallelLinear",
    "VocabParallelSampledSoftmax",
    "shard_bounds",
]


def shard_bounds(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges splitting ``total`` rows into shards.

    Sizes differ by at most one (the first ``total % num_shards`` shards
    take the extra row), mirroring
    :func:`~repro.cluster.process_group.partition_ranks`.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards > total:
        raise ValueError(f"cannot split {total} rows into {num_shards} shards")
    base, extra = divmod(total, num_shards)
    bounds = []
    lo = 0
    for j in range(num_shards):
        hi = lo + base + (1 if j < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _tensor_allreduce(mesh_comm, arrays, tag):
    """Charge + run a tensor-axis allreduce; plain python sum when offline.

    Comm-substrate call: inherits the caller's ledger scope, and mesh
    collectives carry raw values by design (no codec composition).
    """
    if mesh_comm is not None:
        return mesh_comm.allreduce("tensor", arrays, tag=tag)  # noqa: REPRO003,REPRO008
    acc = arrays[0].copy()
    for a in arrays[1:]:
        acc += a
    return [acc for _ in arrays]


def _tensor_allgather(mesh_comm, arrays, tag):
    """Charge a tensor-axis allgather; numerics are the caller's concat.

    Comm-substrate call: inherits the caller's ledger scope, and mesh
    collectives carry raw values by design (no codec composition).
    """
    if mesh_comm is not None:
        mesh_comm.allgather("tensor", arrays, tag=tag)  # noqa: REPRO003,REPRO008


def _check_mesh_comm(mesh_comm, num_shards: int) -> None:
    if mesh_comm is None:
        return
    if mesh_comm.mesh.axis_size("tensor") != num_shards:
        raise ValueError(
            f"mesh tensor axis {mesh_comm.mesh.axis_size('tensor')} != "
            f"{num_shards} shards"
        )
    if mesh_comm.world_size != num_shards:
        raise ValueError(
            "tensor-parallel layers drive one tensor group: the mesh "
            f"must be tensor-only, got {mesh_comm.mesh.describe()}"
        )


class ColumnParallelLinear(Module):
    """``y = x @ W + b`` with ``W`` split by output columns.

    Shard ``j`` holds columns ``[j*w, (j+1)*w)`` of the same
    Xavier-initialized matrix :class:`~repro.nn.linear.Linear` would
    build; the forward concatenates shard outputs (the all-gather) and
    the backward all-reduces the input gradient partial sums.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_shards: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype: np.dtype = DTYPE,
        mesh_comm=None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dimensions must be positive")
        if num_shards <= 0 or out_dim % num_shards != 0:
            raise ValueError(
                f"out_dim {out_dim} must divide evenly into "
                f"{num_shards} column shards"
            )
        _check_mesh_comm(mesh_comm, num_shards)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_shards = num_shards
        self._mesh_comm = mesh_comm
        full = init.xavier_uniform((in_dim, out_dim), rng, dtype)
        width = out_dim // num_shards
        self._weights = []
        self._biases = []
        for j in range(num_shards):
            w = Parameter(
                full[:, j * width:(j + 1) * width].copy(),
                name=f"col_linear.weight{j}",
            )
            self.register_parameter(f"weight{j}", w)
            self._weights.append(w)
            if bias:
                b = Parameter(
                    init.zeros((width,), dtype), name=f"col_linear.bias{j}"
                )
                self.register_parameter(f"bias{j}", b)
                self._biases.append(b)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        """Per-shard matmuls + output all-gather (concatenation)."""
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"input dim {x.shape[-1]} != {self.in_dim}")
        parts = []
        for j, w in enumerate(self._weights):
            y = x @ w.data
            if self._biases:
                y += self._biases[j].data
            parts.append(y)
        _tensor_allgather(self._mesh_comm, parts, tag="col_linear.fwd")
        return np.concatenate(parts, axis=-1), {"x": x}

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        """Accumulate shard grads; all-reduce + return the input grad."""
        x = cache["x"]
        if grad_out.shape != x.shape[:-1] + (self.out_dim,):
            raise ValueError(f"bad grad shape {grad_out.shape}")
        x2d = x.reshape(-1, self.in_dim)
        g2d = grad_out.reshape(-1, self.out_dim)
        width = self.out_dim // self.num_shards
        partials = []
        for j, w in enumerate(self._weights):
            gj = g2d[:, j * width:(j + 1) * width]
            w.accumulate_grad(x2d.T @ gj)
            if self._biases:
                self._biases[j].accumulate_grad(gj.sum(axis=0))
            partials.append(gj @ w.data.T)
        reduced = _tensor_allreduce(
            self._mesh_comm, partials, tag="col_linear.bwd"
        )
        return reduced[0].reshape(x.shape)


class RowParallelLinear(Module):
    """``y = x @ W + b`` with ``W`` split by input rows.

    Shard ``j`` consumes input slice ``x[..., j*w:(j+1)*w]`` and holds
    the matching row block; partial outputs are summed by a tensor-axis
    all-reduce, after which the (unsharded) bias is added once.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_shards: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype: np.dtype = DTYPE,
        mesh_comm=None,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dimensions must be positive")
        if num_shards <= 0 or in_dim % num_shards != 0:
            raise ValueError(
                f"in_dim {in_dim} must divide evenly into "
                f"{num_shards} row shards"
            )
        _check_mesh_comm(mesh_comm, num_shards)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_shards = num_shards
        self._mesh_comm = mesh_comm
        full = init.xavier_uniform((in_dim, out_dim), rng, dtype)
        width = in_dim // num_shards
        self._weights = []
        for j in range(num_shards):
            w = Parameter(
                full[j * width:(j + 1) * width, :].copy(),
                name=f"row_linear.weight{j}",
            )
            self.register_parameter(f"weight{j}", w)
            self._weights.append(w)
        self.bias: Parameter | None
        if bias:
            self.bias = Parameter(init.zeros((out_dim,), dtype),
                                  name="row_linear.bias")
        else:
            object.__setattr__(self, "bias", None)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        """Per-shard partial matmuls + all-reduced sum."""
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"input dim {x.shape[-1]} != {self.in_dim}")
        width = self.in_dim // self.num_shards
        partials = [
            x[..., j * width:(j + 1) * width] @ w.data
            for j, w in enumerate(self._weights)
        ]
        reduced = _tensor_allreduce(
            self._mesh_comm, partials, tag="row_linear.fwd"
        )
        y = reduced[0]
        if self.bias is not None:
            y = y + self.bias.data
        return y, {"x": x}

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        """Accumulate shard grads; return the (concatenated) input grad."""
        x = cache["x"]
        if grad_out.shape != x.shape[:-1] + (self.out_dim,):
            raise ValueError(f"bad grad shape {grad_out.shape}")
        g2d = grad_out.reshape(-1, self.out_dim)
        width = self.in_dim // self.num_shards
        x2d = x.reshape(-1, self.in_dim)
        parts = []
        for j, w in enumerate(self._weights):
            xj = x2d[:, j * width:(j + 1) * width]
            w.accumulate_grad(xj.T @ g2d)
            parts.append(g2d @ w.data.T)
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        _tensor_allgather(self._mesh_comm, parts, tag="row_linear.bwd")
        return np.concatenate(parts, axis=-1).reshape(x.shape)


class ParallelEmbedding(Module):
    """Vocab-sharded lookup table: each shard owns a contiguous id range.

    Forward: every shard contributes the exact rows it owns and zeros
    elsewhere; the tensor-axis all-reduce reassembles the gather
    **bit-exactly** (adding an exact zero never perturbs a float).
    Backward: each shard records a sparse gradient for its owned tokens
    in *local* row coordinates.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        num_shards: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
        mesh_comm=None,
    ):
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        _check_mesh_comm(mesh_comm, num_shards)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.num_shards = num_shards
        self._mesh_comm = mesh_comm
        self.bounds = shard_bounds(num_embeddings, num_shards)
        full = init.uniform(
            (num_embeddings, dim), 1.0 / np.sqrt(dim), rng, dtype
        )
        self._weights = []
        for j, (lo, hi) in enumerate(self.bounds):
            w = Parameter(full[lo:hi].copy(), name=f"parallel_embedding.weight{j}")
            self.register_parameter(f"weight{j}", w)
            self._weights.append(w)

    def forward(self, token_ids: np.ndarray) -> tuple[np.ndarray, dict]:
        """Masked per-shard gathers + all-reduced reassembly."""
        token_ids = np.asarray(token_ids)
        if not np.issubdtype(token_ids.dtype, np.integer):
            raise ValueError("token ids must be integers")
        if token_ids.size and (
            token_ids.min() < 0 or token_ids.max() >= self.num_embeddings
        ):
            raise ValueError("token id out of vocabulary range")
        parts = []
        for (lo, hi), w in zip(self.bounds, self._weights):
            contrib = np.zeros(
                token_ids.shape + (self.dim,), dtype=w.data.dtype
            )
            mask = (token_ids >= lo) & (token_ids < hi)
            contrib[mask] = w.data[token_ids[mask] - lo]
            parts.append(contrib)
        reduced = _tensor_allreduce(
            self._mesh_comm, parts, tag="parallel_embedding.fwd"
        )
        return reduced[0], {"token_ids": token_ids}

    def backward(self, grad_out: np.ndarray, cache: dict) -> None:
        """Record per-shard sparse grads for owned tokens (local rows)."""
        token_ids = cache["token_ids"]
        expected = token_ids.shape + (self.dim,)
        if grad_out.shape != expected:
            raise ValueError(f"grad shape {grad_out.shape} != {expected}")
        ids = token_ids.reshape(-1).astype(np.int64)
        rows = grad_out.reshape(-1, self.dim)
        for (lo, hi), w in zip(self.bounds, self._weights):
            mask = (ids >= lo) & (ids < hi)
            w.accumulate_sparse_grad(
                SparseGrad(indices=ids[mask] - lo, values=rows[mask])
            )

    def gathered_weight(self) -> np.ndarray:
        """The full ``|V| x D`` matrix, reassembled from the shards."""
        return np.concatenate([w.data for w in self._weights], axis=0)


class VocabParallelSampledSoftmax(Module):
    """Sampled softmax with the output embedding sharded over the vocab.

    Each shard scores the candidate (and target) columns whose rows it
    owns; non-owned columns contribute exact zeros, so the tensor-axis
    logit all-reduce reassembles the unsharded score matrix bit-exactly
    — and loss, output-embedding row gradients, and ``dhidden`` all
    match :class:`~repro.nn.sampled_softmax.SampledSoftmaxLoss`
    bit-for-bit.  This is the model-parallel alternative the paper's
    uniqueness exchange is benchmarked against in
    ``bench_ablation_tensor_parallel.py``.
    """

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int,
        num_samples: int,
        num_shards: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
        mesh_comm=None,
    ):
        super().__init__()
        if vocab_size <= 1 or hidden_dim <= 0:
            raise ValueError("bad dimensions")
        if not 0 < num_samples < vocab_size:
            raise ValueError("need 0 < num_samples < vocab_size")
        _check_mesh_comm(mesh_comm, num_shards)
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.num_samples = num_samples
        self.num_shards = num_shards
        self._mesh_comm = mesh_comm
        self.sampler = LogUniformSampler(vocab_size)
        self.bounds = shard_bounds(vocab_size, num_shards)
        full = init.uniform(
            (vocab_size, hidden_dim), 1.0 / np.sqrt(hidden_dim), rng, dtype
        )
        self._weights = []
        for j, (lo, hi) in enumerate(self.bounds):
            w = Parameter(
                full[lo:hi].copy(), name=f"vocab_parallel_softmax.weight{j}"
            )
            self.register_parameter(f"weight{j}", w)
            self._weights.append(w)

    def _owned_rows(self, ids: np.ndarray) -> np.ndarray:
        """Reassemble ``E[ids]`` exactly: per-shard owned rows + zeros."""
        parts = []
        for (lo, hi), w in zip(self.bounds, self._weights):
            contrib = np.zeros((ids.size, self.hidden_dim), w.data.dtype)
            mask = (ids >= lo) & (ids < hi)
            contrib[mask] = w.data[ids[mask] - lo]
            parts.append(contrib)
        reduced = _tensor_allreduce(
            self._mesh_comm, parts, tag="vocab_softmax.rows"
        )
        return reduced[0]

    def forward(
        self,
        hidden: np.ndarray,
        targets: np.ndarray,
        sample_rng: np.random.Generator,
        sampled_ids: np.ndarray | None = None,
    ) -> tuple[float, dict]:
        """Shard-scored sampled-softmax NLL with all-reduced logits.

        Candidates are drawn once (globally) from ``sample_rng`` —
        identically to the unsharded layer — then each shard computes
        ``hidden @ E_j[candidates].T`` for its owned rows; the logit
        all-reduce reassembles the full score matrix.
        """
        if hidden.ndim != 2 or hidden.shape[1] != self.hidden_dim:
            raise ValueError(f"hidden must be (N, {self.hidden_dim})")
        targets = np.asarray(targets)
        if targets.shape != (hidden.shape[0],):
            raise ValueError("targets must be (N,)")
        if sampled_ids is None:
            sampled_ids = self.sampler.sample(self.num_samples, sample_rng)
        else:
            sampled_ids = np.asarray(sampled_ids, dtype=np.int64)
            if sampled_ids.ndim != 1:
                raise ValueError("sampled_ids must be 1-D")

        # Exact row reassembly (the "all-reduced logits" in matrix form:
        # owned rows + exact zeros, summed over shards).
        target_rows = self._owned_rows(targets.astype(np.int64))
        sampled_rows = self._owned_rows(sampled_ids)

        true_logit = (hidden * target_rows).sum(axis=1)
        true_logit = true_logit - self.sampler.expected_log_count(
            targets, self.num_samples
        )
        samp_logits = hidden @ sampled_rows.T
        samp_logits = samp_logits - self.sampler.expected_log_count(
            sampled_ids, self.num_samples
        )
        hit_mask = sampled_ids[None, :] == targets[:, None]
        samp_logits = np.where(hit_mask, -1e30, samp_logits)

        logits = np.concatenate([true_logit[:, None], samp_logits], axis=1)
        labels = np.zeros(hidden.shape[0], dtype=np.int64)
        loss, dlogits = cross_entropy_from_logits(logits, labels)
        cache = {
            "hidden": hidden,
            "targets": targets,
            "sampled_ids": sampled_ids,
            "dlogits": dlogits,
            "hit_mask": hit_mask,
            "target_rows": target_rows,
            "sampled_rows": sampled_rows,
        }
        return loss, cache

    def backward(self, cache: dict, loss_scale: float = 1.0) -> np.ndarray:
        """Accumulate per-shard sparse grads (local rows); return dhidden."""
        hidden = cache["hidden"]
        targets = cache["targets"].astype(np.int64)
        sampled_ids = cache["sampled_ids"]
        dlogits = cache["dlogits"]
        if loss_scale != 1.0:
            dlogits = dlogits * loss_scale
        d_true = dlogits[:, 0]
        d_samp = np.where(cache["hit_mask"], 0.0, dlogits[:, 1:])

        # dhidden uses the exactly-reassembled row matrices, so it is
        # bit-identical to the unsharded layer's computation.
        dhidden = (
            d_true[:, None] * cache["target_rows"]
            + d_samp @ cache["sampled_rows"]
        )

        true_values = d_true[:, None] * hidden
        samp_values = d_samp.T @ hidden
        for (lo, hi), w in zip(self.bounds, self._weights):
            t_mask = (targets >= lo) & (targets < hi)
            w.accumulate_sparse_grad(
                SparseGrad(
                    indices=targets[t_mask] - lo, values=true_values[t_mask]
                )
            )
            s_mask = (sampled_ids >= lo) & (sampled_ids < hi)
            w.accumulate_sparse_grad(
                SparseGrad(
                    indices=sampled_ids[s_mask] - lo,
                    values=samp_values[s_mask],
                )
            )
        return dhidden


class PipelineSchedule:
    """GPipe-style 1F1B micro-batch schedule for ``p`` pipeline stages.

    Analytic model (2104.04473 §2.2): with ``m`` micro-batches and
    per-micro forward/backward times ``f``/``b``, the steady-state 1F1B
    makespan is ``(m + p - 1) * (f + b)`` and the bubble fraction is
    ``(p - 1) / (m + p - 1)`` — gradient accumulation (more micros)
    amortizes the pipeline fill/drain.

    :meth:`record` places the schedule on a mesh communicator's
    timeline: every stage's ranks are charged its busy compute plus its
    fill/drain bubble, and each adjacent-stage boundary is charged
    ``m`` activation transfers on the ``pipe`` axis.
    """

    def __init__(
        self,
        num_stages: int,
        num_micro: int,
        fwd_time_s: float,
        bwd_time_s: float,
    ):
        if num_stages <= 0:
            raise ValueError("num_stages must be positive")
        if num_micro <= 0:
            raise ValueError("num_micro must be positive")
        if fwd_time_s < 0 or bwd_time_s < 0:
            raise ValueError("stage times must be >= 0")
        self.num_stages = num_stages
        self.num_micro = num_micro
        self.fwd_time_s = fwd_time_s
        self.bwd_time_s = bwd_time_s

    @property
    def makespan_s(self) -> float:
        """Analytic 1F1B makespan (fill + steady state + drain)."""
        return (self.num_micro + self.num_stages - 1) * (
            self.fwd_time_s + self.bwd_time_s
        )

    @property
    def bubble_fraction(self) -> float:
        """Idle share of each stage: ``(p-1) / (m+p-1)``."""
        return (self.num_stages - 1) / (self.num_micro + self.num_stages - 1)

    def record(
        self,
        mesh_comm,
        axis: str = "pipe",
        activation_bytes: int = 0,
        tag: str = "step",
    ) -> float:
        """Charge the schedule to the mesh's timeline; return the makespan.

        Every rank of stage ``s`` records its bubble (fill + drain,
        ``(p-1)*(f+b)`` total) and its busy time (``m*(f+b)``), so all
        compute clocks advance by the same analytic makespan; each of
        the ``p-1`` stage boundaries then charges ``m`` activation
        transfers of ``activation_bytes`` on the ``axis`` link.
        """
        mesh = mesh_comm.mesh
        if mesh.axis_size(axis) != self.num_stages:
            raise ValueError(
                f"mesh {axis!r} axis has {mesh.axis_size(axis)} stage(s), "
                f"schedule has {self.num_stages}"
            )
        timeline = mesh_comm.comm.timeline
        axis_pos = mesh.axis_index(axis)
        per_micro = self.fwd_time_s + self.bwd_time_s
        bubble = (self.num_stages - 1) * per_micro
        busy = self.num_micro * per_micro
        for rank in range(mesh.size):  # mesh-ok: SPMD driver loop charging every simulated rank's stage clock
            stage = mesh.coords(rank)[axis_pos]
            if bubble > 0:
                timeline.record_compute(
                    rank, bubble, name=f"pipe-bubble:s{stage}"
                )
            timeline.record_compute(rank, busy, name=f"pipe-stage:s{stage}")
        if activation_bytes > 0:
            for boundary in range(self.num_stages - 1):
                for micro in range(self.num_micro):
                    mesh_comm.transfer(
                        axis,
                        activation_bytes,
                        tag=f"{tag}:act:{boundary}->{boundary + 1}:m{micro}",
                    )
        return self.makespan_s
