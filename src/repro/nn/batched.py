"""Batched SPMD rank execution: all replicas' numpy work in one pass.

The simulator runs G model replicas in one host process.  The per-rank
training loop (``for rank: replica.step(batch)``) pays G Python
dispatches into numpy *per layer per time step* — at G≥512 the
interpreter, not BLAS, dominates wall-clock.  Data-parallel replicas
are **identical by invariant** (same init seed, synchronized updates),
so their forward/backward passes differ only in the batch data; the
whole world can execute as stacked arrays with a leading rank axis.

Bit-exactness contract
----------------------
The fast path is a *scheduling* optimization, never a numerics change:
every rank's losses, gradients, RNG stream consumption and carried
state are **bit-for-bit identical** to the per-rank loop (regression-
pinned by ``tests/train/test_batched_exactness.py`` and the 200-case
property suite).  This holds because, with the replica weights entering
as a shared 2-D operand broadcast across the rank axis:

* ``np.matmul((R, n, k), (k, m))`` equals each ``(n, k) @ (k, m)``
  slice exactly (numpy dispatches the same gemm per slice, including
  transposed-view operands);
* elementwise ops, gathers, reductions over the same axes, and the
  stable softmax/sigmoid forms are slice-invariant;
* dropout masks are drawn from **each replica's own generator in rank
  order**, consuming exactly the draws the per-rank loop would.

Anything outside the proven envelope falls back to the per-rank loop:

* replicas are not all :class:`~repro.train.char_lm.CharLanguageModel`
  with equal configs (checked once, at build);
* training/eval flags disagree across replicas, carried RHN states are
  inconsistent, or batch shapes are ragged (checked per step);
* replica parameters have *actually* diverged — checked on the first
  call and every ``verify_interval`` calls; a detected divergence
  disables the executor permanently (a diverged world is a bug the
  slow path and the epoch-end sync assertion will surface, not a state
  the fast path should silently average away).
"""

from __future__ import annotations

import numpy as np

from .functional import sigmoid
from .parameter import SparseGrad

__all__ = ["BatchedCharLMExecutor", "build_batched_executor"]


# The batched path builds thousands of SparseGrads per step from arrays
# that satisfy the dataclass invariants by construction; skip validation.
_sparse_grad = SparseGrad._unsafe


def build_batched_executor(replicas) -> "BatchedCharLMExecutor | None":
    """Return a batched executor for ``replicas``, or None if unsupported.

    Supported: two or more :class:`~repro.train.char_lm.CharLanguageModel`
    replicas (exact type — a subclass may override ``step``) sharing one
    architecture config.  A single replica gains nothing from stacking.
    """
    from ..train.char_lm import CharLanguageModel  # lazy: train imports nn

    if len(replicas) < 2:
        return None
    first = replicas[0]
    if type(first) is not CharLanguageModel:
        return None
    for m in replicas[1:]:
        if type(m) is not CharLanguageModel or m.config != first.config:
            return None
    return BatchedCharLMExecutor(list(replicas))


class BatchedCharLMExecutor:
    """Execute every replica's fused forward+backward in one stacked pass.

    Mirrors :meth:`repro.train.char_lm.CharLanguageModel.step` exactly,
    with a leading rank axis ``R`` on every activation and rank 0's
    parameters broadcast as the shared weights (valid because replicas
    are verified equal).  Gradients are accumulated into **each**
    replica's parameters, so gradient sync, optimizers, loss scaling and
    telemetry all see the same state the per-rank loop would produce.
    """

    #: Re-verify the replicas-equal invariant every this many calls.
    #: The invariant is maintained by construction (synchronized grads +
    #: identical updates); the check is a cheap tripwire, not a gate on
    #: every step.
    verify_interval = 16

    def __init__(self, replicas):
        if len(replicas) < 2:
            raise ValueError("batched execution needs at least two replicas")
        self.replicas = replicas
        self._calls = 0
        self._disabled = False
        self.fallback_reason = ""
        # Scratch arena: transient activations are reused across steps
        # (keyed by batch geometry) instead of reallocated — ~40 MB of
        # per-step allocation churn at G=512 otherwise.  Buffers that
        # outlive the call (gradients handed to parameters, dx referenced
        # by SparseGrads until sync) are still freshly allocated.
        self._arena_key: tuple | None = None
        self._arena: dict[str, np.ndarray] = {}

    def _buffers(self, R, B, T, H, L, D, V, dtype) -> dict[str, np.ndarray]:
        """Persistent transient buffers for one batch geometry."""
        key = (R, B, T, H, L, D, V, dtype)
        if self._arena_key != key:
            N = B * T
            e = np.empty
            self._arena = {
                "x_proj": e((R, B, T, 2 * H), dtype),
                "outputs": e((R, B, T, H), dtype),
                "dropped": e((R, B, T, H), dtype),
                "mask": e((R, B, T, H), dtype),
                "h_cache": e((R, B, T, L, H), dtype),
                "t_cache": e((R, B, T, L, H), dtype),
                "s_in": e((R, B, T, L, H), dtype),
                "s_a": e((R, B, H), dtype),
                "s_b": e((R, B, H), dtype),
                "z": e((R, B, 2 * H), dtype),
                "hbuf": e((R, B, H), dtype),
                "logits": e((R, N, V), dtype),
                "shifted": e((R, N, V), dtype),
                "probs": e((R, N, V), dtype),
                "mx": e((R, N, 1), dtype),
                "ssum": e((R, N, 1), dtype),
                "dhidden": e((R, N, H), dtype),
                "ds": e((R, B, H), dtype),
                "dh": e((R, B, H), dtype),
                "dtg": e((R, B, H), dtype),
                "tmph": e((R, B, H), dtype),
                "dsm": e((R, B, H), dtype),
                "dz": e((R, B, 2 * H), dtype),
                "tmp_rw": e((R, H, 2 * H), dtype),
                "tmp_wx": e((R, D, 2 * H), dtype),
                "tmp_b": e((R, 2 * H), dtype),
                "tmp_dxt": e((R, B, D), dtype),
            }
            self._arena_key = key
        return self._arena

    @property
    def active(self) -> bool:
        """False once the executor has permanently disabled itself."""
        return not self._disabled

    def _disable(self, reason: str) -> None:
        self._disabled = True
        self.fallback_reason = reason

    def _replicas_equal(self) -> bool:
        base = list(self.replicas[0].parameters())
        for m in self.replicas[1:]:
            for p, q in zip(base, m.parameters()):
                if not np.array_equal(p.data, q.data):
                    return False
        return True

    def step(self, batches, loss_scale: float = 1.0) -> list[float] | None:
        """Run one micro-step for all ranks; per-rank losses, or None.

        ``batches[rank]`` is rank's local :class:`~repro.data.batching.
        Batch`.  Returns ``None`` when this step cannot take the fast
        path (the caller must then run the per-rank loop — no RNG or
        gradient state has been consumed).
        """
        if self._disabled:
            return None
        reps = self.replicas
        R = len(reps)
        if len(batches) != R:
            return None
        m0 = reps[0]
        training = m0.training
        drop_training = m0.dropout.training
        for m in reps[1:]:
            if m.training != training or m.dropout.training != drop_training:
                return None
        shape = batches[0].inputs.shape
        for b in batches[1:]:
            if b.inputs.shape != shape or b.targets.shape != shape:
                return None
        if self._calls % self.verify_interval == 0 and not self._replicas_equal():
            self._disable("replica parameters diverged")
            return None
        self._calls += 1

        cfg = m0.config
        B, T = shape
        H, L, D = cfg.hidden_dim, cfg.depth, cfg.embedding_dim
        V = cfg.vocab_size

        # -- embedding forward (gather) --------------------------------
        # Preallocate-and-assign beats np.stack's per-item overhead at
        # G=512 (same bits: row-wise copies of the same arrays).
        inputs = np.empty((R,) + shape, dtype=batches[0].inputs.dtype)
        for ri, b in enumerate(batches):
            inputs[ri] = b.inputs
        if not np.issubdtype(inputs.dtype, np.integer):
            raise ValueError("token ids must be integers")
        if inputs.size and (
            inputs.min() < 0 or inputs.max() >= cfg.vocab_size
        ):
            raise ValueError("token id out of vocabulary range")
        emb_w = m0.embedding.weight.data
        emb = emb_w[inputs]  # (R, B, T, D)
        dtype = m0.rhn.w_x.data.dtype

        # -- carried RHN state (stateful BPTT) -------------------------
        state = None
        if m0.stateful and training:
            states = [m._state for m in reps]
            have = states[0] is not None
            for s in states[1:]:
                if (s is not None) != have:
                    return None  # inconsistent carry — per-rank handles it
            if have:
                if any(s.shape != states[0].shape for s in states[1:]):
                    return None
                if states[0].shape == (B, H):
                    state = np.stack(states).astype(dtype)
                elif states[0].shape[0] == B:
                    return None  # wrong width: let the slow path raise
                # else: batch-size change — dropped, exactly like char_lm

        buf = self._buffers(R, B, T, H, L, D, V, dtype)
        N = B * T

        # -- RHN forward -----------------------------------------------
        # Every reused buffer is written with ``out=`` through the exact
        # op sequence of the per-rank path (same operand order, in-place
        # only where the op reads and writes elementwise), so the arena
        # changes allocation behaviour, never bits.
        w_x = m0.rhn.w_x.data
        r_w = m0.rhn.r.data
        rwT = r_w.transpose(0, 2, 1)
        bias = m0.rhn.bias.data
        x_proj = np.matmul(
            emb.reshape(R, N, D), w_x, out=buf["x_proj"].reshape(R, N, 2 * H)
        ).reshape(R, B, T, 2 * H)
        s = buf["s_a"]
        s_next = buf["s_b"]
        if state is None:
            s[:] = 0.0
        else:
            s[:] = state
        outputs = buf["outputs"]
        h_cache = buf["h_cache"]
        t_cache = buf["t_cache"]
        s_in = buf["s_in"]
        z = buf["z"]
        hbuf = buf["hbuf"]
        tmph = buf["tmph"]
        for t in range(T):
            for l in range(L):
                np.matmul(s, r_w[l], out=z)
                z += bias[l]
                if l == 0:
                    z += x_proj[:, :, t]
                h = np.tanh(z[..., :H], out=hbuf)
                tg = sigmoid(z[..., H:])
                s_in[:, :, t, l] = s
                h_cache[:, :, t, l] = h
                t_cache[:, :, t, l] = tg
                # s = h * tg + s * (1 - tg), same operand order as above
                np.multiply(h, tg, out=s_next)
                np.subtract(1.0, tg, out=tmph)
                np.multiply(s, tmph, out=tmph)
                s_next += tmph
                s, s_next = s_next, s
            outputs[:, :, t] = s
        if m0.stateful and training:
            for ri, m in enumerate(reps):
                m._state = s[ri].copy()

        # -- dropout forward (per-replica RNG streams, rank order) -----
        p_drop = m0.dropout.p
        if drop_training and p_drop > 0.0:
            keep = 1.0 - p_drop
            mask = buf["mask"]
            for ri, m in enumerate(reps):
                mask[ri] = (
                    m.dropout._rng.random((B, T, H)) < keep
                ).astype(dtype) / keep
            dropped = np.multiply(outputs, mask, out=buf["dropped"])
        else:
            mask = None
            dropped = outputs

        # -- full softmax + cross-entropy ------------------------------
        hidden = dropped.reshape(R, N, H)
        sm_w = m0.loss_layer.weight.data
        sm_b = m0.loss_layer.bias.data
        logits = np.matmul(hidden, sm_w.T, out=buf["logits"])
        logits += sm_b
        targets = np.empty((R, N), dtype=batches[0].targets.dtype)
        for ri, b in enumerate(batches):
            targets[ri] = b.targets.reshape(-1)
        # log_softmax inlined over arena buffers: max-shift, exp, sum,
        # log, subtract — the identical stable sequence of
        # :func:`repro.nn.functional.log_softmax`.
        mx = logits.max(axis=2, keepdims=True, out=buf["mx"])
        shifted = np.subtract(logits, mx, out=buf["shifted"])
        e = np.exp(shifted, out=buf["probs"])
        ssum = e.sum(axis=2, keepdims=True, out=buf["ssum"])
        np.log(ssum, out=ssum)
        logp = np.subtract(shifted, ssum, out=shifted)
        picked = np.take_along_axis(logp, targets[:, :, None], axis=2)[:, :, 0]
        losses = -picked.mean(axis=1)
        dlogits = np.exp(logp, out=buf["probs"])
        rank_ix = np.arange(R)[:, None]
        row_ix = np.arange(N)[None, :]
        dlogits[rank_ix, row_ix, targets] -= 1.0
        dlogits /= N

        # -- softmax backward ------------------------------------------
        if loss_scale != 1.0:
            dlogits *= loss_scale
        # w_grads/b_grads leave this call as per-rank gradient views, so
        # they are freshly allocated (not arena buffers).
        w_grads = np.matmul(dlogits.transpose(0, 2, 1), hidden)
        b_grads = dlogits.sum(axis=1)
        dhidden = np.matmul(dlogits, sm_w, out=buf["dhidden"])

        # -- dropout backward ------------------------------------------
        ddrop = dhidden.reshape(R, B, T, H)
        if mask is not None:
            ddrop = np.multiply(ddrop, mask, out=ddrop)

        # -- RHN backward (BPTT through time and depth) ----------------
        dw_x = np.zeros((R, D, 2 * H), dtype)
        dr = np.zeros((R, L, H, 2 * H), dtype)
        dbias = np.zeros((R, L, 2 * H), dtype)
        dx = np.empty((R, B, T, D), dtype)  # referenced by SparseGrads
        ds = buf["ds"]
        ds[:] = 0.0
        dh = buf["dh"]
        dtg = buf["dtg"]
        tmph = buf["tmph"]
        dsm = buf["dsm"]
        dz = buf["dz"]
        dz_h = dz[..., :H]
        dz_t = dz[..., H:]
        tmp_rw = buf["tmp_rw"]
        tmp_wx = buf["tmp_wx"]
        tmp_b = buf["tmp_b"]
        tmp_dxt = buf["tmp_dxt"]
        for t in range(T - 1, -1, -1):
            ds += ddrop[:, :, t]
            for l in range(L - 1, -1, -1):
                h = h_cache[:, :, t, l]
                tg = t_cache[:, :, t, l]
                s_prev = s_in[:, :, t, l]
                np.multiply(ds, tg, out=dh)
                np.subtract(h, s_prev, out=tmph)
                np.multiply(ds, tmph, out=dtg)
                # dz_h = dh * dtanh(h); dz_t = dtg * dsigmoid(tg)
                np.multiply(h, h, out=tmph)
                np.subtract(1.0, tmph, out=tmph)
                np.multiply(dh, tmph, out=dz_h)
                np.subtract(1.0, tg, out=tmph)
                np.multiply(tg, tmph, out=tmph)
                np.multiply(dtg, tmph, out=dz_t)
                np.matmul(s_prev.transpose(0, 2, 1), dz, out=tmp_rw)
                dr[:, l] += tmp_rw
                dz.sum(axis=1, out=tmp_b)
                dbias[:, l] += tmp_b
                # ds = ds * (1 - tg) + dz @ r_w[l].T
                np.subtract(1.0, tg, out=tmph)
                np.multiply(ds, tmph, out=tmph)
                np.matmul(dz, rwT[l], out=dsm)
                np.add(tmph, dsm, out=ds)
                if l == 0:
                    np.matmul(dz, w_x.T, out=tmp_dxt)
                    dx[:, :, t] = tmp_dxt
                    np.matmul(emb[:, :, t].transpose(0, 2, 1), dz, out=tmp_wx)
                    dw_x += tmp_wx

        # -- gradient handoff ------------------------------------------
        # Rows of the stacked gradient blocks become each replica's
        # dense grad directly (disjoint views; ``+`` on accumulation
        # steps matches ``+=`` bit-for-bit).  The blocks above are fresh
        # per call, so the views stay valid until the sync consumes them.
        flat_ids = inputs.reshape(R, -1).astype(np.int64)
        vals = dx.reshape(R, N, D)
        coalesced = self._batched_coalesce(flat_ids, vals, V, dtype)
        for ri, m in enumerate(reps):
            for p, block in (
                (m.loss_layer.weight, w_grads),
                (m.loss_layer.bias, b_grads),
                (m.rhn.w_x, dw_x),
                (m.rhn.r, dr),
                (m.rhn.bias, dbias),
            ):
                row = block[ri]
                p.grad = row if p.grad is None else p.grad + row
                if ri == 0:
                    # Stacked-block hint for the dense allreduce: rows
                    # were handed out in rank order, so the sync can
                    # reduce over the block directly.  Accumulated grads
                    # (``old + new``) no longer alias the block, which
                    # the sync's identity check detects — the hint is
                    # only valid when this micro-step owns the grad.
                    p._grad_block = block if p.grad is row else None
            sg = _sparse_grad(flat_ids[ri], vals[ri])
            sg._coalesced = coalesced[ri]
            m.embedding.weight.sparse_grads.append(sg)

        return [float(x) for x in losses]

    @staticmethod
    def _batched_coalesce(flat_ids, vals, vocab, dtype) -> list[SparseGrad]:
        """All ranks' local unique-reduce (steps 1-2) in one pass.

        Offsetting rank ``r``'s ids by ``r * vocab`` makes the per-rank
        id spaces disjoint, so one ``np.unique`` + one ``np.add.at``
        computes every rank's sorted-unique types and summed rows.
        Within a rank, tokens are visited in the same order as the
        per-rank ``SparseGrad.coalesce``, and cross-rank rows are
        disjoint — the per-rank results are bit-identical.  The results
        are attached as each token-level gradient's ``_coalesced`` cache
        for the sparse exchange to pick up.
        """
        R, N = flat_ids.shape
        D = vals.shape[2]
        offset = flat_ids + (np.arange(R, dtype=np.int64) * vocab)[:, None]
        uniq, inverse = np.unique(offset.ravel(), return_inverse=True)
        reduced = np.zeros((uniq.size, D), dtype)
        np.add.at(reduced, inverse, vals.reshape(R * N, D))
        bounds = np.searchsorted(uniq, np.arange(1, R + 1) * vocab)
        out = []
        start = 0
        for ri in range(R):  # mesh-ok: slicing per-rank segments of one host-side reduction
            stop = int(bounds[ri])
            out.append(
                _sparse_grad(
                    uniq[start:stop] - ri * vocab, reduced[start:stop]
                )
            )
            start = stop
        return out
