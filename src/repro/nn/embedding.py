"""Input embedding layer with row-sparse gradients.

Forward is a row gather: a ``(B, T)`` batch of token ids pulls rows from
the ``|V| x D`` matrix into a dense ``(B, T, D)`` activation (Figure 2
of the paper).  Backward emits a :class:`~repro.nn.parameter.SparseGrad`
— one ``(index, grad_row)`` pair per *token* — without ever
materializing a ``|V| x D`` dense gradient.  How those sparse grads are
synchronized across GPUs is the paper's core subject.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .module import Module
from .parameter import Parameter, SparseGrad

__all__ = ["Embedding"]


class Embedding(Module):
    """Token-id -> dense-vector lookup table.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size ``|V|``.
    dim:
        Embedding dimension ``D``.
    rng:
        Initialization generator (uniform ±1/sqrt(D), the common LM choice).
    dtype:
        Parameter dtype; defaults to :data:`repro.nn.DTYPE` (float32,
        the paper's hardware) — exactness checks pass ``ACC_DTYPE``.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.uniform((num_embeddings, dim), 1.0 / np.sqrt(dim), rng, dtype),
            name="embedding.weight",
        )

    def forward(self, token_ids: np.ndarray) -> tuple[np.ndarray, dict]:
        """Gather rows: returns ``(activations, cache)``.

        ``activations`` has shape ``token_ids.shape + (dim,)``.
        """
        token_ids = np.asarray(token_ids)
        if not np.issubdtype(token_ids.dtype, np.integer):
            raise ValueError("token ids must be integers")
        if token_ids.size and (
            token_ids.min() < 0 or token_ids.max() >= self.num_embeddings
        ):
            raise ValueError("token id out of vocabulary range")
        out = self.weight.data[token_ids]
        return out, {"token_ids": token_ids}

    def backward(self, grad_out: np.ndarray, cache: dict) -> None:
        """Record the sparse gradient; returns nothing (inputs are ids).

        ``grad_out`` must match the forward activation shape.  One sparse
        row per token: duplicates (the repeated "a" of Figure 2) are kept
        and summed later by coalesce/apply — preserving the accumulation
        semantics Section II-A describes.
        """
        token_ids = cache["token_ids"]
        expected = token_ids.shape + (self.dim,)
        if grad_out.shape != expected:
            raise ValueError(f"grad shape {grad_out.shape} != {expected}")
        self.weight.accumulate_sparse_grad(
            SparseGrad(
                indices=token_ids.reshape(-1).astype(np.int64),
                values=grad_out.reshape(-1, self.dim),
            )
        )
