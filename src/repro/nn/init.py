"""Weight initialization schemes.

Every initializer takes an explicit :class:`numpy.random.Generator` —
the SPMD simulator creates each rank's model replica from the *same*
seed so that replicas start synchronized, a precondition the
replica-consistency invariant tests rely on.
"""

from __future__ import annotations

import numpy as np

from .dtypes import DTYPE

__all__ = ["uniform", "xavier_uniform", "orthogonal", "zeros"]


def uniform(
    shape: tuple[int, ...], scale: float, rng: np.random.Generator,
    dtype: np.dtype = DTYPE,
) -> np.ndarray:
    """U(-scale, scale) initialization (TF 1.x default for embeddings)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return rng.uniform(-scale, scale, size=shape).astype(dtype)


def xavier_uniform(
    shape: tuple[int, int], rng: np.random.Generator,
    dtype: np.dtype = DTYPE,
) -> np.ndarray:
    """Glorot/Xavier uniform for 2-D weights: U(±sqrt(6/(fan_in+fan_out)))."""
    if len(shape) != 2:
        raise ValueError("xavier_uniform expects a 2-D shape")
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def orthogonal(
    shape: tuple[int, int], rng: np.random.Generator,
    gain: float = 1.0, dtype: np.dtype = DTYPE,
) -> np.ndarray:
    """Orthogonal initialization — standard for recurrent weight matrices."""
    if len(shape) != 2:
        raise ValueError("orthogonal expects a 2-D shape")
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).astype(dtype)


def zeros(shape: tuple[int, ...], dtype: np.dtype = DTYPE) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape, dtype=dtype)
