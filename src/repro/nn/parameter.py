"""Parameters and sparse gradients.

The distinction at the heart of the paper is between parameters with
**dense** gradients (RNN weights — synchronized with a plain ALLREDUCE)
and embedding matrices with **sparse, row-indexed** gradients (each
training step touches only the rows of the types present in the batch).
:class:`SparseGrad` is the (indices, values) pair a backward pass emits
for an embedding; how it is exchanged across GPUs — dense ALLGATHER
baseline vs the paper's unique-ALLREDUCE — is the core contribution,
implemented in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Parameter", "SparseGrad"]


@dataclass
class SparseGrad:
    """Row-sparse gradient for an embedding matrix.

    ``values[i]`` is the gradient of row ``indices[i]``; indices may
    repeat (one entry per *token*, not per *type*) — duplicates must be
    **summed** on application, matching the accumulation semantics of
    embedding back-propagation described in Section II-A.
    """

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices)
        self.values = np.asarray(self.values)
        if self.indices.ndim != 1:
            raise ValueError("indices must be 1-D")
        if self.values.ndim != 2:
            raise ValueError("values must be 2-D (tokens x dim)")
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"{self.indices.shape[0]} indices vs {self.values.shape[0]} rows"
            )
        if not np.issubdtype(self.indices.dtype, np.integer):
            raise ValueError("indices must be integers")

    @classmethod
    def _unsafe(cls, indices: np.ndarray, values: np.ndarray) -> "SparseGrad":
        """Construct without validation — hot-path internal use only.

        ``__post_init__``'s dtype/shape checks cost more than the rest of
        a per-rank loop iteration at G=512; producers whose invariants
        hold by construction (fan-out of an already-validated exchange,
        the batched executor's own gradients) skip them.
        """
        sg = cls.__new__(cls)
        sg.indices = indices
        sg.values = values
        return sg

    @property
    def n_tokens(self) -> int:
        return int(self.indices.size)

    @property
    def dim(self) -> int:
        return int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.indices.nbytes + self.values.nbytes)

    def coalesce(self) -> "SparseGrad":
        """Sum duplicate indices — the paper's step-2 'local reduction'.

        Returns a new :class:`SparseGrad` whose indices are unique and
        sorted ascending.  This is the per-GPU Ui x D matrix of the
        uniqueness algorithm.  A producer that already knows the reduced
        form (the batched executor computes all ranks' reductions in one
        vectorized pass) may pre-attach it as ``_coalesced``; the result
        is bit-identical either way.
        """
        cached = getattr(self, "_coalesced", None)
        if cached is not None:
            return cached
        unique, inverse = np.unique(self.indices, return_inverse=True)
        reduced = np.zeros((unique.size, self.values.shape[1]), self.values.dtype)
        np.add.at(reduced, inverse, self.values)
        return SparseGrad(indices=unique, values=reduced)

    def to_dense(self, num_rows: int) -> np.ndarray:
        """Materialize as a full ``num_rows x dim`` gradient (tests only)."""
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if self.indices.size and self.indices.max() >= num_rows:
            raise ValueError("index out of range for num_rows")
        if self.indices.size and self.indices.min() < 0:
            raise ValueError("negative index")
        dense = np.zeros((num_rows, self.values.shape[1]), self.values.dtype)
        np.add.at(dense, self.indices, self.values)
        return dense


class Parameter:
    """A learnable tensor with a dense and/or sparse gradient slot.

    ``grad`` accumulates dense gradients (``+=`` semantics across
    backward calls); ``sparse_grads`` collects :class:`SparseGrad`
    contributions for embedding-style parameters.  A parameter may
    receive both within one step only if it participates in both kinds
    of computation (the tied-embedding case); the optimizer applies them
    additively.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        data = np.asarray(data)
        if not np.issubdtype(data.dtype, np.floating):
            raise ValueError("parameters must be floating point")
        self.data = data
        self.name = name
        self.grad: np.ndarray | None = None
        self.sparse_grads: list[SparseGrad] = []

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add a dense gradient contribution."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def accumulate_sparse_grad(self, sparse: SparseGrad) -> None:
        """Record a sparse (row-indexed) gradient contribution."""
        if self.data.ndim != 2:
            raise ValueError("sparse gradients apply to 2-D parameters only")
        if sparse.dim != self.data.shape[1]:
            raise ValueError(
                f"sparse grad dim {sparse.dim} != embedding dim {self.data.shape[1]}"
            )
        if sparse.indices.size and sparse.indices.max() >= self.data.shape[0]:
            raise ValueError("sparse grad row index out of range")
        self.sparse_grads.append(sparse)

    def merged_sparse_grad(self) -> SparseGrad | None:
        """All sparse contributions of this step, coalesced; None if none."""
        if not self.sparse_grads:
            return None
        if len(self.sparse_grads) == 1:
            return self.sparse_grads[0].coalesce()
        indices = np.concatenate([s.indices for s in self.sparse_grads])
        values = np.concatenate([s.values for s in self.sparse_grads])
        return SparseGrad(indices, values).coalesce()

    def full_grad(self) -> np.ndarray:
        """Dense + densified-sparse gradient (reference/tests; O(V*D))."""
        total = (
            np.zeros_like(self.data) if self.grad is None else self.grad.copy()
        )
        merged = self.merged_sparse_grad()
        if merged is not None:
            np.add.at(total, merged.indices, merged.values)
        return total

    def zero_grad(self) -> None:
        self.grad = None
        self.sparse_grads = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
