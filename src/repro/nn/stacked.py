"""Stacked recurrent layers.

Section II of the paper describes LMs with "several feed-forward or
recurrent layers" between the embeddings; the evaluated word model uses
one LSTM, but the architecture family (Jozefowicz et al.) stacks them.
:class:`StackedLSTM` composes N LSTM layers with optional inter-layer
dropout, exposing the same ``forward/backward`` contract as a single
layer so model assemblies can swap it in transparently.
"""

from __future__ import annotations

import numpy as np

from .dtypes import DTYPE
from .dropout import Dropout
from .lstm import LSTM
from .module import Module

__all__ = ["StackedLSTM"]


class StackedLSTM(Module):
    """``num_layers`` LSTMs, each feeding the next.

    Parameters
    ----------
    input_dim:
        Feature size of the first layer's input.
    hidden_dim:
        Cell count of every layer (uniform width, as in the reference
        architectures).
    num_layers:
        Stack depth.
    dropout:
        Inter-layer dropout probability (applied between layers only,
        never after the last — the standard convention).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.num_layers = num_layers
        self.hidden_dim = hidden_dim
        self._layers: list[LSTM] = []
        self._drops: list[Dropout] = []
        for i in range(num_layers):
            layer = LSTM(
                input_dim if i == 0 else hidden_dim, hidden_dim, rng, dtype
            )
            self.register_module(f"layer{i}", layer)
            self._layers.append(layer)
            if i < num_layers - 1:
                drop = Dropout(dropout, np.random.default_rng(rng.integers(2**63)))
                self.register_module(f"drop{i}", drop)
                self._drops.append(drop)

    def forward(
        self,
        x: np.ndarray,
        state: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> tuple[np.ndarray, dict]:
        """Run all layers; ``state`` is an optional per-layer (h0, c0) list."""
        if state is not None and len(state) != self.num_layers:
            raise ValueError(
                f"state must have {self.num_layers} entries, got {len(state)}"
            )
        caches = []
        out = x
        final_states = []
        for i, layer in enumerate(self._layers):
            out, cache = layer.forward(
                out, state=None if state is None else state[i]
            )
            final_states.append(cache["final_state"])
            drop_cache = None
            if i < self.num_layers - 1:
                out, drop_cache = self._drops[i].forward(out)
            caches.append((cache, drop_cache))
        return out, {"layers": caches, "final_state": final_states}

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        """Backward through the stack; returns grad w.r.t. the input."""
        grad = grad_out
        for i in range(self.num_layers - 1, -1, -1):
            layer_cache, drop_cache = cache["layers"][i]
            if drop_cache is not None:
                grad = self._drops[i].backward(grad, drop_cache)
            grad = self._layers[i].backward(grad, layer_cache)
        return grad
