"""Numerically-stable elementwise and softmax primitives (pure numpy).

All functions are vectorized and allocation-conscious per the project's
HPC guidelines: no Python-level loops over batch elements, stable
log-sum-exp forms throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "dsigmoid",
    "tanh",
    "dtanh",
    "softmax",
    "log_softmax",
    "cross_entropy_from_logits",
    "row_matmul",
]


def row_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Batch-invariant matmul: row ``r`` of the result is ``x[r] @ w``.

    BLAS gemm is *not* row-wise bit-identical across batch sizes — the
    blocking/accumulation order of ``(B, H) @ (H, K)`` depends on ``B``,
    so the same input row produces slightly different outputs in
    different batches (observed at ~1e-15 for every ``B > 1``).  That
    breaks any system whose correctness story is "batching is a
    scheduling optimization, not a numerics change" — notably the
    serving engine's continuous-batching differential test, which
    requires token-identical decodes regardless of batch composition.

    This kernel restores the invariant by computing each output row as
    an independent vector-matrix product, making the result a pure
    function of the row's values.  O(B) small gemv calls instead of one
    gemm: decode-sized (``B <= max_batch``) workloads only.
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if x.ndim != 2 or w.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ValueError(
            f"row_matmul expects (B, H) @ (H, K); got {x.shape} @ {w.shape}"
        )
    out = np.empty((x.shape[0], w.shape[1]), dtype=np.result_type(x, w))
    for r in range(x.shape[0]):
        out[r] = x[r] @ w
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, stable for large |x| (no overflow warnings)."""
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float64)
                        if x.dtype == np.float16 else x.dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def dsigmoid(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid *in terms of its output* ``y = sigmoid(x)``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (alias kept for API symmetry with sigmoid)."""
    return np.tanh(x)


def dtanh(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh in terms of its output ``y = tanh(x)``."""
    return 1.0 - y * y


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def cross_entropy_from_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over rows of ``logits`` and its gradient.

    Parameters
    ----------
    logits:
        ``(n, classes)`` unnormalized scores.
    targets:
        ``(n,)`` integer class indices.

    Returns
    -------
    (loss, dlogits):
        ``loss`` is the mean negative log-likelihood in nats;
        ``dlogits`` is ``(softmax - onehot) / n`` — the gradient of the
        *mean* loss, so per-token scaling is consistent regardless of
        batch shape.
    """
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (n, classes)")
    targets = np.asarray(targets)
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits "
            f"{logits.shape}"
        )
    n = logits.shape[0]
    logp = log_softmax(logits, axis=1)
    rows = np.arange(n)
    loss = float(-logp[rows, targets].mean())
    dlogits = np.exp(logp)
    dlogits[rows, targets] -= 1.0
    dlogits /= n
    return loss, dlogits
