"""LSTM layer with truncated-BPTT backward.

The paper's word LM is one LSTM layer with 2048 cells plus a 512-dim
projection (following Jozefowicz et al.).  The implementation is
batch-vectorized: the only Python loop is over the ``T`` time steps,
with all gate math fused into one ``(B, 4H)`` matmul per step.

Gate ordering within the fused weight matrices is ``[i, f, g, o]``
(input, forget, candidate, output).
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .functional import dsigmoid, dtanh, row_matmul, sigmoid, tanh
from .module import Module
from .parameter import Parameter

__all__ = ["LSTM"]


class LSTM(Module):
    """Single-layer LSTM over ``(B, T, input_dim)`` sequences.

    Parameters
    ----------
    input_dim, hidden_dim:
        Input feature size and cell count.
    rng:
        Initialization generator — Xavier for input weights, orthogonal
        for recurrent weights, forget-gate bias = 1 (the standard
        trainability trick).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        h = hidden_dim
        self.w_x = Parameter(
            init.xavier_uniform((input_dim, 4 * h), rng, dtype), name="lstm.w_x"
        )
        self.w_h = Parameter(
            np.concatenate(
                [init.orthogonal((h, h), rng, dtype=dtype) for _ in range(4)], axis=1
            ),
            name="lstm.w_h",
        )
        bias = init.zeros((4 * h,), dtype)
        bias[h : 2 * h] = 1.0  # forget gate bias
        self.bias = Parameter(bias, name="lstm.bias")

    def step(
        self,
        x: np.ndarray,
        state: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """One decode time step over a ``(B, input_dim)`` batch of rows.

        The inference kernel for the serving path: all matmuls go through
        :func:`~repro.nn.functional.row_matmul`, so row ``r`` of the
        output depends only on row ``r`` of ``x`` and ``state`` — the
        result is bit-identical whatever batch the row is scheduled into.
        Returns ``(h, (h, c))``; no caches, no gradients.
        """
        H = self.hidden_dim
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected (B, {self.input_dim}), got {x.shape}")
        h_prev, c_prev = state
        if h_prev.shape != x.shape[:1] + (H,) or c_prev.shape != h_prev.shape:
            raise ValueError("state shape does not match the batch")
        z = row_matmul(x, self.w_x.data) + self.bias.data
        z += row_matmul(h_prev, self.w_h.data)
        i = sigmoid(z[:, :H])
        f = sigmoid(z[:, H : 2 * H])
        g = tanh(z[:, 2 * H : 3 * H])
        o = sigmoid(z[:, 3 * H :])
        c = f * c_prev + i * g
        h = o * tanh(c)
        return h, (h, c)

    def forward(
        self,
        x: np.ndarray,
        state: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, dict]:
        """Run the sequence; returns ``(hidden_states, cache)``.

        ``hidden_states`` has shape ``(B, T, H)``.  ``state`` is an
        optional ``(h0, c0)`` carry-in of shape ``(B, H)`` each (for
        stateful truncated BPTT across windows); the carried state is
        treated as constant (gradients are truncated at the window edge,
        matching standard LM training).  The final state is available in
        ``cache["final_state"]``.
        """
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(f"expected (B, T, {self.input_dim}), got {x.shape}")
        B, T, _ = x.shape
        H = self.hidden_dim
        dtype = self.w_x.data.dtype
        if state is None:
            h_prev = np.zeros((B, H), dtype)
            c_prev = np.zeros((B, H), dtype)
        else:
            h_prev, c_prev = state
            if h_prev.shape != (B, H) or c_prev.shape != (B, H):
                raise ValueError("carried state has wrong shape")
            h_prev = h_prev.astype(dtype, copy=True)
            c_prev = c_prev.astype(dtype, copy=True)

        # Hoist the input projection out of the time loop: one big matmul.
        x_proj = x.reshape(B * T, -1) @ self.w_x.data + self.bias.data
        x_proj = x_proj.reshape(B, T, 4 * H)

        hs = np.empty((B, T, H), dtype)
        gates = np.empty((B, T, 4 * H), dtype)  # post-activation i,f,g,o
        cells = np.empty((B, T, H), dtype)
        c_prevs = np.empty((B, T, H), dtype)

        for t in range(T):
            z = x_proj[:, t] + h_prev @ self.w_h.data
            i = sigmoid(z[:, :H])
            f = sigmoid(z[:, H : 2 * H])
            g = tanh(z[:, 2 * H : 3 * H])
            o = sigmoid(z[:, 3 * H :])
            c_prevs[:, t] = c_prev
            c = f * c_prev + i * g
            h = o * tanh(c)
            gates[:, t, :H] = i
            gates[:, t, H : 2 * H] = f
            gates[:, t, 2 * H : 3 * H] = g
            gates[:, t, 3 * H :] = o
            cells[:, t] = c
            hs[:, t] = h
            h_prev, c_prev = h, c

        cache = {
            "x": x,
            "hs": hs,
            "gates": gates,
            "cells": cells,
            "c_prevs": c_prevs,
            "h0": state[0] if state is not None else np.zeros((B, H), dtype),
            "final_state": (h_prev.copy(), c_prev.copy()),
        }
        return hs, cache

    def backward(self, grad_hs: np.ndarray, cache: dict) -> np.ndarray:
        """BPTT; accumulates weight grads, returns grad w.r.t. input x."""
        x, hs = cache["x"], cache["hs"]
        gates, cells, c_prevs = cache["gates"], cache["cells"], cache["c_prevs"]
        B, T, H = hs.shape
        if grad_hs.shape != (B, T, H):
            raise ValueError(f"grad shape {grad_hs.shape} != {(B, T, H)}")

        dz_all = np.empty((B, T, 4 * H), hs.dtype)
        dh_next = np.zeros((B, H), hs.dtype)
        dc_next = np.zeros((B, H), hs.dtype)
        w_h = self.w_h.data

        for t in range(T - 1, -1, -1):
            i = gates[:, t, :H]
            f = gates[:, t, H : 2 * H]
            g = gates[:, t, 2 * H : 3 * H]
            o = gates[:, t, 3 * H :]
            c = cells[:, t]
            tanh_c = np.tanh(c)

            dh = grad_hs[:, t] + dh_next
            do = dh * tanh_c
            dc = dh * o * dtanh(tanh_c) + dc_next
            di = dc * g
            df = dc * c_prevs[:, t]
            dg = dc * i

            dz = dz_all[:, t]
            dz[:, :H] = di * dsigmoid(i)
            dz[:, H : 2 * H] = df * dsigmoid(f)
            dz[:, 2 * H : 3 * H] = dg * dtanh(g)
            dz[:, 3 * H :] = do * dsigmoid(o)

            dh_next = dz @ w_h.T
            dc_next = dc * f

        # Weight gradients as two big matmuls over the whole window.
        dz2d = dz_all.reshape(B * T, 4 * H)
        self.w_x.accumulate_grad(x.reshape(B * T, -1).T @ dz2d)
        h_prev_seq = np.concatenate(
            [cache["h0"][:, None, :], hs[:, :-1]], axis=1
        ).reshape(B * T, H)
        self.w_h.accumulate_grad(h_prev_seq.T @ dz2d)
        self.bias.accumulate_grad(dz2d.sum(axis=0))
        return (dz2d @ self.w_x.data.T).reshape(x.shape)
