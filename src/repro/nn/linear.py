"""Fully-connected (projection) layer.

Used for the word LM's 2048 -> 512 LSTM projection and as a generic
building block.  Operates on inputs of any leading shape ``(..., in_dim)``.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .module import Module
from .parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with Xavier-uniform initialization."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("dimensions must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(
            init.xavier_uniform((in_dim, out_dim), rng, dtype), name="linear.weight"
        )
        self.bias: Parameter | None
        if bias:
            self.bias = Parameter(init.zeros((out_dim,), dtype), name="linear.bias")
        else:
            object.__setattr__(self, "bias", None)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"input dim {x.shape[-1]} != {self.in_dim}")
        y = x @ self.weight.data
        if self.bias is not None:
            y += self.bias.data
        return y, {"x": x}

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        """Accumulate weight/bias grads; return gradient w.r.t. input."""
        x = cache["x"]
        if grad_out.shape != x.shape[:-1] + (self.out_dim,):
            raise ValueError(f"bad grad shape {grad_out.shape}")
        x2d = x.reshape(-1, self.in_dim)
        g2d = grad_out.reshape(-1, self.out_dim)
        self.weight.accumulate_grad(x2d.T @ g2d)
        if self.bias is not None:
            self.bias.accumulate_grad(g2d.sum(axis=0))
        return (g2d @ self.weight.data.T).reshape(x.shape)
