"""Module base class: parameter registration and traversal.

A deliberately small contract (this is a training *system*, not a full
autograd framework): modules own :class:`~repro.nn.parameter.Parameter`
objects and submodules, expose ``forward(...)`` returning
``(output, cache)`` and ``backward(grad, cache)`` accumulating into
parameter gradients and returning the gradient w.r.t. the input.  The
explicit cache keeps the SPMD trainer free to interleave many rank
replicas without hidden state leaking between them.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator

from .parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # -- registration --------------------------------------------------

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if name in self._parameters or name in self._modules:
            raise ValueError(f"duplicate registration: {name!r}")
        if not param.name:
            param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if name in self._parameters or name in self._modules:
            raise ValueError(f"duplicate registration: {name!r}")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value: object) -> None:
        # Auto-register parameters/modules assigned as attributes,
        # mirroring the convenience of torch.nn.Module.
        if isinstance(value, Parameter) and not name.startswith("_"):
            self.register_parameter(name, value)
        elif isinstance(value, Module) and not name.startswith("_"):
            self.register_module(name, value)
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """All parameters of this module and submodules, depth-first.

        Shared (tied) parameters are yielded **once** — at their first
        position — so optimizers never double-update a tied embedding.
        """
        for _, p in self.named_parameters():
            yield p

    def named_parameters(
        self, prefix: str = "", _seen: set[int] | None = None
    ) -> Iterator[tuple[str, Parameter]]:
        """Qualified (name, parameter) pairs, tied parameters deduplicated."""
        seen = _seen if _seen is not None else set()
        for name, p in self._parameters.items():
            if id(p) in seen:
                continue
            seen.add(id(p))
            yield (f"{prefix}{name}", p)
        for mod_name, sub in self._modules.items():
            yield from sub.named_parameters(
                prefix=f"{prefix}{mod_name}.", _seen=seen
            )

    def modules(self) -> Iterator["Module"]:
        yield self
        for sub in self._modules.values():
            yield from sub.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Qualified (path, module) pairs, depth-first; the root is ``""``.

        Paths join registration names with ``.`` (``"dropout"``,
        ``"lstm.cell"``), mirroring :meth:`named_parameters` — they key
        the per-module RNG streams in :meth:`rng_state`.
        """
        yield prefix, self
        for name, sub in self._modules.items():
            child = f"{prefix}.{name}" if prefix else name
            yield from sub.named_modules(prefix=child)

    # -- state ------------------------------------------------------------

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict:
        """Copy of every parameter's data, keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        """Restore parameters from :meth:`state_dict` output.

        Names and shapes must match exactly — a checkpoint from a
        different architecture is an error, not a silent partial load.
        """
        params = dict(self.named_parameters())
        if set(state) != set(params):
            missing = set(params) - set(state)
            extra = set(state) - set(params)
            raise ValueError(
                f"state dict mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        for name, data in state.items():
            p = params[name]
            if data.shape != p.data.shape:
                raise ValueError(
                    f"{name}: checkpoint shape {data.shape} != "
                    f"parameter shape {p.data.shape}"
                )
            p.data = data.astype(p.data.dtype, copy=True)

    def rng_state(self) -> dict:
        """Bit-generator states of every stateful RNG stream in the tree.

        A module owns a stateful stream when it stores a
        ``numpy.random.Generator`` in a ``_rng`` attribute (the
        convention :class:`~repro.nn.dropout.Dropout` follows).  Keys
        are :meth:`named_modules` paths; values are the bit generators'
        ``.state`` dicts.  Together with :meth:`state_dict` this makes a
        replica's forward pass fully reproducible — the checkpoint-v2
        format persists both.
        """
        states = {}
        for path, mod in self.named_modules():
            rng = getattr(mod, "_rng", None)
            if rng is not None and hasattr(rng, "bit_generator"):
                states[path] = copy.deepcopy(rng.bit_generator.state)
        return states

    def set_rng_state(self, states: dict) -> None:
        """Restore streams captured by :meth:`rng_state`.

        Unknown paths or paths without a stateful stream raise — a
        checkpoint from a different architecture is an error, not a
        silent partial restore.  Modules with streams *absent* from
        ``states`` are left untouched (the backward-compat path for
        version-1 checkpoints, which carried no RNG state).
        """
        mods = dict(self.named_modules())
        for path, state in states.items():
            if path not in mods:
                raise ValueError(f"no module at path {path!r}")
            rng = getattr(mods[path], "_rng", None)
            if rng is None or not hasattr(rng, "bit_generator"):
                raise ValueError(f"module at {path!r} has no RNG stream")
            rng.bit_generator.state = copy.deepcopy(state)

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's char model: 213M)."""
        return sum(p.data.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())
