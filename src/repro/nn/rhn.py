"""Recurrent Highway Network (RHN) layer.

The paper's character LM (Section IV-B) is an RHN of recurrence depth 10
with 1792 cells, after Zilly et al. / Hestness et al. [38].  An RHN step
stacks ``depth`` highway micro-layers inside each time step:

.. math::

    h_l = \\tanh(W_H x_t \\cdot [l{=}1] + R_{H,l} s_{l-1} + b_{H,l}) \\\\
    t_l = \\sigma(W_T x_t \\cdot [l{=}1] + R_{T,l} s_{l-1} + b_{T,l}) \\\\
    s_l = h_l \\odot t_l + s_{l-1} \\odot (1 - t_l)

with the carry gate coupled to the transform gate (``c = 1 - t``), and
the input injected only at the first micro-layer.  The time-step output
is the final micro-layer state ``s_L``.

Transform-gate biases start negative (-2) so early training passes state
through, the standard highway trick.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .functional import dsigmoid, dtanh, row_matmul, sigmoid, tanh
from .module import Module
from .parameter import Parameter

__all__ = ["RHN"]


class RHN(Module):
    """Recurrent highway layer over ``(B, T, input_dim)`` sequences.

    Parameters
    ----------
    input_dim, hidden_dim:
        Input feature size and state width.
    depth:
        Recurrence depth (micro-layers per time step); the paper uses 10.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        depth: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.depth = depth
        H = hidden_dim
        # Fused [h | t] input projection, first micro-layer only.
        self.w_x = Parameter(
            init.xavier_uniform((input_dim, 2 * H), rng, dtype), name="rhn.w_x"
        )
        # Per-micro-layer recurrent weights, fused [h | t]: (L, H, 2H).
        rec = np.stack(
            [
                np.concatenate(
                    [
                        init.orthogonal((H, H), rng, dtype=dtype),
                        init.orthogonal((H, H), rng, dtype=dtype),
                    ],
                    axis=1,
                )
                for _ in range(depth)
            ]
        )
        self.r = Parameter(rec, name="rhn.r")
        bias = np.zeros((depth, 2 * H), dtype)
        bias[:, H:] = -2.0  # open carry gates initially
        self.bias = Parameter(bias, name="rhn.bias")

    def step(
        self, x: np.ndarray, state: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One decode time step over a ``(B, input_dim)`` batch of rows.

        Inference kernel for the serving path, mirroring
        :meth:`repro.nn.lstm.LSTM.step`: every matmul runs through
        :func:`~repro.nn.functional.row_matmul` so each row's output is
        bit-identical regardless of the batch it rides in.  Returns
        ``(s, s)`` — the RHN's per-step output *is* its new state.
        """
        H, L = self.hidden_dim, self.depth
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected (B, {self.input_dim}), got {x.shape}")
        if state.shape != x.shape[:1] + (H,):
            raise ValueError("state shape does not match the batch")
        x_proj = row_matmul(x, self.w_x.data)
        s = state
        for l in range(L):
            z = row_matmul(s, self.r.data[l]) + self.bias.data[l]
            if l == 0:
                z = z + x_proj
            h = tanh(z[:, :H])
            tg = sigmoid(z[:, H:])
            s = h * tg + s * (1.0 - tg)
        return s, s

    def forward(
        self, x: np.ndarray, state: np.ndarray | None = None
    ) -> tuple[np.ndarray, dict]:
        """Returns ``(outputs, cache)`` with outputs of shape ``(B, T, H)``.

        ``state`` is an optional ``(B, H)`` carry-in (gradient-truncated
        at the window edge).  Final state in ``cache["final_state"]``.
        """
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(f"expected (B, T, {self.input_dim}), got {x.shape}")
        B, T, _ = x.shape
        H, L = self.hidden_dim, self.depth
        dtype = self.w_x.data.dtype
        s = (
            np.zeros((B, H), dtype)
            if state is None
            else state.astype(dtype, copy=True)
        )
        if s.shape != (B, H):
            raise ValueError("carried state has wrong shape")

        x_proj = (x.reshape(B * T, -1) @ self.w_x.data).reshape(B, T, 2 * H)

        outputs = np.empty((B, T, H), dtype)
        # caches indexed [t][l]
        h_cache = np.empty((B, T, L, H), dtype)
        t_cache = np.empty((B, T, L, H), dtype)
        s_in_cache = np.empty((B, T, L, H), dtype)

        for t in range(T):
            for l in range(L):
                z = s @ self.r.data[l] + self.bias.data[l]
                if l == 0:
                    z = z + x_proj[:, t]
                h = tanh(z[:, :H])
                tg = sigmoid(z[:, H:])
                s_in_cache[:, t, l] = s
                h_cache[:, t, l] = h
                t_cache[:, t, l] = tg
                s = h * tg + s * (1.0 - tg)
            outputs[:, t] = s

        cache = {
            "x": x,
            "h": h_cache,
            "t": t_cache,
            "s_in": s_in_cache,
            "final_state": s.copy(),
        }
        return outputs, cache

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        """BPTT through time and depth; returns grad w.r.t. input x."""
        x = cache["x"]
        h_cache, t_cache, s_in = cache["h"], cache["t"], cache["s_in"]
        B, T, L, H = h_cache.shape
        if grad_out.shape != (B, T, H):
            raise ValueError(f"grad shape {grad_out.shape} != {(B, T, H)}")

        dw_x = np.zeros_like(self.w_x.data)
        dr = np.zeros_like(self.r.data)
        dbias = np.zeros_like(self.bias.data)
        dx = np.empty_like(x)
        ds = np.zeros((B, H), x.dtype)

        for t in range(T - 1, -1, -1):
            ds = ds + grad_out[:, t]
            for l in range(L - 1, -1, -1):
                h = h_cache[:, t, l]
                tg = t_cache[:, t, l]
                s_prev = s_in[:, t, l]
                dh = ds * tg
                dtg = ds * (h - s_prev)
                dz_h = dh * dtanh(h)
                dz_t = dtg * dsigmoid(tg)
                dz = np.concatenate([dz_h, dz_t], axis=1)
                dr[l] += s_prev.T @ dz
                dbias[l] += dz.sum(axis=0)
                ds = ds * (1.0 - tg) + dz @ self.r.data[l].T
                if l == 0:
                    dx_proj = dz  # gradient into x_proj[:, t]
                    dx[:, t] = dx_proj @ self.w_x.data.T
                    dw_x += x[:, t].T @ dx_proj

        self.w_x.accumulate_grad(dw_x)
        self.r.accumulate_grad(dr)
        self.bias.accumulate_grad(dbias)
        return dx
