"""Sampled softmax with a log-uniform (Zipfian) candidate sampler.

The word LM's vocabulary (100K) makes the full softmax the dominant
cost, so the paper uses sampled softmax [27, 29]: each GPU scores only
``S`` sampled negative words (1024 per GPU in the experiments) plus the
true targets.  The **candidate sampler's seed** is exactly the lever the
paper's *seeding* technique (Section III-B) controls: GPUs in the same
seed group draw identical candidate sets, restoring inter-GPU word
overlap so the uniqueness technique can compress the output-embedding
gradient exchange.

The sampler is log-uniform over frequency-ranked ids — the standard
choice matching a Zipf corpus (``P(k) ∝ log(1 + 1/(k+1))``), identical
to ``tf.random.log_uniform_candidate_sampler``.

Backward emits **row-sparse** gradients over the candidate rows of the
output embedding — the structure the exchange strategies in
:mod:`repro.core` synchronize.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .functional import cross_entropy_from_logits
from .module import Module
from .parameter import Parameter, SparseGrad

__all__ = ["LogUniformSampler", "SampledSoftmaxLoss"]


class LogUniformSampler:
    """Log-uniform candidate sampler over ids ``0 .. vocab_size-1``.

    ``P(k) = log((k+2)/(k+1)) / log(vocab_size + 1)`` — heavier on small
    ids, matching frequency-ranked vocabularies.  Draws are *unique*
    (sampling without replacement via rejection), as in TF's
    ``unique=True`` mode, and the expected-count correction uses the
    exact inclusion probability ``1 - (1 - p)^S``.
    """

    def __init__(self, vocab_size: int):
        if vocab_size <= 1:
            raise ValueError("vocab_size must exceed 1")
        self.vocab_size = vocab_size
        self._log_range = np.log(vocab_size + 1.0)

    def probs(self, ids: np.ndarray) -> np.ndarray:
        """Per-draw probability of each id."""
        ids = np.asarray(ids, dtype=np.float64)
        return np.log((ids + 2.0) / (ids + 1.0)) / self._log_range

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` unique ids (ascending order not guaranteed)."""
        if not 0 < n <= self.vocab_size:
            raise ValueError(f"cannot draw {n} unique ids from {self.vocab_size}")
        chosen: list[int] = []
        seen: set[int] = set()
        # Rejection loop: each round draws the remaining count with the
        # inverse-CDF transform; expected rounds is O(1) for n << V.
        while len(chosen) < n:
            need = n - len(chosen)
            draws = np.exp(rng.random(need * 2 + 8) * self._log_range) - 1.0
            ids = np.minimum(draws.astype(np.int64), self.vocab_size - 1)
            for k in ids:
                ik = int(k)
                if ik not in seen:
                    seen.add(ik)
                    chosen.append(ik)
                    if len(chosen) == n:
                        break
        return np.asarray(chosen, dtype=np.int64)

    def expected_log_count(self, ids: np.ndarray, num_samples: int) -> np.ndarray:
        """``log(P[id appears in a unique sample of size S])`` per id."""
        p = self.probs(ids)
        # 1 - (1-p)^S, computed stably.
        incl = -np.expm1(num_samples * np.log1p(-p))
        return np.log(np.maximum(incl, 1e-300))


class SampledSoftmaxLoss(Module):
    """Output embedding scored over a sampled candidate set.

    Parameters
    ----------
    vocab_size, hidden_dim:
        Output vocabulary and input feature width.
    num_samples:
        ``S`` — negatives drawn per forward call (per GPU).  The paper
        uses 1024.

    Notes
    -----
    The caller supplies the sampling ``rng`` per forward call: the SPMD
    trainer hands each rank the generator its **seed group** dictates,
    which is the entire mechanism of the seeding technique.
    """

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int,
        num_samples: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
        weight: Parameter | None = None,
    ):
        super().__init__()
        if vocab_size <= 1 or hidden_dim <= 0:
            raise ValueError("bad dimensions")
        if not 0 < num_samples < vocab_size:
            raise ValueError("need 0 < num_samples < vocab_size")
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.num_samples = num_samples
        self.sampler = LogUniformSampler(vocab_size)
        if weight is not None:
            # Tied output embedding: share the caller's parameter (the
            # input embedding, typically).  Module traversal deduplicates
            # shared parameters, so optimizers update it exactly once.
            if weight.data.shape != (vocab_size, hidden_dim):
                raise ValueError(
                    f"tied weight shape {weight.data.shape} != "
                    f"({vocab_size}, {hidden_dim})"
                )
            self.weight = weight
        else:
            self.weight = Parameter(
                init.uniform(
                    (vocab_size, hidden_dim), 1.0 / np.sqrt(hidden_dim), rng, dtype
                ),
                name="sampled_softmax.weight",
            )

    def forward(
        self,
        hidden: np.ndarray,
        targets: np.ndarray,
        sample_rng: np.random.Generator,
        sampled_ids: np.ndarray | None = None,
    ) -> tuple[float, dict]:
        """Sampled-softmax mean NLL.

        ``sampled_ids`` overrides the draw (used by tests and by ranks
        sharing a seed group that pre-draw once); otherwise ``S`` unique
        negatives are drawn from ``sample_rng``.
        """
        if hidden.ndim != 2 or hidden.shape[1] != self.hidden_dim:
            raise ValueError(f"hidden must be (N, {self.hidden_dim})")
        targets = np.asarray(targets)
        if targets.shape != (hidden.shape[0],):
            raise ValueError("targets must be (N,)")
        if sampled_ids is None:
            sampled_ids = self.sampler.sample(self.num_samples, sample_rng)
        else:
            sampled_ids = np.asarray(sampled_ids, dtype=np.int64)
            if sampled_ids.ndim != 1:
                raise ValueError("sampled_ids must be 1-D")

        E = self.weight.data
        # Scores with the log-Q correction (subtract expected log count).
        true_logit = (hidden * E[targets]).sum(axis=1)
        true_logit = true_logit - self.sampler.expected_log_count(
            targets, self.num_samples
        )
        samp_logits = hidden @ E[sampled_ids].T
        samp_logits = samp_logits - self.sampler.expected_log_count(
            sampled_ids, self.num_samples
        )
        # Remove accidental hits: a negative equal to the row's target
        # would duplicate the true class.
        hit_mask = sampled_ids[None, :] == targets[:, None]
        samp_logits = np.where(hit_mask, -1e30, samp_logits)

        logits = np.concatenate([true_logit[:, None], samp_logits], axis=1)
        labels = np.zeros(hidden.shape[0], dtype=np.int64)
        loss, dlogits = cross_entropy_from_logits(logits, labels)
        cache = {
            "hidden": hidden,
            "targets": targets,
            "sampled_ids": sampled_ids,
            "dlogits": dlogits,
            "hit_mask": hit_mask,
        }
        return loss, cache

    def full_nll(self, hidden: np.ndarray, targets: np.ndarray) -> float:
        """Exact mean NLL over the *full* vocabulary (evaluation only).

        Sampled-softmax training losses are biased estimates; validation
        perplexity (Figures 5 and 7) must score against the whole
        vocabulary, which is affordable out of the training loop.
        """
        if hidden.ndim != 2 or hidden.shape[1] != self.hidden_dim:
            raise ValueError(f"hidden must be (N, {self.hidden_dim})")
        targets = np.asarray(targets)
        logits = hidden @ self.weight.data.T
        loss, _ = cross_entropy_from_logits(logits, targets)
        return loss

    def backward(self, cache: dict, loss_scale: float = 1.0) -> np.ndarray:
        """Accumulate sparse output-embedding grads; return dhidden."""
        hidden = cache["hidden"]
        targets = cache["targets"]
        sampled_ids = cache["sampled_ids"]
        dlogits = cache["dlogits"]
        if loss_scale != 1.0:
            dlogits = dlogits * loss_scale
        d_true = dlogits[:, 0]
        d_samp = np.where(cache["hit_mask"], 0.0, dlogits[:, 1:])

        E = self.weight.data
        dhidden = d_true[:, None] * E[targets] + d_samp @ E[sampled_ids]

        # Sparse grads: one row per true target token, plus the shared
        # candidate rows.
        self.weight.accumulate_sparse_grad(
            SparseGrad(indices=targets.astype(np.int64),
                       values=d_true[:, None] * hidden)
        )
        self.weight.accumulate_sparse_grad(
            SparseGrad(indices=sampled_ids, values=d_samp.T @ hidden)
        )
        return dhidden
