"""Pure-numpy neural-network stack: embeddings with sparse gradients,
LSTM and Recurrent Highway layers, full and sampled softmax losses."""

from . import functional, init
from .batched import BatchedCharLMExecutor, build_batched_executor
from .dropout import Dropout
from .dtypes import ACC_DTYPE, DTYPE
from .embedding import Embedding
from .linear import Linear
from .lstm import LSTM
from .module import Module
from .parallel import (
    ColumnParallelLinear,
    ParallelEmbedding,
    PipelineSchedule,
    RowParallelLinear,
    VocabParallelSampledSoftmax,
    shard_bounds,
)
from .parameter import Parameter, SparseGrad
from .rhn import RHN
from .stacked import StackedLSTM
from .sampled_softmax import LogUniformSampler, SampledSoftmaxLoss
from .softmax import FullSoftmaxLoss

__all__ = [
    "functional",
    "init",
    "DTYPE",
    "ACC_DTYPE",
    "Module",
    "Parameter",
    "SparseGrad",
    "BatchedCharLMExecutor",
    "build_batched_executor",
    "Embedding",
    "Linear",
    "LSTM",
    "RHN",
    "StackedLSTM",
    "Dropout",
    "FullSoftmaxLoss",
    "SampledSoftmaxLoss",
    "LogUniformSampler",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "ParallelEmbedding",
    "VocabParallelSampledSoftmax",
    "PipelineSchedule",
    "shard_bounds",
]
