"""Inverted dropout.

The char LM (Section IV-B) trains with dropout; inverted scaling keeps
eval-mode forward passes identity, so no rescaling is needed at test
time.  The mask generator is explicit so SPMD rank replicas can use
de-correlated streams while remaining reproducible.
"""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Drop activations with probability ``p`` during training."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        if not self.training or self.p == 0.0:
            return x, {"mask": None}
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * mask, {"mask": mask}

    def backward(self, grad_out: np.ndarray, cache: dict) -> np.ndarray:
        mask = cache["mask"]
        if mask is None:
            return grad_out
        if grad_out.shape != mask.shape:
            raise ValueError("gradient shape does not match forward shape")
        return grad_out * mask
