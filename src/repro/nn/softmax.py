"""Full-softmax output layer with cross-entropy loss.

Used by the character LM (small vocabulary — the paper notes seeding is
unnecessary there because full softmax is affordable).  The layer owns
the ``|V| x H`` output embedding matrix and projects hidden states to
per-word scores; the loss gradient is **dense** over the vocabulary, so
it synchronizes with a plain ALLREDUCE like any RNN weight.
"""

from __future__ import annotations

import numpy as np

from . import init
from .dtypes import DTYPE
from .functional import cross_entropy_from_logits
from .module import Module
from .parameter import Parameter

__all__ = ["FullSoftmaxLoss"]


class FullSoftmaxLoss(Module):
    """Output embedding + softmax + mean cross-entropy.

    Parameters
    ----------
    vocab_size, hidden_dim:
        ``|V|`` output classes; ``H`` input feature width.
    """

    def __init__(
        self,
        vocab_size: int,
        hidden_dim: int,
        rng: np.random.Generator,
        dtype: np.dtype = DTYPE,
    ):
        super().__init__()
        if vocab_size <= 1 or hidden_dim <= 0:
            raise ValueError("bad dimensions")
        self.vocab_size = vocab_size
        self.hidden_dim = hidden_dim
        self.weight = Parameter(
            init.uniform(
                (vocab_size, hidden_dim), 1.0 / np.sqrt(hidden_dim), rng, dtype
            ),
            name="softmax.weight",
        )
        self.bias = Parameter(init.zeros((vocab_size,), dtype), name="softmax.bias")

    def forward(
        self, hidden: np.ndarray, targets: np.ndarray
    ) -> tuple[float, dict]:
        """Mean NLL (nats/token) of ``targets`` given ``hidden`` rows."""
        if hidden.ndim != 2 or hidden.shape[1] != self.hidden_dim:
            raise ValueError(f"hidden must be (N, {self.hidden_dim})")
        targets = np.asarray(targets)
        if targets.shape != (hidden.shape[0],):
            raise ValueError("targets must be (N,)")
        logits = hidden @ self.weight.data.T + self.bias.data
        loss, dlogits = cross_entropy_from_logits(logits, targets)
        return loss, {"hidden": hidden, "dlogits": dlogits}

    def backward(self, cache: dict, loss_scale: float = 1.0) -> np.ndarray:
        """Accumulate (dense) output-embedding grads; return dhidden.

        ``loss_scale`` multiplies the gradient at the source — the
        loss-scaling hook used by FP16 training (Section III-C).
        """
        hidden, dlogits = cache["hidden"], cache["dlogits"]
        if loss_scale != 1.0:
            dlogits = dlogits * loss_scale
        self.weight.accumulate_grad(dlogits.T @ hidden)
        self.bias.accumulate_grad(dlogits.sum(axis=0))
        return dlogits @ self.weight.data
