"""Adam with decoupled weight decay and lazy sparse-row updates.

The character LM (Section IV-B) trains with "Adam with weight decay".
Dense parameters follow standard Adam(W); embedding-style parameters
with sparse gradients use **lazy** moment updates — first and second
moments advance only for the rows a step actually touched (TF/Keras
``LazyAdam`` semantics).  Lazy updates keep per-step cost proportional
to the number of *types* in the batch, consistent with the whole point
of sparse exchange.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..nn.dtypes import ACC_DTYPE
from ..nn.parameter import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam(W) optimizer.

    Parameters
    ----------
    params:
        Parameters to update.
    lr, beta1, beta2, eps:
        Standard Adam hyper-parameters.
    weight_decay:
        Decoupled (AdamW-style) decay coefficient; 0 disables.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0
        # Per-row step counters for lazy bias correction on sparse params.
        self._row_t = [
            np.zeros(p.data.shape[0], dtype=np.int64) if p.data.ndim == 2 else None
            for p in self.params
        ]

    def state_dict(self) -> dict:
        """Moments, per-row step counters and the global step counter."""
        state: dict = {"lr": self.lr, "t": self._t}
        for i in range(len(self.params)):
            state[f"m{i}"] = self._m[i].copy()
            state[f"v{i}"] = self._v[i].copy()
            if self._row_t[i] is not None:
                state[f"row_t{i}"] = self._row_t[i].copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._t = int(state["t"])
        # Rebinds the moment arrays below, orphaning any pooled views.
        self._state_epoch += 1
        for i in range(len(self.params)):
            m, v = state[f"m{i}"], state[f"v{i}"]
            if m.shape != self._m[i].shape or v.shape != self._v[i].shape:
                raise ValueError(f"optimizer state {i} has the wrong shape")
            self._m[i] = m.copy()
            self._v[i] = v.copy()
            if self._row_t[i] is not None:
                self._row_t[i] = state[f"row_t{i}"].copy()

    # Pooled-replication state (see :meth:`_pool_storage`):
    _flat_data: np.ndarray | None = None
    _flat_state: np.ndarray | None = None
    _flat_rows: np.ndarray | None = None
    _flat_views: tuple | None = None
    _pool_failed: bool = False
    # Bumped whenever this optimizer rebinds its own state arrays
    # (``load_state_dict``); lets :meth:`_pooled` validate the moment
    # views in O(1) instead of per-array identity checks.  Parameter
    # ``data`` rebinds happen outside the optimizer (module checkpoint
    # loads), so those stay identity-checked.
    _state_epoch: int = 0
    _pooled_epoch: int = -1

    def _pool_storage(self, backing: tuple | None = None) -> bool:
        """Repack parameters and moments as views of flat buffers.

        Replication then costs two or three large ``np.copyto`` calls
        instead of ~3 per parameter — the difference between O(params)
        Python dispatches and O(1) at G=512.  Values are preserved
        exactly (the views alias fresh contiguous storage holding the
        same bits); in-place updates (``step``, grad application) work
        unchanged.  Requires a uniform floating dtype across parameters;
        otherwise pooling is permanently skipped and the per-array copy
        path is used.

        ``backing`` optionally supplies the ``(data, state, rows)`` flat
        buffers to pack into — :meth:`replicate_group` passes rows of one
        group-wide block so a whole replica set replicates with three
        bulk copies total.
        """
        dtype = self.params[0].data.dtype
        if any(p.data.dtype != dtype for p in self.params):
            self._pool_failed = True
            return False
        total = sum(p.data.size for p in self.params)
        n_rows = sum(rt.size for rt in self._row_t if rt is not None)
        if backing is not None:
            flat_data, flat_state, flat_rows = backing
        else:
            flat_data = np.empty(total, dtype)
            flat_state = np.empty(2 * total, dtype)
            flat_rows = np.empty(n_rows, np.int64) if n_rows else None
        off = row_off = 0
        for i, p in enumerate(self.params):
            n = p.data.size
            dv = flat_data[off : off + n].reshape(p.data.shape)
            dv[...] = p.data
            p.data = dv
            mv = flat_state[2 * off : 2 * off + n].reshape(p.data.shape)
            mv[...] = self._m[i]
            self._m[i] = mv
            vv = flat_state[2 * off + n : 2 * off + 2 * n].reshape(
                p.data.shape
            )
            vv[...] = self._v[i]
            self._v[i] = vv
            off += n
            rt = self._row_t[i]
            if rt is not None:
                rv = flat_rows[row_off : row_off + rt.size]
                rv[...] = rt
                self._row_t[i] = rv
                row_off += rt.size
        self._flat_data = flat_data
        self._flat_state = flat_state
        self._flat_rows = flat_rows
        self._flat_views = tuple(p.data for p in self.params)
        self._pooled_epoch = self._state_epoch
        return True

    def _pooled(self) -> bool:
        """Whether the flat buffers still back every live array.

        Checkpoint loads rebind arrays, silently orphaning the views.
        The optimizer's own rebinds (``load_state_dict``) are caught by
        the epoch counter; parameter ``data`` rebinds (module checkpoint
        loads) by per-parameter identity.  Verified on every replication,
        repacked when broken.
        """
        if self._flat_data is None or self._pooled_epoch != self._state_epoch:
            return False
        views = self._flat_views
        for i, p in enumerate(self.params):
            if p.data is not views[i]:
                return False
        return True

    def replicate_from(self, other: "Adam") -> None:
        """Copy ``other``'s parameters and full optimizer state in place.

        Fast-path finisher for batched data-parallel execution: after
        gradient sync all replicas hold bit-identical gradients, so one
        ``step()`` on rank 0 plus a state copy to every other replica is
        bit-for-bit equivalent to stepping each optimizer independently
        — without paying the per-replica Python update loop.  Copies go
        through ``np.copyto`` so every array object (aliased by model
        weights and checkpoints) keeps its identity.  Grads are cleared
        to mirror what this optimizer's own ``step()`` would have done.

        Both sides are lazily repacked onto flat storage
        (:meth:`_pool_storage`) so steady-state replication is a few
        bulk copies; any externally rebound array (checkpoint load)
        triggers a repack, never a stale copy.
        """
        if getattr(self, "_replicate_checked", None) is not other:
            if len(self.params) != len(other.params):
                raise ValueError(
                    "optimizers hold different parameter counts"
                )
            for i, (p, q) in enumerate(zip(self.params, other.params)):
                if p.data.shape != q.data.shape:
                    raise ValueError(f"parameter {i} has mismatched shape")
            self._replicate_checked = other
        self.lr = other.lr
        self._t = other._t
        if not self._pool_failed:
            if (self._pooled() or self._pool_storage()) and (
                other._pooled() or other._pool_storage()
            ):
                np.copyto(self._flat_data, other._flat_data)
                np.copyto(self._flat_state, other._flat_state)
                if self._flat_rows is not None:
                    np.copyto(self._flat_rows, other._flat_rows)
                for p in self.params:
                    p.zero_grad()
                return
        copyto = np.copyto
        m, v, row_t = self._m, self._v, self._row_t
        om, ov, orow_t = other._m, other._v, other._row_t
        for i, (p, q) in enumerate(zip(self.params, other.params)):
            copyto(p.data, q.data)
            copyto(m[i], om[i])
            copyto(v[i], ov[i])
            rt = row_t[i]
            if rt is not None:
                copyto(rt, orow_t[i])
            p.zero_grad()

    _group_cache: tuple | None = None

    @classmethod
    def _pool_group(cls, optimizers: list["Adam"]) -> tuple | None:
        """Pool every optimizer's storage onto rows of one group block.

        Validates that the group is structurally identical (same shapes,
        one dtype), then repacks each optimizer via :meth:`_pool_storage`
        with its row of the shared ``(R, ...)`` buffers as backing.
        Returns the cache tuple for :meth:`replicate_group`, or ``None``
        when the group cannot pool.
        """
        src = optimizers[0]
        dtype = src.params[0].data.dtype
        if dtype.kind != "f":
            return None
        shapes = [p.data.shape for p in src.params]
        for o in optimizers:
            if len(o.params) != len(shapes) or any(
                p.data.shape != s or p.data.dtype != dtype
                for p, s in zip(o.params, shapes)
            ):
                return None
        total = sum(p.data.size for p in src.params)
        n_rows = sum(rt.size for rt in src._row_t if rt is not None)
        world = len(optimizers)
        mega_data = np.empty((world, total), dtype)
        mega_state = np.empty((world, 2 * total), dtype)
        mega_rows = np.empty((world, n_rows), np.int64) if n_rows else None
        for i, o in enumerate(optimizers):
            rows = None if mega_rows is None else mega_rows[i]
            if not o._pool_storage(backing=(mega_data[i], mega_state[i], rows)):
                return None
        flats = tuple(o._flat_data for o in optimizers)
        return (
            tuple(map(id, optimizers)),
            flats,
            mega_data,
            mega_state,
            mega_rows,
        )

    @classmethod
    def replicate_group(cls, optimizers: list["Adam"]) -> bool:
        """Replicate optimizer 0 onto the whole group in O(1) bulk copies.

        Semantically identical to calling
        ``o.replicate_from(optimizers[0])`` for every other member —
        same bits, grads cleared the same way — but the per-optimizer
        flat buffers are themselves rows of one group-wide block, so the
        entire fan-out is three broadcast copies regardless of group
        size.  Storage identity is re-verified every call (checkpoint
        loads rebind arrays) and the group lazily re-pooled when broken.

        Returns ``False`` when the group cannot take the pooled path
        (mixed optimizer types, non-float or mixed dtypes, mismatched
        shapes); the caller then falls back to pairwise
        ``replicate_from``, which reports precise errors.
        """
        if len(optimizers) <= 1:
            return True
        src = optimizers[0]
        if any(type(o) is not cls for o in optimizers):
            return False
        if any(o._pool_failed for o in optimizers):
            return False
        cache = src._group_cache
        key = tuple(map(id, optimizers))
        if (
            cache is None
            or cache[0] != key
            or not all(
                o._flat_data is f and o._pooled()
                for o, f in zip(optimizers, cache[1])
            )
        ):
            cache = cls._pool_group(optimizers)
            if cache is None:
                return False
            src._group_cache = cache
        _key, _flats, mega_data, mega_state, mega_rows = cache
        mega_data[1:] = mega_data[0]
        mega_state[1:] = mega_state[0]
        if mega_rows is not None:
            mega_rows[1:] = mega_rows[0]
        lr, t = src.lr, src._t
        for o in optimizers[1:]:
            o.lr = lr
            o._t = t
            for p in o.params:
                p.zero_grad()
        return True

    def state_bytes(self) -> int:
        """Optimizer-state memory footprint (two moments per parameter)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    def step(self) -> None:
        """Apply one Adam update from accumulated grads, then clear them."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, p in enumerate(self.params):
            if p.grad is not None:
                m, v = self._m[i], self._v[i]
                m *= b1
                m += (1 - b1) * p.grad
                v *= b2
                v += (1 - b2) * p.grad**2
                m_hat = m / (1 - b1**self._t)
                v_hat = v / (1 - b2**self._t)
                if self.weight_decay:
                    p.data -= self.lr * self.weight_decay * p.data
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

            merged = p.merged_sparse_grad()
            if merged is not None:
                rows, g = merged.indices, merged.values
                m, v = self._m[i], self._v[i]
                row_t = self._row_t[i]
                assert row_t is not None
                row_t[rows] += 1
                t_rows = row_t[rows][:, None].astype(ACC_DTYPE)
                m[rows] = b1 * m[rows] + (1 - b1) * g
                v[rows] = b2 * v[rows] + (1 - b2) * g**2
                m_hat = m[rows] / (1 - b1**t_rows)
                v_hat = v[rows] / (1 - b2**t_rows)
                if self.weight_decay:
                    p.data[rows] -= self.lr * self.weight_decay * p.data[rows]
                p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.zero_grad()
