"""Adam with decoupled weight decay and lazy sparse-row updates.

The character LM (Section IV-B) trains with "Adam with weight decay".
Dense parameters follow standard Adam(W); embedding-style parameters
with sparse gradients use **lazy** moment updates — first and second
moments advance only for the rows a step actually touched (TF/Keras
``LazyAdam`` semantics).  Lazy updates keep per-step cost proportional
to the number of *types* in the batch, consistent with the whole point
of sparse exchange.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..nn.dtypes import ACC_DTYPE
from ..nn.parameter import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam(W) optimizer.

    Parameters
    ----------
    params:
        Parameters to update.
    lr, beta1, beta2, eps:
        Standard Adam hyper-parameters.
    weight_decay:
        Decoupled (AdamW-style) decay coefficient; 0 disables.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0
        # Per-row step counters for lazy bias correction on sparse params.
        self._row_t = [
            np.zeros(p.data.shape[0], dtype=np.int64) if p.data.ndim == 2 else None
            for p in self.params
        ]

    def state_dict(self) -> dict:
        """Moments, per-row step counters and the global step counter."""
        state: dict = {"lr": self.lr, "t": self._t}
        for i in range(len(self.params)):
            state[f"m{i}"] = self._m[i].copy()
            state[f"v{i}"] = self._v[i].copy()
            if self._row_t[i] is not None:
                state[f"row_t{i}"] = self._row_t[i].copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._t = int(state["t"])
        for i in range(len(self.params)):
            m, v = state[f"m{i}"], state[f"v{i}"]
            if m.shape != self._m[i].shape or v.shape != self._v[i].shape:
                raise ValueError(f"optimizer state {i} has the wrong shape")
            self._m[i] = m.copy()
            self._v[i] = v.copy()
            if self._row_t[i] is not None:
                self._row_t[i] = state[f"row_t{i}"].copy()

    def state_bytes(self) -> int:
        """Optimizer-state memory footprint (two moments per parameter)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    def step(self) -> None:
        """Apply one Adam update from accumulated grads, then clear them."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, p in enumerate(self.params):
            if p.grad is not None:
                m, v = self._m[i], self._v[i]
                m *= b1
                m += (1 - b1) * p.grad
                v *= b2
                v += (1 - b2) * p.grad**2
                m_hat = m / (1 - b1**self._t)
                v_hat = v / (1 - b2**self._t)
                if self.weight_decay:
                    p.data -= self.lr * self.weight_decay * p.data
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

            merged = p.merged_sparse_grad()
            if merged is not None:
                rows, g = merged.indices, merged.values
                m, v = self._m[i], self._v[i]
                row_t = self._row_t[i]
                assert row_t is not None
                row_t[rows] += 1
                t_rows = row_t[rows][:, None].astype(ACC_DTYPE)
                m[rows] = b1 * m[rows] + (1 - b1) * g
                v[rows] = b2 * v[rows] + (1 - b2) * g**2
                m_hat = m[rows] / (1 - b1**t_rows)
                v_hat = v[rows] / (1 - b2**t_rows)
                if self.weight_decay:
                    p.data[rows] -= self.lr * self.weight_decay * p.data[rows]
                p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.zero_grad()
