"""Mixed-precision training: FP16 parameters with FP32 master weights.

The paper's compression technique borrows its scaling trick from mixed-
precision *training* [33, 34]: keep the model (weights, activations,
gradients) in FP16 for speed and memory, but apply optimizer updates to
an FP32 **master copy** — per-step updates are often smaller than FP16's
resolution at the weight's magnitude, so updating FP16 weights directly
stalls learning ("update swamping").

:class:`MasterWeightOptimizer` wraps any of this package's optimizers:

1. gradients arrive in the model dtype (FP16 if the model is FP16);
2. they are up-cast and handed to the inner optimizer, which updates the
   FP32 master copy;
3. the master is cast back down into the live parameters.

Combine with :class:`~repro.optim.loss_scaler.StaticLossScaler` /
``DynamicLossScaler`` for the full recipe.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from ..nn.parameter import Parameter, SparseGrad

__all__ = ["MasterWeightOptimizer"]


class MasterWeightOptimizer:
    """Wrap an optimizer with FP32 master weights for low-precision models.

    Parameters
    ----------
    params:
        The live (possibly FP16) model parameters.
    inner_factory:
        ``f(master_params, lr) -> optimizer``; the inner optimizer sees
        FP32 shadow parameters and never touches the live ones directly.
    lr:
        Initial learning rate (mutable via the ``lr`` property).
    master_dtype:
        Precision of the master copy (FP32 default; FP64 for tests).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        inner_factory: Callable,
        lr: float,
        master_dtype: np.dtype = np.float32,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        if not np.issubdtype(master_dtype, np.floating):
            raise ValueError("master_dtype must be floating point")
        self.masters = [
            Parameter(p.data.astype(master_dtype), name=f"{p.name}.master")
            for p in self.params
        ]
        self.inner = inner_factory(self.masters, lr)

    @property
    def lr(self) -> float:
        return self.inner.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.inner.lr = value

    def step(self) -> None:
        """Move gradients to the masters, update, cast back down."""
        master_dtype = self.masters[0].data.dtype
        for live, master in zip(self.params, self.masters):
            if live.grad is not None:
                master.accumulate_grad(live.grad.astype(master_dtype))
            for sparse in live.sparse_grads:
                master.accumulate_sparse_grad(
                    SparseGrad(
                        indices=sparse.indices,
                        values=sparse.values.astype(master_dtype),
                    )
                )
            live.zero_grad()
        self.inner.step()
        for live, master in zip(self.params, self.masters):
            live.data = master.data.astype(live.data.dtype)

    def state_dict(self) -> dict:
        """Inner-optimizer state plus the master copies."""
        state = {f"inner/{k}": v for k, v in self.inner.state_dict().items()}
        for i, master in enumerate(self.masters):
            state[f"master{i}"] = master.data.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.inner.load_state_dict(
            {
                k[len("inner/"):]: v
                for k, v in state.items()
                if k.startswith("inner/")
            }
        )
        for i, (live, master) in enumerate(zip(self.params, self.masters)):
            data = state[f"master{i}"]
            if data.shape != master.data.shape:
                raise ValueError(f"master {i} has the wrong shape")
            master.data = data.copy()
            live.data = master.data.astype(live.data.dtype)
