"""Optimizers (sparse-aware SGD/Adam), LR scaling rules, loss scalers."""

from .adam import Adam
from .loss_scaler import (
    PAPER_SCALE_FACTORS,
    DynamicLossScaler,
    StaticLossScaler,
    grads_are_finite,
    is_power_of_two,
)
from .lr_schedule import EpochDecaySchedule, scaled_base_lr
from .mixed_precision import MasterWeightOptimizer
from .sgd import SGD

__all__ = [
    "SGD",
    "Adam",
    "MasterWeightOptimizer",
    "EpochDecaySchedule",
    "scaled_base_lr",
    "StaticLossScaler",
    "DynamicLossScaler",
    "grads_are_finite",
    "is_power_of_two",
    "PAPER_SCALE_FACTORS",
]
