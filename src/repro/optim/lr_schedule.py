"""Learning-rate scaling and decay rules from Section IV-B.

The paper scales the base learning rate by ``ln(#nodes)`` as GPUs grow
(0.2 base for the word LM, 1e-3 for the char LM; e.g. 0.41 at 64 GPUs =
8 nodes x 8 GPUs gives ``0.2 * ln(8) = 0.416``) and decays per epoch by
a factor in 0.85-0.95.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["scaled_base_lr", "EpochDecaySchedule"]


def scaled_base_lr(base_lr: float, num_nodes: int) -> float:
    """``base_lr * ln(num_nodes)`` with the single-node case left at base.

    ``ln(1) = 0`` would zero the rate, so one node (<= 8 GPUs in the
    paper's layout) uses the unscaled base — matching the paper's use of
    the 8-GPU run as the baseline with the base rate.
    """
    if base_lr <= 0:
        raise ValueError("base_lr must be positive")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if num_nodes == 1:
        return base_lr
    return base_lr * math.log(num_nodes)


@dataclass(frozen=True)
class EpochDecaySchedule:
    """Multiplicative per-epoch decay: ``lr(e) = lr0 * decay^e``.

    ``decay`` must lie in the paper's evaluated range [0.85, 0.95] unless
    ``strict`` is disabled.
    """

    initial_lr: float
    decay: float = 0.9
    strict: bool = True

    def __post_init__(self) -> None:
        if self.initial_lr <= 0:
            raise ValueError("initial_lr must be positive")
        if not 0 < self.decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        if self.strict and not 0.85 <= self.decay <= 0.95:
            raise ValueError(
                "paper evaluates decay in [0.85, 0.95]; pass strict=False to "
                "go outside it"
            )

    def lr_at_epoch(self, epoch: int) -> float:
        """Learning rate during (zero-based) ``epoch``."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.initial_lr * self.decay**epoch

    @classmethod
    def for_cluster(
        cls,
        base_lr: float,
        num_nodes: int,
        decay: float = 0.9,
        strict: bool = True,
    ) -> "EpochDecaySchedule":
        """Schedule with the ln(nodes)-scaled initial rate."""
        return cls(
            initial_lr=scaled_base_lr(base_lr, num_nodes), decay=decay, strict=strict
        )
