"""Loss scaling for reduced-precision training (Section III-C).

Mixed-precision training [33, 34] multiplies the loss by a factor ``F``
(256/512/1024 in the paper) before back-propagation so small gradient
values survive the FP16 representable range, then divides gradients by
``F`` before the weight update.  The paper re-uses the same idea for its
*compression* technique (communicating in FP16); the communication-side
codec lives in :mod:`repro.core.compression` — this module provides the
training-side scalers.

Two variants:

* :class:`StaticLossScaler` — fixed ``F`` (what the paper uses);
* :class:`DynamicLossScaler` — grows ``F`` while gradients stay finite,
  backs off on overflow (the modern refinement; an ablation bench
  compares the two).
"""

from __future__ import annotations

import numpy as np

from ..nn.parameter import Parameter

__all__ = [
    "StaticLossScaler",
    "DynamicLossScaler",
    "grads_are_finite",
    "is_power_of_two",
]

#: Scale factors evaluated in the paper.
PAPER_SCALE_FACTORS = (256.0, 512.0, 1024.0)


def is_power_of_two(value: float) -> bool:
    """True iff ``value`` is exactly ``2**k`` for some integer ``k``.

    Works on any finite positive float (including sub-1 reciprocals like
    0.5): a float is a power of two exactly when its mantissa is 0.5.
    """
    if value <= 0 or not np.isfinite(value):
        return False
    mantissa, _ = np.frexp(value)
    return float(mantissa) == 0.5


def grads_are_finite(params: list[Parameter]) -> bool:
    """True iff every accumulated (dense and sparse) gradient is finite."""
    for p in params:
        if p.grad is not None and not np.isfinite(p.grad).all():
            return False
        for s in p.sparse_grads:
            if not np.isfinite(s.values).all():
                return False
    return True


class StaticLossScaler:
    """Fixed loss scale ``F``: scale at the loss, unscale before update."""

    def __init__(self, scale: float = 512.0):
        if scale < 1.0:
            raise ValueError("scale must be >= 1")
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        return self._scale

    def unscale_grads(self, params: list[Parameter]) -> None:
        """Divide all accumulated gradients by the scale, in place."""
        inv = 1.0 / self._scale
        for p in params:
            if p.grad is not None:
                p.grad *= inv
            for s in p.sparse_grads:
                s.values *= inv

    def update(self, found_overflow: bool) -> None:
        """Static scaler ignores overflow signals (kept for API parity)."""


class DynamicLossScaler(StaticLossScaler):
    """Loss scale that doubles every ``growth_interval`` clean steps and
    halves on overflow (skipping the offending update).

    Parameters mirror the common AMP implementation defaults, bounded to
    keep the scale a positive power of two within sane limits.
    """

    def __init__(
        self,
        initial_scale: float = 1024.0,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 100,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        super().__init__(initial_scale)
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        if not 0 < backoff_factor < 1:
            raise ValueError("backoff_factor must be in (0, 1)")
        if growth_interval <= 0:
            raise ValueError("growth_interval must be positive")
        if not min_scale <= initial_scale <= max_scale:
            raise ValueError("initial_scale outside [min_scale, max_scale]")
        # Clamping against a non-power-of-two bound would silently move
        # the scale off the power-of-two grid the class promises (an
        # off-grid scale changes rounding in fp16 grad quantisation), so
        # every knob that can touch the scale must preserve the grid.
        for label, value in (
            ("initial_scale", initial_scale),
            ("growth_factor", growth_factor),
            ("backoff_factor", backoff_factor),
            ("min_scale", min_scale),
            ("max_scale", max_scale),
        ):
            if not is_power_of_two(value):
                raise ValueError(
                    f"{label} must be a power of two to keep the loss "
                    f"scale on the power-of-two grid, got {value!r}"
                )
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.min_scale = min_scale
        self.max_scale = max_scale
        self._clean_steps = 0

    def update(self, found_overflow: bool) -> None:
        """Adjust the scale after a step; call every step."""
        if found_overflow:
            self._scale = max(self._scale * self.backoff_factor, self.min_scale)
            self._clean_steps = 0
        else:
            self._clean_steps += 1
            if self._clean_steps >= self.growth_interval:
                self._scale = min(self._scale * self.growth_factor, self.max_scale)
                self._clean_steps = 0
