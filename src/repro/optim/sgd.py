"""Stochastic gradient descent with sparse embedding updates.

The word LM (Section IV-B) trains with plain SGD.  Dense gradients
update in place; sparse (embedding) gradients are applied **coalesced**
— duplicate rows are pre-summed, so the scatter touches each embedding
row exactly once.  That is the serialization-free update the paper's
step 7 highlights: with unique indices, no two lanes write the same row.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..nn.dtypes import ACC_DTYPE
from ..nn.parameter import Parameter

__all__ = ["SGD"]


class SGD:
    """Vanilla SGD: ``w -= lr * g`` (optionally with gradient clipping).

    Parameters
    ----------
    params:
        Parameters to update (shared ``Parameter`` objects).
    lr:
        Learning rate; mutable between steps (schedules set it).
    clip_norm:
        Optional global-norm gradient clip applied across all dense and
        sparse gradients — standard for RNN LMs.
    momentum:
        Optional classical momentum (0 disables, the paper's setting).
        Momentum buffers are dense; with sparse embedding gradients the
        buffer update touches only the step's rows (lazy momentum, the
        sparse-friendly convention).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        clip_norm: float | None = None,
        momentum: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        if lr <= 0:
            raise ValueError("lr must be positive")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.clip_norm = clip_norm
        self.momentum = momentum
        self._velocity = (
            [np.zeros_like(p.data) for p in self.params] if momentum else None
        )

    def state_dict(self) -> dict:
        """Hyper-parameters plus momentum buffers when enabled."""
        state: dict = {
            "lr": self.lr,
            "clip_norm": self.clip_norm,
            "momentum": self.momentum,
        }
        if self._velocity is not None:
            for i, v in enumerate(self._velocity):
                state[f"velocity{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        clip = state.get("clip_norm")
        self.clip_norm = None if clip is None else float(clip)
        self.momentum = float(state.get("momentum", 0.0))
        if self.momentum and self._velocity is not None:
            for i in range(len(self.params)):
                self._velocity[i] = state[f"velocity{i}"].copy()

    def _global_grad_norm(self) -> float:
        sq = 0.0
        for p in self.params:
            if p.grad is not None:
                sq += float((p.grad.astype(ACC_DTYPE) ** 2).sum())
            merged = p.merged_sparse_grad()
            if merged is not None:
                sq += float((merged.values.astype(ACC_DTYPE) ** 2).sum())
        return float(np.sqrt(sq))

    def step(self) -> None:
        """Apply one update from the accumulated gradients, then clear them."""
        scale = 1.0
        if self.clip_norm is not None:
            norm = self._global_grad_norm()
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        for i, p in enumerate(self.params):
            if p.grad is not None:
                if self._velocity is not None:
                    v = self._velocity[i]
                    v *= self.momentum
                    v += scale * p.grad
                    p.data -= self.lr * v
                else:
                    p.data -= self.lr * scale * p.grad
            merged = p.merged_sparse_grad()
            if merged is not None:
                rows, values = merged.indices, merged.values
                if self._velocity is not None:
                    v = self._velocity[i]
                    v[rows] = self.momentum * v[rows] + scale * values
                    # Unique rows: plain fancy-index subtract (coalesce()
                    # guarantees no duplicates).
                    p.data[rows] -= self.lr * v[rows]
                else:
                    p.data[rows] -= self.lr * scale * values
            p.zero_grad()
