"""Computational intensity and achieved-throughput analysis.

The paper grounds its scaling differences in workload intensity: the
word LM runs 136 GFLOP/iteration (low intensity — communication and
framework overhead dominate, capping speedup at 6.3x) while the char LM
runs 2,721 GFLOP/iteration (compute-rich — 6.7x speedup, 82% efficiency
at 64 GPUs).  Reported throughputs: 2.44 TFLOP/s per GPU (40% of peak)
for words, 3.95 TFLOP/s (64%) for chars, and 0.76 PFLOP/s aggregate for
the 192-GPU Tieba run.

This module reproduces those figures from the platform specs plus a
FLOP-count model of each architecture, and classifies configurations as
compute- vs communication-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.batching import BatchSpec
from ..train.config import CharLMConfig, WordLMConfig
from .hardware import PAPER_PLATFORM, Platform
from .model import LMWorkload, PerfModel, TechniqueSet

__all__ = [
    "word_lm_flops_per_iteration",
    "char_lm_flops_per_iteration",
    "achieved_flops_per_gpu",
    "aggregate_achieved_flops",
    "IntensityReport",
    "intensity_report",
]


def word_lm_flops_per_iteration(config: WordLMConfig, batch: BatchSpec) -> float:
    """Forward+backward FLOPs of one word-LM iteration on one GPU.

    Counts the three matmul families (LSTM gates, projection, sampled
    softmax) at 2 FLOPs per multiply-accumulate, x3 for the backward
    pass (grad w.r.t. inputs and weights), as standard.
    """
    k = batch.local_batch_tokens
    lstm = 2 * k * (config.embedding_dim + config.hidden_dim) * 4 * config.hidden_dim
    proj = 2 * k * config.hidden_dim * config.projection_dim
    softmax = 2 * k * (1 + config.num_samples) * config.projection_dim
    return 3.0 * (lstm + proj + softmax)


def char_lm_flops_per_iteration(config: CharLMConfig, batch: BatchSpec) -> float:
    """Forward+backward FLOPs of one char-LM (RHN) iteration on one GPU."""
    k = batch.local_batch_tokens
    h = config.hidden_dim
    rhn_input = 2 * k * config.embedding_dim * 2 * h
    rhn_rec = 2 * k * config.depth * h * 2 * h
    softmax = 2 * k * h * config.vocab_size
    return 3.0 * (rhn_input + rhn_rec + softmax)


def achieved_flops_per_gpu(
    platform: Platform = PAPER_PLATFORM, fraction: float = 0.40
) -> float:
    """Per-GPU sustained FLOP/s at an achieved fraction of peak.

    The paper's measured fractions: 0.40 (word LM, 2.44 TFLOP/s on a
    Titan X) and 0.64 (char LM, 3.95 TFLOP/s).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    return platform.device.peak_flops * fraction


def aggregate_achieved_flops(
    world: int, platform: Platform = PAPER_PLATFORM, fraction: float = 0.64
) -> float:
    """Cluster-wide sustained FLOP/s (paper: 0.76 PFLOP/s at 192 GPUs)."""
    return world * achieved_flops_per_gpu(platform, fraction)


@dataclass(frozen=True)
class IntensityReport:
    """Compute/communication balance of one configuration."""

    compute_seconds: float
    communication_seconds: float
    overhead_seconds: float

    @property
    def compute_fraction(self) -> float:
        return self.compute_seconds / self.total_seconds

    @property
    def total_seconds(self) -> float:
        return (
            self.compute_seconds
            + self.communication_seconds
            + self.overhead_seconds
        )

    @property
    def bound(self) -> str:
        """"compute" when >50% of iteration time is arithmetic."""
        return "compute" if self.compute_fraction > 0.5 else "communication"


def intensity_report(
    workload: LMWorkload,
    world: int,
    tech: TechniqueSet,
    platform: Platform = PAPER_PLATFORM,
) -> IntensityReport:
    """Split an iteration's modeled time into compute / comm / overhead."""
    cost = PerfModel(workload, platform).iteration_cost(world, tech)
    comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
    other = cost.local_update + cost.overhead + cost.cast_overhead
    return IntensityReport(
        compute_seconds=cost.compute,
        communication_seconds=comm,
        overhead_seconds=other,
    )
