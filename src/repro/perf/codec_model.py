"""Throughput calibration and pipelined-time models for wire codecs.

Companion to :mod:`repro.core.wire.cost`, which holds the primitive
crossover inequality the adaptive selector needs *below* the exchange
layer.  This module adds the perf-layer pieces:

* :func:`calibrate_codec_throughput` — measure a codec's real
  encode/decode bytes-per-second on this host (the deterministic
  :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS` model the
  simulated accelerator instead, and are what simulated timelines use);
* :func:`serial_transfer_time` — encode, ship, decode, strictly in
  sequence (the unpipelined baseline);
* :func:`pipelined_transfer_time` — the **analytic makespan** of the
  chunked schedule :func:`repro.core.wire.transfer.iencoded_allgather`
  actually executes, derived from the Timeline contention rules;
* :func:`timeline_pipelined_transfer` — the same schedule *executed* on
  a fresh :class:`~repro.cluster.timeline.Timeline`, as the overlap
  module does for bucketed allreduce.  The benches gate the two against
  each other within 5%, the same regression guard style as
  ``bench_ablation_overlap``.

Pipelined schedule (n chunks, per-chunk encode ``e``, transfer ``t``,
decode ``d``)::

    compute:  e0 e1 e2 ...            d0 d1 d2 ...
    comm:        [t0]  [t1]  [t2] ...

Chunk ``i+1`` encodes while chunk ``i`` is on the wire; decode drains
after each completion.  For uniform transmit-bound chunks (``t >= e``)
the makespan closes to ``e + t + max((n-1)*max(e, t) + d, n*d)``; the
implementation runs the exact recurrence so ragged last chunks and
encode-bound regimes are handled too.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..cluster.collectives import ring_allgather_time
from ..cluster.interconnect import LinkSpec
from ..cluster.timeline import Timeline
from ..core.wire.cost import CodecThroughput, compressed_transfer_seconds

__all__ = [
    "CodecThroughput",
    "calibrate_codec_throughput",
    "pipelined_transfer_time",
    "serial_transfer_time",
    "throughput_from_metrics",
    "timeline_pipelined_transfer",
]


def throughput_from_metrics(registry, codec_name: str) -> CodecThroughput:
    """Recover a codec's effective throughput from run telemetry.

    Divides the ``repro_wire_encode_bytes_total`` /
    ``repro_wire_decode_bytes_total`` counters by the summed
    ``repro_wire_*_seconds`` histograms that the wire layer
    (:func:`repro.core.wire.transfer.iencoded_allgather`) records for
    ``codec_name`` — i.e. the *measured* bytes-per-second of what
    actually ran, the profile-driven input ZipCCL-style codec selection
    wants instead of a modelled constant.

    Raises :class:`ValueError` when the run recorded no encode or
    decode activity for the codec.
    """
    encode_bytes = registry.get("repro_wire_encode_bytes_total").value(
        codec=codec_name
    )
    decode_bytes = registry.get("repro_wire_decode_bytes_total").value(
        codec=codec_name
    )
    encode_s = registry.get("repro_wire_encode_seconds").value(
        codec=codec_name
    ).sum
    decode_s = registry.get("repro_wire_decode_seconds").value(
        codec=codec_name
    ).sum
    if encode_s <= 0 or decode_s <= 0:
        raise ValueError(
            f"no recorded encode/decode activity for codec {codec_name!r}"
        )
    return CodecThroughput(
        encode_bps=encode_bytes / encode_s,
        decode_bps=decode_bytes / decode_s,
    )


def calibrate_codec_throughput(
    codec,
    nbytes: int = 8 << 20,
    repeats: int = 3,
    seed: int = 0,
    vocab: int = 10_000_000,
    registry=None,
) -> CodecThroughput:
    """Measure ``codec``'s host encode/decode throughput (bytes/second).

    Encodes/decodes a sorted unique int64 index vector of ``nbytes``
    (the wire payload the index codecs exist for) ``repeats`` times and
    reports logical bytes over the *best* wall-clock repeat — the
    standard way to estimate a throughput ceiling under OS noise.

    The result describes *this host's numpy implementation*; simulated
    timelines keep using the deterministic accelerator-class defaults of
    :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS`.  Use this
    to build an honest ``throughputs=`` table when the selector should
    reflect wall-clock reality (e.g. the wire-compression bench tables).

    When ``registry`` (a :class:`~repro.telemetry.MetricsRegistry`) is
    given, the calibrated figures are also published as
    ``repro_codec_calibrated_bps{codec=...,direction=...}`` gauges so
    benchmark emission picks them up.
    """
    if nbytes < 8:
        raise ValueError("nbytes must cover at least one int64 element")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    n = nbytes // 8
    data = np.sort(
        rng.choice(max(vocab, n), size=n, replace=False).astype(np.int64)
    )
    codec.encode(data)  # warm-up: first call pays allocator costs
    best_encode = best_decode = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        frame = codec.encode(data)
        best_encode = min(best_encode, time.perf_counter() - t0)
        t0 = time.perf_counter()
        codec.decode(frame, data.dtype)
        best_decode = min(best_decode, time.perf_counter() - t0)
    result = CodecThroughput(
        encode_bps=data.nbytes / best_encode,
        decode_bps=data.nbytes / best_decode,
    )
    if registry is not None:
        gauge = registry.gauge(
            "repro_codec_calibrated_bps",
            "Host-measured codec throughput (bytes/second)",
            labelnames=("codec", "direction"),
        )
        gauge.set(result.encode_bps, codec=codec.name, direction="encode")
        gauge.set(result.decode_bps, codec=codec.name, direction="decode")
    return result


def serial_transfer_time(
    logical_bytes: int,
    encoded_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
) -> float:
    """Unpipelined encode → allgather → decode seconds (the baseline).

    Alias of :func:`repro.core.wire.cost.compressed_transfer_seconds`,
    re-exported here so the perf layer's serial and pipelined figures
    come from one module.
    """
    return compressed_transfer_seconds(
        logical_bytes, encoded_bytes, world, link, throughput
    )


def _chunk_plan(
    logical_bytes: int,
    chunk_bytes: int | None,
    encoded_ratio: float,
    encoded_chunk_bytes: Sequence[int] | None,
) -> tuple[list[int], list[int]]:
    """Split a contribution into (logical, encoded) per-chunk byte lists."""
    if logical_bytes <= 0:
        raise ValueError("logical_bytes must be positive")
    if encoded_ratio <= 0:
        raise ValueError("encoded_ratio must be positive")
    if chunk_bytes is None or chunk_bytes >= logical_bytes:
        logical = [logical_bytes]
    else:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        logical = [chunk_bytes] * (logical_bytes // chunk_bytes)
        if logical_bytes % chunk_bytes:
            logical.append(logical_bytes % chunk_bytes)
    if encoded_chunk_bytes is not None:
        encoded = [int(b) for b in encoded_chunk_bytes]
        if len(encoded) != len(logical):
            raise ValueError(
                f"encoded_chunk_bytes has {len(encoded)} entries for "
                f"{len(logical)} chunks"
            )
    else:
        encoded = [max(1, round(b / encoded_ratio)) for b in logical]
    return logical, encoded


def pipelined_transfer_time(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None = None,
    encoded_ratio: float = 1.0,
    encoded_chunk_bytes: Sequence[int] | None = None,
) -> float:
    """Analytic makespan of the chunked encode/transmit/decode pipeline.

    Replays, in closed arithmetic, exactly the schedule
    :func:`repro.core.wire.transfer.iencoded_allgather` puts on the
    Timeline: every rank encodes chunk ``c`` on its compute stream, the
    chunk's allgather starts no earlier than that compute position and
    no earlier than the link frees (chunks serialize in issue order),
    and at wait each chunk is completed then decoded.  Ranks are
    uniform, so one rank's clocks stand for all.

    Parameters
    ----------
    logical_bytes:
        Per-rank pre-codec contribution.
    chunk_bytes:
        Pipeline granularity; None (or >= ``logical_bytes``) degenerates
        to the serial schedule for a single chunk.
    encoded_ratio:
        Compression factor ``logical / encoded`` (>= 1 when the codec
        shrinks), applied per chunk when ``encoded_chunk_bytes`` is not
        given.
    encoded_chunk_bytes:
        Exact per-chunk encoded sizes (e.g. measured frame sizes), for
        validating against a data-dependent run.

    Notes
    -----
    Calls without ``encoded_chunk_bytes`` (the common, fully-hashable
    key) are memoized; a data-dependent per-chunk size list bypasses the
    cache since sequences are unhashable and rarely repeat anyway.
    """
    if encoded_chunk_bytes is None:
        return _pipelined_transfer_time_cached(
            logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio
        )
    return _pipelined_transfer_time_impl(
        logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio,
        encoded_chunk_bytes,
    )


@lru_cache(maxsize=4096)
def _pipelined_transfer_time_cached(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None,
    encoded_ratio: float,
) -> float:
    return _pipelined_transfer_time_impl(
        logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio, None
    )


def _pipelined_transfer_time_impl(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None,
    encoded_ratio: float,
    encoded_chunk_bytes: Sequence[int] | None,
) -> float:
    logical, encoded = _chunk_plan(
        logical_bytes, chunk_bytes, encoded_ratio, encoded_chunk_bytes
    )
    compute = 0.0  # the (uniform) per-rank compute clock
    link_free = 0.0
    ends: list[float] = []
    for lb, eb in zip(logical, encoded):
        compute += throughput.encode_seconds(lb)
        start = max(compute, link_free)
        link_free = start + ring_allgather_time(world, eb, link)
        ends.append(link_free)
    for lb, end in zip(logical, ends):
        compute = max(compute, end)  # wait() on the chunk's ticket
        compute += throughput.decode_seconds(world * lb)
    return compute


def timeline_pipelined_transfer(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None = None,
    encoded_ratio: float = 1.0,
    encoded_chunk_bytes: Sequence[int] | None = None,
    timeline: Timeline | None = None,
) -> float:
    """Measure the pipelined transfer by *executing* its schedule.

    Plays the same issue-all-then-drain chunk schedule as
    :func:`repro.core.wire.transfer.iencoded_allgather` onto a real
    :class:`~repro.cluster.timeline.Timeline` and returns the measured
    makespan.  For an unscaled timeline this equals
    :func:`pipelined_transfer_time` exactly — the cross-check the
    wire-compression bench gates at 5%, mirroring
    :func:`repro.perf.overlap.timeline_overlapped_time`.
    """
    logical, encoded = _chunk_plan(
        logical_bytes, chunk_bytes, encoded_ratio, encoded_chunk_bytes
    )
    if timeline is None:
        timeline = Timeline(world)
    elif timeline.world_size != world:
        raise ValueError("timeline world size != world")
    start = timeline.mark()
    tickets = []
    for c, (lb, eb) in enumerate(zip(logical, encoded)):
        for rank in range(world):
            timeline.record_compute(
                rank, throughput.encode_seconds(lb), name="codec:encode"
            )
        tickets.append(
            timeline.schedule_collective(
                ring_allgather_time(world, eb, link), name=f"chunk{c}"
            )
        )
    for lb, ticket in zip(logical, tickets):
        timeline.complete(ticket)
        for rank in range(world):
            timeline.record_compute(
                rank, throughput.decode_seconds(world * lb), name="codec:decode"
            )
    return timeline.elapsed_since(start)
