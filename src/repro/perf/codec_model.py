"""Throughput calibration and pipelined-time models for wire codecs.

Companion to :mod:`repro.core.wire.cost`, which holds the primitive
crossover inequality the adaptive selector needs *below* the exchange
layer.  This module adds the perf-layer pieces:

* :func:`calibrate_codec_throughput` — measure a codec's real
  encode/decode bytes-per-second on this host (the deterministic
  :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS` model the
  simulated accelerator instead, and are what simulated timelines use);
* :func:`serial_transfer_time` — encode, ship, decode, strictly in
  sequence (the unpipelined baseline);
* :func:`pipelined_transfer_time` — the **analytic makespan** of the
  chunked schedule :func:`repro.core.wire.transfer.iencoded_allgather`
  actually executes, derived from the Timeline contention rules;
* :func:`timeline_pipelined_transfer` — the same schedule *executed* on
  a fresh :class:`~repro.cluster.timeline.Timeline`, as the overlap
  module does for bucketed allreduce.  The benches gate the two against
  each other within 5%, the same regression guard style as
  ``bench_ablation_overlap``;
* :func:`fused_reduce_time` / :func:`timeline_fused_reduce` — the same
  analytic-vs-executed pair for the **fused compressed reductions** of
  :mod:`repro.core.wire.fused`, driven by a shared
  :class:`~repro.core.wire.fused.FusedReducePlan` so all three views
  (live collective, closed recurrence, Timeline replay) agree on every
  hop byte count; :func:`uniform_fused_plan` builds such plans from
  uniform byte arithmetic when no real payload exists (bench sweeps).

Pipelined schedule (n chunks, per-chunk encode ``e``, transfer ``t``,
decode ``d``)::

    compute:  e0 e1 e2 ...            d0 d1 d2 ...
    comm:        [t0]  [t1]  [t2] ...

Chunk ``i+1`` encodes while chunk ``i`` is on the wire; decode drains
after each completion.  For uniform transmit-bound chunks (``t >= e``)
the makespan closes to ``e + t + max((n-1)*max(e, t) + d, n*d)``; the
implementation runs the exact recurrence so ragged last chunks and
encode-bound regimes are handled too.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..cluster.collectives import ring_allgather_time
from ..cluster.interconnect import LinkSpec
from ..cluster.timeline import Timeline
from ..core.wire.cost import (
    CodecThroughput,
    compressed_transfer_seconds,
    throughput_from_metrics,
)
from ..core.wire.fused import FusedReducePlan

__all__ = [
    "CodecThroughput",
    "calibrate_codec_throughput",
    "fused_reduce_time",
    "pipelined_transfer_time",
    "serial_transfer_time",
    "throughput_from_metrics",
    "timeline_fused_reduce",
    "timeline_pipelined_transfer",
    "uniform_fused_plan",
]


def calibrate_codec_throughput(
    codec,
    nbytes: int = 8 << 20,
    repeats: int = 3,
    seed: int = 0,
    vocab: int = 10_000_000,
    registry=None,
) -> CodecThroughput:
    """Measure ``codec``'s host encode/decode throughput (bytes/second).

    Encodes/decodes a sorted unique int64 index vector of ``nbytes``
    (the wire payload the index codecs exist for) ``repeats`` times and
    reports logical bytes over the *best* wall-clock repeat — the
    standard way to estimate a throughput ceiling under OS noise.

    The result describes *this host's numpy implementation*; simulated
    timelines keep using the deterministic accelerator-class defaults of
    :data:`~repro.core.wire.cost.DEFAULT_CODEC_THROUGHPUTS`.  Use this
    to build an honest ``throughputs=`` table when the selector should
    reflect wall-clock reality (e.g. the wire-compression bench tables).

    When ``registry`` (a :class:`~repro.telemetry.MetricsRegistry`) is
    given, the calibrated figures are also published as
    ``repro_codec_calibrated_bps{codec=...,direction=...}`` gauges so
    benchmark emission picks them up.
    """
    if nbytes < 8:
        raise ValueError("nbytes must cover at least one int64 element")
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    n = nbytes // 8
    data = np.sort(
        rng.choice(max(vocab, n), size=n, replace=False).astype(np.int64)
    )
    codec.encode(data)  # warm-up: first call pays allocator costs
    best_encode = best_decode = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        frame = codec.encode(data)
        best_encode = min(best_encode, time.perf_counter() - t0)
        t0 = time.perf_counter()
        codec.decode(frame, data.dtype)
        best_decode = min(best_decode, time.perf_counter() - t0)
    result = CodecThroughput(
        encode_bps=data.nbytes / best_encode,
        decode_bps=data.nbytes / best_decode,
    )
    if registry is not None:
        gauge = registry.gauge(
            "repro_codec_calibrated_bps",
            "Host-measured codec throughput (bytes/second)",
            labelnames=("codec", "direction"),
        )
        gauge.set(result.encode_bps, codec=codec.name, direction="encode")
        gauge.set(result.decode_bps, codec=codec.name, direction="decode")
    return result


def serial_transfer_time(
    logical_bytes: int,
    encoded_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
) -> float:
    """Unpipelined encode → allgather → decode seconds (the baseline).

    Alias of :func:`repro.core.wire.cost.compressed_transfer_seconds`,
    re-exported here so the perf layer's serial and pipelined figures
    come from one module.
    """
    return compressed_transfer_seconds(
        logical_bytes, encoded_bytes, world, link, throughput
    )


def _chunk_plan(
    logical_bytes: int,
    chunk_bytes: int | None,
    encoded_ratio: float,
    encoded_chunk_bytes: Sequence[int] | None,
) -> tuple[list[int], list[int]]:
    """Split a contribution into (logical, encoded) per-chunk byte lists."""
    if logical_bytes <= 0:
        raise ValueError("logical_bytes must be positive")
    if encoded_ratio <= 0:
        raise ValueError("encoded_ratio must be positive")
    if chunk_bytes is None or chunk_bytes >= logical_bytes:
        logical = [logical_bytes]
    else:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        logical = [chunk_bytes] * (logical_bytes // chunk_bytes)
        if logical_bytes % chunk_bytes:
            logical.append(logical_bytes % chunk_bytes)
    if encoded_chunk_bytes is not None:
        encoded = [int(b) for b in encoded_chunk_bytes]
        if len(encoded) != len(logical):
            raise ValueError(
                f"encoded_chunk_bytes has {len(encoded)} entries for "
                f"{len(logical)} chunks"
            )
    else:
        encoded = [max(1, round(b / encoded_ratio)) for b in logical]
    return logical, encoded


def pipelined_transfer_time(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None = None,
    encoded_ratio: float = 1.0,
    encoded_chunk_bytes: Sequence[int] | None = None,
) -> float:
    """Analytic makespan of the chunked encode/transmit/decode pipeline.

    Replays, in closed arithmetic, exactly the schedule
    :func:`repro.core.wire.transfer.iencoded_allgather` puts on the
    Timeline: every rank encodes chunk ``c`` on its compute stream, the
    chunk's allgather starts no earlier than that compute position and
    no earlier than the link frees (chunks serialize in issue order),
    and at wait each chunk is completed then decoded.  Ranks are
    uniform, so one rank's clocks stand for all.

    Parameters
    ----------
    logical_bytes:
        Per-rank pre-codec contribution.
    chunk_bytes:
        Pipeline granularity; None (or >= ``logical_bytes``) degenerates
        to the serial schedule for a single chunk.
    encoded_ratio:
        Compression factor ``logical / encoded`` (>= 1 when the codec
        shrinks), applied per chunk when ``encoded_chunk_bytes`` is not
        given.
    encoded_chunk_bytes:
        Exact per-chunk encoded sizes (e.g. measured frame sizes), for
        validating against a data-dependent run.

    Notes
    -----
    Calls without ``encoded_chunk_bytes`` (the common, fully-hashable
    key) are memoized; a data-dependent per-chunk size list bypasses the
    cache since sequences are unhashable and rarely repeat anyway.
    """
    if encoded_chunk_bytes is None:
        return _pipelined_transfer_time_cached(
            logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio
        )
    return _pipelined_transfer_time_impl(
        logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio,
        encoded_chunk_bytes,
    )


@lru_cache(maxsize=4096)
def _pipelined_transfer_time_cached(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None,
    encoded_ratio: float,
) -> float:
    return _pipelined_transfer_time_impl(
        logical_bytes, world, link, throughput, chunk_bytes, encoded_ratio, None
    )


def _pipelined_transfer_time_impl(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None,
    encoded_ratio: float,
    encoded_chunk_bytes: Sequence[int] | None,
) -> float:
    logical, encoded = _chunk_plan(
        logical_bytes, chunk_bytes, encoded_ratio, encoded_chunk_bytes
    )
    compute = 0.0  # the (uniform) per-rank compute clock
    link_free = 0.0
    ends: list[float] = []
    for lb, eb in zip(logical, encoded):
        compute += throughput.encode_seconds(lb)
        start = max(compute, link_free)
        link_free = start + ring_allgather_time(world, eb, link)
        ends.append(link_free)
    for lb, end in zip(logical, ends):
        compute = max(compute, end)  # wait() on the chunk's ticket
        compute += throughput.decode_seconds(world * lb)
    return compute


def timeline_pipelined_transfer(
    logical_bytes: int,
    world: int,
    link: LinkSpec,
    throughput: CodecThroughput,
    chunk_bytes: int | None = None,
    encoded_ratio: float = 1.0,
    encoded_chunk_bytes: Sequence[int] | None = None,
    timeline: Timeline | None = None,
) -> float:
    """Measure the pipelined transfer by *executing* its schedule.

    Plays the same issue-all-then-drain chunk schedule as
    :func:`repro.core.wire.transfer.iencoded_allgather` onto a real
    :class:`~repro.cluster.timeline.Timeline` and returns the measured
    makespan.  For an unscaled timeline this equals
    :func:`pipelined_transfer_time` exactly — the cross-check the
    wire-compression bench gates at 5%, mirroring
    :func:`repro.perf.overlap.timeline_overlapped_time`.
    """
    logical, encoded = _chunk_plan(
        logical_bytes, chunk_bytes, encoded_ratio, encoded_chunk_bytes
    )
    if timeline is None:
        timeline = Timeline(world)
    elif timeline.world_size != world:
        raise ValueError("timeline world size != world")
    start = timeline.mark()
    tickets = []
    for c, (lb, eb) in enumerate(zip(logical, encoded)):
        for rank in range(world):
            timeline.record_compute(
                rank, throughput.encode_seconds(lb), name="codec:encode"
            )
        tickets.append(
            timeline.schedule_collective(
                ring_allgather_time(world, eb, link), name=f"chunk{c}"
            )
        )
    for lb, ticket in zip(logical, tickets):
        timeline.complete(ticket)
        for rank in range(world):
            timeline.record_compute(
                rank, throughput.decode_seconds(world * lb), name="codec:decode"
            )
    return timeline.elapsed_since(start)


def uniform_fused_plan(
    logical_bytes: int,
    world: int,
    *,
    encoded_ratio: float = 1.0,
    chunk_bytes: int | None = None,
    allgather: bool = True,
    hop_recode: bool = False,
    charge_codec: bool = True,
) -> FusedReducePlan:
    """Build a :class:`~repro.core.wire.fused.FusedReducePlan` from
    uniform byte arithmetic — no payload arrays required.

    Mirrors the geometry of
    :func:`repro.core.wire.fused.plan_fused_reduce` for a per-rank
    contribution of ``logical_bytes``: the shard piece is
    ``ceil(logical_bytes / world)`` (the live planner zero-pads to a
    world multiple), split into ``chunk_bytes`` pipeline chunks, with
    every hop's encoded size modeled as ``logical / encoded_ratio``.
    ``charge_codec=False`` reproduces the ``codec=None`` raw plan
    (no encode/decode charges, wire ships logical bytes).  Use for
    bench sweeps where materializing multi-hundred-MB gradients per
    rank would be wasteful; the recurrence/Timeline pair consumes the
    result exactly like a measured plan.
    """
    if logical_bytes <= 0:
        raise ValueError("logical_bytes must be positive")
    if world < 1:
        raise ValueError("world must be >= 1")
    if encoded_ratio <= 0:
        raise ValueError("encoded_ratio must be positive")
    if world == 1:
        chg = logical_bytes if charge_codec and not hop_recode else 0
        return FusedReducePlan(
            world=1, allgather=allgather, hop_recode=False,
            chunk_logical=(logical_bytes,), pre_encode=(chg,),
            rs_hop_bytes=((),),
            ag_hop_bytes=((),) if allgather else None,
            final_decode=(chg,),
        )
    shard = -(-logical_bytes // world)
    if chunk_bytes is None or chunk_bytes >= shard:
        chunks = [shard]
    else:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        chunks = [chunk_bytes] * (shard // chunk_bytes)
        if shard % chunk_bytes:
            chunks.append(shard % chunk_bytes)
    hops = world - 1
    enc = [
        (lb if not charge_codec else max(1, round(lb / encoded_ratio)))
        for lb in chunks
    ]
    rs_hop = tuple(tuple(eb for _ in range(hops)) for eb in enc)
    if not charge_codec:
        pre = tuple(0 for _ in chunks)
        final = tuple(0 for _ in chunks)
        recode = False
    elif hop_recode:
        pre = tuple(chunks)
        final = tuple(
            ((world - 1) * lb if allgather else lb) for lb in chunks
        )
        recode = True
    else:
        pre = tuple(world * lb for lb in chunks)
        final = tuple(
            (world * lb if allgather else lb) for lb in chunks
        )
        recode = False
    return FusedReducePlan(
        world=world, allgather=allgather, hop_recode=recode,
        chunk_logical=tuple(chunks), pre_encode=pre,
        rs_hop_bytes=rs_hop,
        ag_hop_bytes=rs_hop if allgather else None,
        final_decode=final,
    )


@lru_cache(maxsize=1024)
def fused_reduce_time(
    plan: FusedReducePlan,
    link: LinkSpec,
    throughput: CodecThroughput | None = None,
) -> float:
    """Closed-form makespan of one fused compressed reduction.

    Replays, in plain arithmetic, **exactly** the schedule
    :func:`repro.core.wire.fused.icompressed_allreduce` /
    :func:`~repro.core.wire.fused.icompressed_reduce_scatter` put on
    the Timeline for ``plan`` — same hop-major issue order, same eager
    recode waits, same drain cuts — so for an unscaled timeline the
    result equals :func:`timeline_fused_reduce` *exactly*, not merely
    within tolerance (the wire benches gate at ``1e-9`` relative).
    Ranks are uniform: one compute clock stands for all, and a
    collective's start is ``max(compute, link_free)`` (the Timeline's
    extra ``_max_comm`` term never exceeds ``link_free``).

    ``throughput=None`` evaluates the schedule with codec charges
    suppressed, matching ``charge_compute=False`` (or ``codec=None``)
    on the live path.  Memoized: plans, links and throughputs are all
    frozen/hashable and bench sweeps repeat keys heavily.
    """
    world, hops = plan.world, plan.world - 1
    chunks = plan.chunk_logical
    tp = throughput

    def enc_s(lb: int) -> float:
        return tp.encode_seconds(lb) if tp is not None and lb else 0.0

    def dec_s(lb: int) -> float:
        return tp.decode_seconds(lb) if tp is not None and lb else 0.0

    compute = 0.0
    link_free = 0.0
    rs_end = [[0.0] * hops for _ in chunks]
    for h in range(hops):
        for c, lb in enumerate(chunks):
            if h == 0:
                compute += enc_s(plan.pre_encode[c])
            elif plan.hop_recode:
                compute = max(compute, rs_end[c][h - 1])
                compute += dec_s(lb)
                compute += enc_s(lb)
            start = max(compute, link_free)
            link_free = start + link.transfer_time(plan.rs_hop_bytes[c][h])
            rs_end[c][h] = link_free
    if world == 1:
        compute += enc_s(plan.pre_encode[0])
    last_end = [0.0] * len(chunks)
    if plan.allgather and hops:
        for c, lb in enumerate(chunks):
            if plan.hop_recode:
                compute = max(compute, rs_end[c][hops - 1])
                compute += dec_s(lb)
                compute += enc_s(lb)
            for h in range(hops):
                start = max(compute, link_free)
                link_free = start + link.transfer_time(
                    plan.ag_hop_bytes[c][h]
                )
            last_end[c] = link_free
    elif hops:
        for c in range(len(chunks)):
            last_end[c] = rs_end[c][hops - 1]
    for c, lb in enumerate(plan.final_decode):
        compute = max(compute, last_end[c])
        compute += dec_s(lb)
    return compute


def timeline_fused_reduce(
    plan: FusedReducePlan,
    link: LinkSpec,
    throughput: CodecThroughput | None = None,
    timeline: Timeline | None = None,
) -> float:
    """Measure a fused reduction by *executing* its schedule.

    Plays ``plan`` onto a real :class:`~repro.cluster.timeline.Timeline`
    with the same issue order, eager recode completions and drain cuts
    as the live collectives, and returns the measured makespan — the
    executed half of the :func:`fused_reduce_time` cross-check.
    """
    world, hops = plan.world, plan.world - 1
    chunks = plan.chunk_logical
    if timeline is None:
        timeline = Timeline(world)
    elif timeline.world_size != world:
        raise ValueError("timeline world size != plan world")
    start = timeline.mark()

    def charge(kind: str, lb: int) -> None:
        if throughput is None or lb == 0:
            return
        secs = (
            throughput.encode_seconds(lb) if kind == "encode"
            else throughput.decode_seconds(lb)
        )
        for rank in range(world):
            timeline.record_compute(rank, secs, name=f"codec:{kind}")

    tickets: list = []
    completed: set[int] = set()

    def complete(i: int) -> None:
        if i in completed:
            return
        timeline.complete(tickets[i])
        completed.add(i)

    rs_idx = [[0] * hops for _ in chunks]
    for h in range(hops):
        for c, lb in enumerate(chunks):
            if h == 0:
                charge("encode", plan.pre_encode[c])
            elif plan.hop_recode:
                complete(rs_idx[c][h - 1])
                charge("decode", lb)
                charge("encode", lb)
            tickets.append(
                timeline.schedule_collective(
                    link.transfer_time(plan.rs_hop_bytes[c][h]),
                    name=f"fused:rs{h}[{c}]",
                )
            )
            rs_idx[c][h] = len(tickets) - 1
    if world == 1:
        charge("encode", plan.pre_encode[0])
    drain_upto = [0] * len(chunks)
    if plan.allgather and hops:
        for c, lb in enumerate(chunks):
            if plan.hop_recode:
                complete(rs_idx[c][hops - 1])
                charge("decode", lb)
                charge("encode", lb)
            for h in range(hops):
                tickets.append(
                    timeline.schedule_collective(
                        link.transfer_time(plan.ag_hop_bytes[c][h]),
                        name=f"fused:ag{h}[{c}]",
                    )
                )
            drain_upto[c] = len(tickets)
    elif hops:
        for c in range(len(chunks)):
            drain_upto[c] = (hops - 1) * len(chunks) + c + 1
    i = 0
    for upto, lb in zip(drain_upto, plan.final_decode):
        while i < upto:
            complete(i)
            i += 1
        if throughput is not None and lb:
            secs = throughput.decode_seconds(lb)
            for rank in range(world):
                timeline.record_compute(rank, secs, name="codec:decode")
    while i < len(tickets):
        complete(i)
        i += 1
    return timeline.elapsed_since(start)
