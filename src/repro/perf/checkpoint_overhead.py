"""Checkpoint-interval cost model: Young/Daly optimal cadence from MTBF.

A long synchronous run (the paper's Hero run holds 192 GPUs for 34
hours) must checkpoint: too rarely and a crash replays hours of work,
too often and the serialized-write cost dominates.  The classic
first-order answer is Young's interval ``sqrt(2 * C * M)`` for
checkpoint cost ``C`` and mean time between failures ``M``; Daly's
higher-order refinement tightens it when ``C`` is not small relative to
``M``.  This module provides both, plus the expected-overhead fraction
used to sanity-check the choice, and a convenience that converts the
continuous-time optimum into a whole number of optimizer steps for
:class:`repro.train.resilience.ResilientRunner`.

All quantities are simulated seconds, consistent with the
:class:`~repro.cluster.timeline.Timeline` clock — the recovery loop
charges checkpoint writes and retry backoff to the timeline, never to
wall clock.
"""

from __future__ import annotations

import math

__all__ = [
    "checkpoint_cost_seconds",
    "young_interval",
    "daly_interval",
    "expected_overhead_fraction",
    "optimal_checkpoint_steps",
]


def checkpoint_cost_seconds(
    state_bytes: int, write_bandwidth: float = 1e9
) -> float:
    """Seconds to serialize ``state_bytes`` at ``write_bandwidth`` B/s.

    The checkpoint is written synchronously from rank 0 (the simulator's
    :func:`~repro.train.checkpoint.save_checkpoint` saves one replica),
    so the cost is a single serialized stream, not a parallel one.
    """
    if state_bytes < 0:
        raise ValueError("state_bytes must be non-negative")
    if write_bandwidth <= 0:
        raise ValueError("write_bandwidth must be positive")
    return state_bytes / write_bandwidth


def young_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's first-order optimal checkpoint interval ``sqrt(2*C*M)``.

    Minimizes expected overhead ``C/tau + tau/(2M)`` over the interval
    ``tau``; accurate when ``C << M``.
    """
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Daly's higher-order refinement of Young's interval.

    ``tau = sqrt(2CM) * [1 + (1/3)sqrt(C/2M) + (1/9)(C/2M)] - C`` for
    ``C < 2M``, saturating at ``tau = M`` when the checkpoint is so
    expensive that the best strategy is one checkpoint per expected
    failure.
    """
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if checkpoint_cost_s >= 2.0 * mtbf_s:
        return mtbf_s
    ratio = checkpoint_cost_s / (2.0 * mtbf_s)
    tau = math.sqrt(2.0 * checkpoint_cost_s * mtbf_s) * (
        1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    ) - checkpoint_cost_s
    return max(tau, checkpoint_cost_s)


def expected_overhead_fraction(
    interval_s: float, checkpoint_cost_s: float, mtbf_s: float
) -> float:
    """First-order expected overhead ``C/tau + tau/(2M)`` of a cadence.

    The first term is time spent writing checkpoints; the second is the
    expected rework replayed after a failure (half an interval on
    average).  Minimized exactly at :func:`young_interval`.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if checkpoint_cost_s < 0:
        raise ValueError("checkpoint_cost_s must be non-negative")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return checkpoint_cost_s / interval_s + interval_s / (2.0 * mtbf_s)


def optimal_checkpoint_steps(
    step_time_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    use_daly: bool = True,
) -> int:
    """The optimal interval expressed as a whole number of steps (>= 1).

    Converts :func:`daly_interval` (or :func:`young_interval` when
    ``use_daly`` is False) into units of optimizer steps for the
    supervised recovery loop, rounding to the nearest step but never
    below one — checkpointing more often than every step is meaningless.
    """
    if step_time_s <= 0:
        raise ValueError("step_time_s must be positive")
    tau = (
        daly_interval(checkpoint_cost_s, mtbf_s)
        if use_daly
        else young_interval(checkpoint_cost_s, mtbf_s)
    )
    return max(1, round(tau / step_time_s))
