"""Speedup and parallel-efficiency arithmetic used by the benchmark tables.

Conventions follow the paper: parallel efficiency at G GPUs is the
speedup over the 8-GPU run *of the same configuration* divided by the
ideal factor G/8 (Tables III, IV); Figure 6 speedups are ratios against
the *baseline without techniques* at the same GPU count; weak-scaling
"time increase" (Table V) is relative to the smallest configuration.
"""

from __future__ import annotations

__all__ = [
    "speedup",
    "parallel_efficiency",
    "weak_scaling_time_increase",
    "scaling_speedup",
]


def speedup(baseline_time: float, improved_time: float) -> float:
    """How many times faster ``improved_time`` is (same work)."""
    if baseline_time <= 0 or improved_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / improved_time


def parallel_efficiency(
    time_at_ref: float, time_at_world: float, world: int, reference_world: int = 8
) -> float:
    """Strong-scaling efficiency vs a reference GPU count.

    1.0 means perfect scaling; the paper's Table III shows the baseline
    collapsing to 29% at 24 GPUs while the techniques hold 76%.
    """
    if world <= 0 or reference_world <= 0:
        raise ValueError("GPU counts must be positive")
    if world < reference_world:
        raise ValueError("world must be >= reference_world")
    return speedup(time_at_ref, time_at_world) / (world / reference_world)


def scaling_speedup(
    time_at_ref: float, time_at_world: float
) -> float:
    """Plain strong-scaling speedup (the paper's "6.6x using 8x GPUs")."""
    return speedup(time_at_ref, time_at_world)


def weak_scaling_time_increase(base_time: float, scaled_time: float) -> float:
    """Table V's "only 1.25x more training time" ratio."""
    if base_time <= 0 or scaled_time <= 0:
        raise ValueError("times must be positive")
    return scaled_time / base_time
