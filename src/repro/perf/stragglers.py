"""Straggler analysis: why synchronous efficiency fades with scale.

Synchronous data-parallel training advances at the pace of the *slowest*
rank each step.  With per-rank step times fluctuating (kernel jitter,
host interference, PCIe contention), the expected step time is the
expected **maximum** of G draws, which grows like ``sigma * sqrt(2 ln G)``
for Gaussian jitter — a first-principles source for part of the
overhead term the performance model calibrates against Tables III/IV.

Provides the asymptotic formula, an exact Monte-Carlo estimator, the
induced parallel-efficiency ceiling, and a timeline-backed measurement
(:func:`timeline_synchronous_step`) that *executes* synchronous steps on
a :class:`~repro.cluster.timeline.Timeline` — so a straggler injected
with :func:`repro.cluster.failures.inject_straggler` shifts a measured
schedule, not just a formula.
"""

from __future__ import annotations

import math

import numpy as np

from ..cluster.timeline import Timeline

__all__ = [
    "efficiency_ceiling",
    "expected_max_gaussian",
    "simulate_synchronous_step",
    "straggler_slowdown",
    "timeline_synchronous_step",
]


def expected_max_gaussian(world: int, mean: float, std: float) -> float:
    """Asymptotic expected maximum of ``world`` N(mean, std) step times.

    Uses the standard extreme-value approximation
    ``E[max] ~= mean + std * sqrt(2 ln G)`` (exact enough for G >= 2;
    G = 1 returns the mean).
    """
    if world <= 0:
        raise ValueError("world must be positive")
    if std < 0:
        raise ValueError("std must be non-negative")
    if world == 1:
        return mean
    return mean + std * math.sqrt(2.0 * math.log(world))


def simulate_synchronous_step(
    world: int,
    mean: float,
    std: float,
    rng: np.random.Generator,
    n_steps: int = 1000,
) -> float:
    """Monte-Carlo mean synchronous step time (max over ranks per step).

    Draws are truncated at zero (a step cannot take negative time).
    """
    if world <= 0 or n_steps <= 0:
        raise ValueError("world and n_steps must be positive")
    if std < 0:
        raise ValueError("std must be non-negative")
    times = np.maximum(rng.normal(mean, std, size=(n_steps, world)), 0.0)
    return float(times.max(axis=1).mean())


def timeline_synchronous_step(
    timeline: Timeline,
    compute_s: float,
    comm_s: float = 0.0,
    n_steps: int = 1,
) -> float:
    """Mean measured step time of synchronous steps run on a timeline.

    Each step records ``compute_s`` of compute on every rank (scaled by
    the timeline's per-rank compute scale — the straggler knob), then
    schedules and drains one ``comm_s`` collective, so the step advances
    at the pace of the slowest rank.  With a straggler of factor ``s``
    injected via :func:`repro.cluster.failures.inject_straggler`, the
    measured step time grows from ``compute_s + comm_s`` to
    ``s * compute_s + comm_s`` — the direction (and, for deterministic
    slowdowns, the magnitude) :func:`straggler_slowdown` predicts.
    """
    if compute_s < 0 or comm_s < 0:
        raise ValueError("compute_s and comm_s must be non-negative")
    if n_steps <= 0:
        raise ValueError("n_steps must be positive")
    start = timeline.mark()
    for step in range(n_steps):
        for rank in range(timeline.world_size):  # mesh-ok: SPMD driver loop charging every simulated rank's clock
            timeline.record_compute(rank, compute_s, name=f"step{step}")
        if comm_s > 0:
            timeline.complete(
                timeline.schedule_collective(comm_s, name=f"sync{step}")
            )
    return timeline.elapsed_since(start) / n_steps


def straggler_slowdown(world: int, cv: float) -> float:
    """Expected slowdown factor vs a jitter-free rank.

    ``cv`` is the coefficient of variation (std/mean) of per-rank step
    time; returns ``E[max] / mean``.
    """
    if not 0 <= cv < 1:
        raise ValueError("cv must be in [0, 1)")
    return expected_max_gaussian(world, 1.0, cv)


def efficiency_ceiling(world: int, cv: float, reference_world: int = 8) -> float:
    """Upper bound on Table-III-style parallel efficiency from jitter alone.

    The measured efficiency at G GPUs (relative to ``reference_world``)
    cannot exceed the ratio of straggler slowdowns — even with free
    communication.
    """
    if world < reference_world:
        raise ValueError("world must be >= reference_world")
    return straggler_slowdown(reference_world, cv) / straggler_slowdown(world, cv)
