"""Static per-GPU memory footprint estimators.

Supports two of the paper's memory claims:

* Section IV-B: the word LM with the full ~800K vocabulary needs
  ~9.8 GB for parameters and activations, vs ~1.3 GB after truncating to
  100K — the motivation for the vocabulary cut;
* Section V-A: baseline peak memory grows linearly in G (3.9 / 7.1 /
  10.3 GB at 8/16/24 GPUs, OOM at 32) while the unique scheme stays flat
  (~1.2 GB) — reproduced by combining these static footprints with the
  exchange scratch formulas of :mod:`repro.core.complexity`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.batching import BatchSpec
from ..train.config import CharLMConfig, WordLMConfig

__all__ = ["FootprintBreakdown", "word_lm_footprint", "char_lm_footprint"]


@dataclass(frozen=True)
class FootprintBreakdown:
    """Per-GPU steady-state memory, by component (bytes)."""

    parameters: int
    gradients: int
    optimizer_state: int
    activations: int

    @property
    def total(self) -> int:
        return (
            self.parameters + self.gradients + self.optimizer_state + self.activations
        )


def word_lm_footprint(
    config: WordLMConfig,
    batch: BatchSpec,
    dtype_bytes: int = 4,
    optimizer_slots: int = 0,
) -> FootprintBreakdown:
    """Steady-state footprint of one word-LM replica.

    ``optimizer_slots`` is per-parameter optimizer state copies (0 for
    SGD — the paper's word-LM optimizer — 2 for Adam).

    Activation accounting covers the embedding lookup, LSTM gate/cell
    buffers for the BPTT window, the projection, and the sampled-softmax
    logits — the dominant live tensors of a training step.
    """
    v, e = config.vocab_size, config.embedding_dim
    h, p = config.hidden_dim, config.projection_dim
    k = batch.local_batch_tokens
    params = (
        v * e              # input embedding
        + (e + h) * 4 * h + 4 * h   # LSTM
        + h * p + p        # projection
        + v * p            # output embedding
    )
    # Dense gradients materialize for the LSTM/projection; embedding
    # gradients are row-sparse: K rows input-side, (K + S) output-side.
    grads = (
        (e + h) * 4 * h + 4 * h
        + h * p + p
        + k * e
        + (k + config.num_samples) * p
    )
    activations = (
        k * e              # embedded inputs
        + k * 4 * h        # LSTM gates (cached for BPTT)
        + 2 * k * h        # hidden + cell states
        + k * p            # projection output
        + k * (1 + config.num_samples)  # sampled logits
    )
    return FootprintBreakdown(
        parameters=params * dtype_bytes,
        gradients=grads * dtype_bytes,
        optimizer_state=optimizer_slots * params * dtype_bytes,
        activations=activations * dtype_bytes,
    )


def char_lm_footprint(
    config: CharLMConfig,
    batch: BatchSpec,
    dtype_bytes: int = 4,
    optimizer_slots: int = 2,
) -> FootprintBreakdown:
    """Steady-state footprint of one char-LM replica (Adam by default)."""
    v, e = config.vocab_size, config.embedding_dim
    h, depth = config.hidden_dim, config.depth
    k = batch.local_batch_tokens
    params = (
        v * e                       # input embedding
        + e * 2 * h                 # RHN input projection (h|t fused)
        + depth * h * 2 * h         # RHN recurrent weights
        + depth * 2 * h             # RHN biases
        + v * h + v                 # full-softmax output embedding + bias
    )
    grads = params  # full softmax: all gradients dense
    activations = (
        k * e                # embedded inputs
        + k * depth * 3 * h  # per-micro-layer h, t, s_in caches
        + k * h              # outputs
        + k * v              # full-softmax logits
    )
    return FootprintBreakdown(
        parameters=params * dtype_bytes,
        gradients=grads * dtype_bytes,
        optimizer_state=optimizer_slots * params * dtype_bytes,
        activations=activations * dtype_bytes,
    )
