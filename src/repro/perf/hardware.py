"""Hardware presets for the performance model (Table II).

Bundles a :class:`~repro.cluster.device.DeviceSpec` with an
:class:`~repro.cluster.interconnect.Interconnect` into the complete
platform description the analytic model consumes.  The paper's cluster
(50 nodes x 8 Titan X, PCIe intra-node, FDR Infiniband inter-node) and
the prior work's V100/NVLink platform are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.device import TITAN_X, V100, DeviceSpec
from ..cluster.interconnect import (
    PAPER_CLUSTER_FABRIC,
    V100_FABRIC,
    Interconnect,
)

__all__ = ["Platform", "PAPER_PLATFORM", "PRIOR_WORK_PLATFORM"]


@dataclass(frozen=True)
class Platform:
    """A homogeneous GPU cluster: device type + fabric + node width."""

    device: DeviceSpec
    fabric: Interconnect
    max_gpus: int

    def __post_init__(self) -> None:
        if self.max_gpus <= 0:
            raise ValueError("max_gpus must be positive")

    @property
    def gpus_per_node(self) -> int:
        return self.fabric.gpus_per_node

    def num_nodes(self, world_size: int) -> int:
        return self.fabric.num_nodes(world_size)

    def aggregate_peak_flops(self, world_size: int) -> float:
        """Cluster-wide peak FLOP/s for ``world_size`` GPUs."""
        if not 0 < world_size <= self.max_gpus:
            raise ValueError(
                f"world_size must be in 1..{self.max_gpus}, got {world_size}"
            )
        return world_size * self.device.peak_flops


#: Table II: 50 nodes x 8 GeForce GTX Titan X, PCIe + FDR Infiniband.
PAPER_PLATFORM = Platform(
    device=TITAN_X, fabric=PAPER_CLUSTER_FABRIC, max_gpus=400
)

#: The platform of Puri et al. [21] compared against in Section V-D:
#: 128 Tesla V100 with NVLink.
PRIOR_WORK_PLATFORM = Platform(device=V100, fabric=V100_FABRIC, max_gpus=128)
