"""Analytic performance model: hardware presets, memory footprints,
iteration/epoch time, speedup and efficiency arithmetic."""

from .calibration import CalibrationResult, calibrate_workload
from .codec_model import (
    CodecThroughput,
    calibrate_codec_throughput,
    pipelined_transfer_time,
    serial_transfer_time,
    throughput_from_metrics,
    timeline_pipelined_transfer,
)
from .checkpoint_overhead import (
    checkpoint_cost_seconds,
    daly_interval,
    expected_overhead_fraction,
    optimal_checkpoint_steps,
    young_interval,
)
from .efficiency import (
    parallel_efficiency,
    scaling_speedup,
    speedup,
    weak_scaling_time_increase,
)
from .hardware import PAPER_PLATFORM, PRIOR_WORK_PLATFORM, Platform
from .intensity import (
    IntensityReport,
    achieved_flops_per_gpu,
    aggregate_achieved_flops,
    char_lm_flops_per_iteration,
    intensity_report,
    word_lm_flops_per_iteration,
)
from .memory import FootprintBreakdown, char_lm_footprint, word_lm_footprint
from .overlap import (
    overlap_speedup,
    overlapped_time,
    perfect_overlap_bound,
    timeline_overlapped_time,
)
from .stragglers import (
    efficiency_ceiling,
    expected_max_gaussian,
    simulate_synchronous_step,
    straggler_slowdown,
    timeline_synchronous_step,
)
from .model import (
    ALL_TECHNIQUES,
    BASELINE,
    CHAR_LM_1B,
    CHAR_LM_TIEBA,
    UNIQUE_ONLY,
    UNIQUE_SEEDING,
    WORD_LM_1B,
    IterationCost,
    LMWorkload,
    PerfModel,
    TechniqueSet,
)

__all__ = [
    "Platform",
    "CalibrationResult",
    "calibrate_workload",
    "CodecThroughput",
    "calibrate_codec_throughput",
    "pipelined_transfer_time",
    "serial_transfer_time",
    "throughput_from_metrics",
    "timeline_pipelined_transfer",
    "checkpoint_cost_seconds",
    "young_interval",
    "daly_interval",
    "expected_overhead_fraction",
    "optimal_checkpoint_steps",
    "IntensityReport",
    "achieved_flops_per_gpu",
    "aggregate_achieved_flops",
    "word_lm_flops_per_iteration",
    "char_lm_flops_per_iteration",
    "intensity_report",
    "overlapped_time",
    "overlap_speedup",
    "perfect_overlap_bound",
    "timeline_overlapped_time",
    "expected_max_gaussian",
    "simulate_synchronous_step",
    "straggler_slowdown",
    "efficiency_ceiling",
    "timeline_synchronous_step",
    "PAPER_PLATFORM",
    "PRIOR_WORK_PLATFORM",
    "FootprintBreakdown",
    "word_lm_footprint",
    "char_lm_footprint",
    "TechniqueSet",
    "BASELINE",
    "UNIQUE_ONLY",
    "UNIQUE_SEEDING",
    "ALL_TECHNIQUES",
    "LMWorkload",
    "IterationCost",
    "PerfModel",
    "WORD_LM_1B",
    "CHAR_LM_1B",
    "CHAR_LM_TIEBA",
    "speedup",
    "parallel_efficiency",
    "scaling_speedup",
    "weak_scaling_time_increase",
]
