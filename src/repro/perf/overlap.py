"""Communication/computation overlap analysis.

The paper's TF-1.4 pipeline synchronizes gradients after the backward
pass completes; modern stacks overlap each layer's allreduce with the
remaining backward computation.  This module bounds what overlap would
buy on top of the paper's techniques: with fraction ``f`` of the
communication hideable behind compute, iteration time becomes

    compute + max(0, comm - f * compute) + non_overlappable

(the local update and framework overhead cannot be hidden).  An ablation
bench sweeps ``f`` per workload and GPU count.
"""

from __future__ import annotations

from .hardware import PAPER_PLATFORM, Platform
from .model import IterationCost, LMWorkload, PerfModel, TechniqueSet

__all__ = ["overlapped_time", "overlap_speedup", "perfect_overlap_bound"]


def overlapped_time(cost: IterationCost, overlap_fraction: float) -> float:
    """Iteration seconds when ``overlap_fraction`` of compute can hide comm."""
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
    hidden_budget = overlap_fraction * cost.compute
    exposed_comm = max(0.0, comm - hidden_budget)
    return (
        cost.compute
        + exposed_comm
        + cost.local_update
        + cost.overhead
        + cost.cast_overhead
    )


def overlap_speedup(
    workload: LMWorkload,
    world: int,
    tech: TechniqueSet,
    overlap_fraction: float,
    platform: Platform = PAPER_PLATFORM,
) -> float:
    """Speedup of an overlapped schedule over the sequential one."""
    cost = PerfModel(workload, platform).iteration_cost(world, tech)
    return cost.total / overlapped_time(cost, overlap_fraction)


def perfect_overlap_bound(
    workload: LMWorkload,
    world: int,
    tech: TechniqueSet,
    platform: Platform = PAPER_PLATFORM,
) -> float:
    """Best possible speedup if *all* communication hid behind compute."""
    return overlap_speedup(workload, world, tech, 1.0, platform)
