"""Communication/computation overlap analysis.

The paper's TF-1.4 pipeline synchronizes gradients after the backward
pass completes; modern stacks overlap each layer's allreduce with the
remaining backward computation.  This module bounds what overlap would
buy on top of the paper's techniques: with fraction ``f`` of the
communication hideable behind compute, iteration time becomes

    compute + max(0, comm - f * compute) + non_overlappable

(the local update and framework overhead cannot be hidden).  An ablation
bench sweeps ``f`` per workload and GPU count.

:func:`timeline_overlapped_time` cross-checks the closed formula against
the event-level :class:`~repro.cluster.timeline.Timeline`: it *executes*
the overlapped schedule (head compute, issue, tail compute, drain) and
measures the makespan.  The two agree exactly by construction of the
schedule; the benches assert agreement within 5% as a regression guard.
"""

from __future__ import annotations

from ..cluster.timeline import Timeline
from .hardware import PAPER_PLATFORM, Platform
from .model import IterationCost, LMWorkload, PerfModel, TechniqueSet

__all__ = [
    "overlap_speedup",
    "overlapped_time",
    "perfect_overlap_bound",
    "timeline_overlapped_time",
]


def overlapped_time(cost: IterationCost, overlap_fraction: float) -> float:
    """Iteration seconds when ``overlap_fraction`` of compute can hide comm."""
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
    hidden_budget = overlap_fraction * cost.compute
    exposed_comm = max(0.0, comm - hidden_budget)
    return (
        cost.compute
        + exposed_comm
        + cost.local_update
        + cost.overhead
        + cost.cast_overhead
    )


def timeline_overlapped_time(
    cost: IterationCost,
    overlap_fraction: float,
    world: int = 8,
    n_buckets: int = 8,
    timeline: Timeline | None = None,
) -> float:
    """Measure the overlapped iteration time by *executing* its schedule.

    Plays one iteration onto a :class:`~repro.cluster.timeline.Timeline`
    the way an overlap-capable stack runs it:

    1. each rank computes the non-hideable head,
       ``(1 - overlap_fraction) * compute`` (gradients produced during
       this span have nothing issued yet);
    2. the iteration's communication is issued as ``n_buckets``
       back-to-back collectives, which serialize on the shared link;
    3. each rank computes the remaining ``overlap_fraction * compute``
       tail while the collectives proceed;
    4. every collective is drained (``wait``), then the local update and
       framework/cast overheads run on the compute stream.

    Returns the measured makespan of the iteration (using the supplied
    ``timeline``'s :meth:`~repro.cluster.timeline.Timeline.mark` so a
    straggler-scaled timeline can be passed in).  For an unscaled
    timeline this equals :func:`overlapped_time` exactly — the point of
    the cross-check.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    if n_buckets <= 0:
        raise ValueError("n_buckets must be positive")
    if timeline is None:
        timeline = Timeline(world)
    elif timeline.world_size != world:
        raise ValueError("timeline world size != world")
    start = timeline.mark()

    comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
    head = (1.0 - overlap_fraction) * cost.compute
    tail = overlap_fraction * cost.compute
    trailing = cost.local_update + cost.overhead + cost.cast_overhead

    for rank in range(world):
        timeline.record_compute(rank, head, name="backward:head")
    tickets = [
        timeline.schedule_collective(comm / n_buckets, name=f"bucket{i}")
        for i in range(n_buckets)
    ]
    for rank in range(world):
        timeline.record_compute(rank, tail, name="backward:tail")
    for ticket in tickets:
        timeline.complete(ticket)
    for rank in range(world):
        timeline.record_compute(rank, trailing, name="update")
    return timeline.elapsed_since(start)


def overlap_speedup(
    workload: LMWorkload,
    world: int,
    tech: TechniqueSet,
    overlap_fraction: float,
    platform: Platform = PAPER_PLATFORM,
) -> float:
    """Speedup of an overlapped schedule over the sequential one."""
    cost = PerfModel(workload, platform).iteration_cost(world, tech)
    return cost.total / overlapped_time(cost, overlap_fraction)


def perfect_overlap_bound(
    workload: LMWorkload,
    world: int,
    tech: TechniqueSet,
    platform: Platform = PAPER_PLATFORM,
) -> float:
    """Best possible speedup if *all* communication hid behind compute."""
    return overlap_speedup(workload, world, tech, 1.0, platform)
