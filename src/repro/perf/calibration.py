"""Calibration tooling: derive the performance model's constants from
published rows instead of hand-tuning them.

The model's per-workload knobs (``compute_seconds_per_iter``, the
``a*G + b*G^2`` overhead) are not free-floating fit parameters: given
the paper's "with our technique" column, they are *determined* — the
communication terms come from the fabric model, so subtracting them from
each row's per-iteration seconds leaves ``compute + overhead(G)``, a
linear least-squares problem.

:func:`calibrate_workload` solves it, returning the constants and the
per-row residuals, so the presets in :mod:`repro.perf.model` are
reproducible artifacts: a test re-derives them from Table III/IV and
checks they match what the presets ship.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hardware import PAPER_PLATFORM, Platform
from .model import ALL_TECHNIQUES, LMWorkload, PerfModel, TechniqueSet

__all__ = ["CalibrationResult", "calibrate_workload"]


@dataclass(frozen=True)
class CalibrationResult:
    """Solved constants + fit quality for one workload."""

    compute_seconds_per_iter: float
    overhead_linear: float
    overhead_quadratic: float
    residual_seconds: tuple[float, ...]  # per calibration row
    max_relative_error: float

    def apply(self, workload: LMWorkload) -> LMWorkload:
        """A copy of ``workload`` carrying the solved constants."""
        return workload.scaled(
            compute_seconds_per_iter=self.compute_seconds_per_iter,
            overhead_linear=self.overhead_linear,
            overhead_quadratic=self.overhead_quadratic,
        )


def calibrate_workload(
    workload: LMWorkload,
    epoch_hours_by_world: dict[int, float],
    tech: TechniqueSet = ALL_TECHNIQUES,
    platform: Platform = PAPER_PLATFORM,
    quadratic: bool | None = None,
) -> CalibrationResult:
    """Solve compute/overhead constants from measured epoch hours.

    Parameters
    ----------
    workload:
        The workload whose *structural* parameters (batch, vocab, dense
        params, tokens/epoch) are taken as given; its calibration
        constants are ignored and re-derived.
    epoch_hours_by_world:
        Published rows, e.g. Table III's "with our technique" column
        ``{8: 14.6, 16: 8.1, 24: 6.4, 32: 5.4, 64: 4.5}``.  At least as
        many rows as unknowns (2 or 3).
    quadratic:
        Fit the ``b*G^2`` term (word-LM-style efficiency collapse) or
        only the linear one; ``None`` picks quadratic iff >= 3 rows and
        the workload originally used a quadratic term.

    Returns
    -------
    CalibrationResult with non-negative constants (clipped at zero — a
    negative overhead is meaningless and indicates the comm model already
    over-explains the rows).
    """
    if len(epoch_hours_by_world) < 2:
        raise ValueError("need at least two calibration rows")
    if any(h <= 0 for h in epoch_hours_by_world.values()):
        raise ValueError("epoch hours must be positive")
    if quadratic is None:
        quadratic = (
            len(epoch_hours_by_world) >= 3 and workload.overhead_quadratic > 0
        )

    # Zero out the unknowns; everything else in iteration_cost is the
    # structural communication/update model.
    probe = workload.scaled(
        compute_seconds_per_iter=1e-12,
        overhead_linear=0.0,
        overhead_quadratic=0.0,
    )
    model = PerfModel(probe, platform)

    worlds = sorted(epoch_hours_by_world)
    rows, targets = [], []
    for g in worlds:
        iters = model.iterations_per_epoch(g)
        per_iter = epoch_hours_by_world[g] * 3600.0 / iters
        structural = model.iteration_cost(g, tech).total
        residual_target = per_iter - structural
        feature = [1.0, float(g)]
        if quadratic:
            feature.append(float(g) ** 2)
        rows.append(feature)
        targets.append(residual_target)

    solution, *_ = np.linalg.lstsq(
        np.asarray(rows), np.asarray(targets), rcond=None
    )
    compute = max(float(solution[0]), 1e-9)
    a = max(float(solution[1]), 0.0)
    b = max(float(solution[2]), 0.0) if quadratic else 0.0

    calibrated = workload.scaled(
        compute_seconds_per_iter=compute,
        overhead_linear=a,
        overhead_quadratic=b,
    )
    check = PerfModel(calibrated, platform)
    residuals = []
    rel_errors = []
    for g in worlds:
        predicted = check.epoch_hours(g, tech)
        actual = epoch_hours_by_world[g]
        residuals.append(
            (predicted - actual) * 3600.0 / check.iterations_per_epoch(g)
        )
        rel_errors.append(abs(predicted - actual) / actual)
    return CalibrationResult(
        compute_seconds_per_iter=compute,
        overhead_linear=a,
        overhead_quadratic=b,
        residual_seconds=tuple(residuals),
        max_relative_error=float(max(rel_errors)),
    )
