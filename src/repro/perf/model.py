"""Analytic per-epoch time and memory model (Tables III, IV, V; Figure 6).

The paper reports wall-clock hours on a 400-GPU Titan X cluster we do
not have; this model reconstructs those tables from first principles
plus a small number of **calibration constants** per workload:

* *compute seconds per iteration* — fixed per workload (the paper holds
  the local batch constant, so per-GPU FLOPs per iteration are
  constant), calibrated against the 8-GPU "with our technique" row;
* *overhead seconds* ``a*G + b*G^2`` — synchronization/straggler and
  framework overhead growing with scale, calibrated against the
  efficiency falloff of the "with our technique" column;
* *baseline inefficiency multiplier* — the TF-1.4 baseline's embedding
  path (sparse-gradient densification, serialized duplicate-row
  updates, no comm/compute overlap), calibrated against the 8-GPU
  "without our technique" row.

Everything else — wire volumes, link bandwidths, memory footprints,
type-count growth — comes from the cluster model (Table II constants)
and the Zipf law ``Ug = min(coeff*(G*K)^0.64, V)``.  The *shape* of each
table (who wins, crossovers, OOM onset, efficiency bands) is therefore
produced by the mechanisms the paper describes rather than fitted
point-by-point.

A key measured detail the memory model reproduces: the paper's baseline
peak memory (3.9/7.1/10.3 GB at 8/16/24 GPUs) grows by ~0.41 GB per
GPU = exactly two dense ``|V| x D`` FP32 matrices — the TensorFlow
baseline gathers *densified* embedding gradients (IndexedSlices ->
dense), not the K x D token blocks of the idealized description.  The
``baseline_gathers_dense_rows`` flag selects that behaviour for the word
LM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.collectives import ring_allgather_time, ring_allreduce_time
from ..core.complexity import expected_global_unique
from ..core.seeding import SeedStrategy, expected_unique_sampled, num_seed_groups
from .hardware import PAPER_PLATFORM, Platform

__all__ = [
    "TechniqueSet",
    "BASELINE",
    "UNIQUE_ONLY",
    "UNIQUE_SEEDING",
    "ALL_TECHNIQUES",
    "LMWorkload",
    "IterationCost",
    "PerfModel",
    "WORD_LM_1B",
    "CHAR_LM_1B",
    "CHAR_LM_TIEBA",
]

_IDX_BYTES = 4
_VAL_BYTES = 4


@dataclass(frozen=True)
class TechniqueSet:
    """Which of the paper's three optimizations are enabled.

    The paper applies them cumulatively (Figure 6): uniqueness, then
    seeding (meaningful only with sampled softmax), then compression.
    """

    unique: bool = False
    seeding: bool = False
    compression: bool = False

    def __post_init__(self) -> None:
        if self.seeding and not self.unique:
            raise ValueError(
                "seeding only matters for the unique exchange (Figure 6 "
                "applies techniques cumulatively)"
            )

    @property
    def label(self) -> str:
        if not self.unique:
            return "baseline"
        parts = ["+uniqueness"]
        if self.seeding:
            parts.append("+seeding")
        if self.compression:
            parts.append("+compression")
        return "".join(parts)


BASELINE = TechniqueSet()
UNIQUE_ONLY = TechniqueSet(unique=True)
UNIQUE_SEEDING = TechniqueSet(unique=True, seeding=True)
ALL_TECHNIQUES = TechniqueSet(unique=True, seeding=True, compression=True)


@dataclass(frozen=True)
class LMWorkload:
    """One evaluated training workload with its calibration constants."""

    name: str
    vocab_size: int
    embedding_dim: int
    local_batch_tokens: int          # K
    num_samples: int                 # S per GPU; 0 => full softmax
    dense_param_count: float         # params allreduced densely per iter
    tokens_per_epoch: float
    fixed_bytes_per_gpu: float       # params+grads+optimizer+activations
    compute_seconds_per_iter: float  # calibrated
    overhead_linear: float           # a in a*G + b*G^2 (seconds)
    overhead_quadratic: float        # b
    baseline_gathers_dense_rows: bool
    baseline_inefficiency: float = 1.0
    cast_overhead_seconds: float = 0.0   # FP16 down/up-cast cost per iter
    heaps_coeff: float = 7.02
    heaps_alpha: float = 0.64

    def __post_init__(self) -> None:
        if min(self.vocab_size, self.embedding_dim, self.local_batch_tokens) <= 0:
            raise ValueError("dimensions must be positive")
        if self.num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        if self.compute_seconds_per_iter <= 0:
            raise ValueError("compute_seconds_per_iter must be positive")
        if self.baseline_inefficiency < 1.0:
            raise ValueError("baseline_inefficiency must be >= 1")

    @property
    def uses_sampled_softmax(self) -> bool:
        return self.num_samples > 0

    def scaled(self, **overrides: object) -> "LMWorkload":
        return replace(self, **overrides)


@dataclass(frozen=True)
class IterationCost:
    """Per-iteration time breakdown (seconds)."""

    compute: float
    dense_allreduce: float
    input_exchange: float
    output_exchange: float
    local_update: float
    overhead: float
    cast_overhead: float

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.dense_allreduce
            + self.input_exchange
            + self.output_exchange
            + self.local_update
            + self.overhead
            + self.cast_overhead
        )


class PerfModel:
    """Evaluate time/memory of one workload on one platform."""

    def __init__(self, workload: LMWorkload, platform: Platform = PAPER_PLATFORM):
        self.w = workload
        self.platform = platform

    # ---- structural quantities ----------------------------------------

    def iterations_per_epoch(self, world: int) -> float:
        self._check_world(world)
        return self.w.tokens_per_epoch / (world * self.w.local_batch_tokens)

    def unique_input_rows(self, world: int) -> float:
        """Ug for the input embedding: Zipf growth capped at |V|."""
        return expected_global_unique(
            world * self.w.local_batch_tokens,
            alpha=self.w.heaps_alpha,
            coeff=self.w.heaps_coeff,
            vocab_size=self.w.vocab_size,
        )

    def unique_output_rows(self, world: int, seeding: bool) -> float:
        """Distinct output-embedding rows touched per step.

        Candidate union across seed groups plus the true-target types.
        Without seeding every rank samples independently (G groups);
        with it, the Zipf-freq strategy's ~G^0.64 groups.
        """
        if not self.w.uses_sampled_softmax:
            return 0.0
        strategy = SeedStrategy.ZIPF_FREQ if seeding else SeedStrategy.PER_RANK
        groups = num_seed_groups(strategy, world)
        union = expected_unique_sampled(
            groups, self.w.num_samples, self.w.vocab_size
        )
        return min(union + self.unique_input_rows(world), float(self.w.vocab_size))

    def _baseline_rows(self) -> tuple[float, float]:
        """(input, output) rows per rank the baseline gathers."""
        if self.w.baseline_gathers_dense_rows:
            rows_in = float(self.w.vocab_size)
            rows_out = float(self.w.vocab_size) if self.w.uses_sampled_softmax else 0.0
        else:
            rows_in = float(self.w.local_batch_tokens)
            rows_out = (
                float(self.w.local_batch_tokens + self.w.num_samples)
                if self.w.uses_sampled_softmax
                else 0.0
            )
        return rows_in, rows_out

    def _check_world(self, world: int) -> None:
        if not 0 < world <= self.platform.max_gpus:
            raise ValueError(
                f"world must be in 1..{self.platform.max_gpus}, got {world}"
            )

    # ---- time ------------------------------------------------------------

    def iteration_cost(self, world: int, tech: TechniqueSet) -> IterationCost:
        self._check_world(world)
        w = self.w
        link = self.platform.fabric.ring_link(world)
        val_bytes = _VAL_BYTES // 2 if tech.compression else _VAL_BYTES
        d = w.embedding_dim

        dense = ring_allreduce_time(world, int(w.dense_param_count) * val_bytes, link)

        if tech.unique:
            ug_in = self.unique_input_rows(world)
            ug_out = self.unique_output_rows(world, tech.seeding)
            idx_gather = ring_allgather_time(
                world, w.local_batch_tokens * _IDX_BYTES, link
            )
            input_ex = idx_gather + ring_allreduce_time(
                world, int(ug_in * d * val_bytes), link
            )
            output_ex = 0.0
            if w.uses_sampled_softmax:
                output_ex = ring_allgather_time(
                    world, (w.local_batch_tokens + w.num_samples) * _IDX_BYTES, link
                ) + ring_allreduce_time(world, int(ug_out * d * val_bytes), link)
            # Conflict-free scatter update at memory bandwidth.
            update_bytes = 2 * (ug_in + ug_out) * d * _VAL_BYTES
            update = update_bytes / self.platform.device.memory_bandwidth
        else:
            rows_in, rows_out = self._baseline_rows()
            input_ex = ring_allgather_time(world, int(rows_in * d * val_bytes), link)
            output_ex = (
                ring_allgather_time(world, int(rows_out * d * val_bytes), link)
                if rows_out
                else 0.0
            )
            # Apply all G gathered blocks, with the duplicate-row
            # serialization penalty folded into baseline_inefficiency.
            update_bytes = 2 * world * (rows_in + rows_out) * d * _VAL_BYTES
            update = update_bytes / self.platform.device.memory_bandwidth
            input_ex *= w.baseline_inefficiency
            output_ex *= w.baseline_inefficiency
            update *= w.baseline_inefficiency

        overhead = w.overhead_linear * world + w.overhead_quadratic * world**2
        cast = w.cast_overhead_seconds if tech.compression else 0.0
        return IterationCost(
            compute=w.compute_seconds_per_iter,
            dense_allreduce=dense,
            input_exchange=input_ex,
            output_exchange=output_ex,
            local_update=update,
            overhead=overhead,
            cast_overhead=cast,
        )

    def epoch_hours(self, world: int, tech: TechniqueSet) -> float:
        return (
            self.iterations_per_epoch(world)
            * self.iteration_cost(world, tech).total
            / 3600.0
        )

    # ---- memory ------------------------------------------------------------

    def peak_memory_bytes(self, world: int, tech: TechniqueSet) -> float:
        """Per-GPU peak: fixed footprint + exchange scratch."""
        self._check_world(world)
        w = self.w
        d = w.embedding_dim
        val_bytes = _VAL_BYTES // 2 if tech.compression else _VAL_BYTES
        if tech.unique:
            ug_in = self.unique_input_rows(world)
            ug_out = self.unique_output_rows(world, tech.seeding)
            scratch = (
                world * w.local_batch_tokens * _IDX_BYTES
                + (ug_in + ug_out) * d * val_bytes
            )
        else:
            rows_in, rows_out = self._baseline_rows()
            scratch = world * (rows_in + rows_out) * d * val_bytes
        return w.fixed_bytes_per_gpu + scratch

    def is_oom(self, world: int, tech: TechniqueSet) -> bool:
        """Would this configuration exceed the device's memory?"""
        return (
            self.peak_memory_bytes(world, tech)
            > self.platform.device.memory_bytes
        )

    def oom_onset(self, tech: TechniqueSet) -> int | None:
        """Smallest GPU count at which this configuration runs out of
        memory, or None if it fits everywhere up to the platform limit.

        Memory grows monotonically with the world size for every
        technique set, so a linear scan gives the exact onset — the ``*``
        boundary of Tables III/IV.
        """
        for world in range(1, self.platform.max_gpus + 1):
            if self.is_oom(world, tech):
                return world
        return None

    def parallel_efficiency(
        self, world: int, tech: TechniqueSet, reference_world: int = 8
    ) -> float:
        """Table III/IV efficiency: speedup over the reference divided by
        the ideal GPU ratio.  The reference is the *same technique set* at
        ``reference_world`` GPUs, as in the paper."""
        t_ref = self.epoch_hours(reference_world, tech)
        t = self.epoch_hours(world, tech)
        return (t_ref / t) / (world / reference_world)


# ---------------------------------------------------------------------------
# Workload presets, calibrated as documented in the module docstring.
# ---------------------------------------------------------------------------

#: Word LM on the 1-Billion-Word dataset (Table III, Figures 5-7).
#: K = 32 seqs x 20 tokens; S = 1024; dense params = LSTM + projection.
WORD_LM_1B = LMWorkload(
    name="word-lm-1b",
    vocab_size=100_000,
    embedding_dim=512,
    local_batch_tokens=32 * 20,
    num_samples=1024,
    dense_param_count=(512 + 2048) * 4 * 2048 + 2048 * 512,
    tokens_per_epoch=0.768e9,
    fixed_bytes_per_gpu=1.0e9,
    # Derived from Table III's "with our technique" column via
    # repro.perf.calibration.calibrate_workload (max row error < 3%).
    compute_seconds_per_iter=0.3039,
    overhead_linear=3.96e-3,
    overhead_quadratic=7.04e-5,
    baseline_gathers_dense_rows=True,
    baseline_inefficiency=2.0,
)

#: Char LM on the 1-Billion-Word dataset (Table IV, Figure 8).
#: K = 128 seqs x 150 chars; full softmax; 213M dense params.
CHAR_LM_1B = LMWorkload(
    name="char-lm-1b",
    vocab_size=98,
    embedding_dim=1792,
    local_batch_tokens=128 * 150,
    num_samples=0,
    dense_param_count=213e6,
    tokens_per_epoch=4.15e9,
    fixed_bytes_per_gpu=8.6e9,
    # Derived from Table IV's "with our technique" column via
    # repro.perf.calibration.calibrate_workload (max row error ~4%).
    compute_seconds_per_iter=3.0065,
    overhead_linear=9.32e-3,
    overhead_quadratic=0.0,
    baseline_gathers_dense_rows=False,
    baseline_inefficiency=1.6,
    cast_overhead_seconds=0.06,  # >20 tensors to down/up-cast (Section V-B)
)

#: Char LM on Tieba (Table V weak scaling): 15,437-symbol vocabulary.
#: tokens_per_epoch describes the 6-GPU / 1.07B-char point; the weak-
#: scaling bench scales it together with the GPU count.
CHAR_LM_TIEBA = LMWorkload(
    name="char-lm-tieba",
    vocab_size=15_437,
    embedding_dim=1792,
    local_batch_tokens=128 * 150,
    num_samples=0,
    dense_param_count=240e6,
    tokens_per_epoch=1.07e9,
    fixed_bytes_per_gpu=8.2e9,
    # Derived from Table V's three weak-scaling rows (exact fit: the
    # system has two unknowns and three near-collinear rows).
    compute_seconds_per_iter=10.282,
    overhead_linear=1.378e-2,
    overhead_quadratic=0.0,
    baseline_gathers_dense_rows=False,
    baseline_inefficiency=1.6,
    cast_overhead_seconds=0.06,
)
