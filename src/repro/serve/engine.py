"""The serving engine: continuous batching on the simulated cluster.

One :class:`ServingEngine` drives a decoder (see
:mod:`repro.serve.decoders`) over a request stream on a simulated
multi-GPU replica group:

* the :class:`~repro.serve.scheduler.ContinuousBatchingScheduler`
  re-forms the active batch at every decode-step boundary;
* per-request recurrent states live in the
  :class:`~repro.serve.state_cache.RecurrentStateCache` — pinned while
  active, speculative (evictable, recomputable) while queued;
* each step's embedding rows come from the replica-sharded
  :func:`~repro.serve.embedding.sharded_embedding_lookup`, so decode
  collectives land on the Timeline and charge the CostLedger exactly
  like training traffic;
* simulated time *is* the timeline makespan: idle gaps advance the
  compute clocks to the next arrival, decode work is charged per rank,
  and request latencies are read off the schedule.

Fault handling composes with :class:`~repro.cluster.failures.\
ChaosCommunicator`: transient link faults retry the step's collectives
with charged backoff; a rank loss rebuilds the communicator one rank
smaller (a new *generation*, same ledger), re-admits the lost replica's
in-flight requests at the queue head (emitted tokens are kept — only
the decoder state is recomputed), and carries the clock forward.

Determinism
-----------
Token output is independent of scheduling: the decode kernels are
batch-invariant (:func:`repro.nn.functional.row_matmul`) and sampling
draws from ``default_rng((seed, request_id, position))``.
:func:`naive_serve` — one request at a time, no batching, no cluster —
therefore produces token-identical streams, which the differential
suite asserts across seeds, models, and chaos plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.communicator import Communicator
from ..cluster.failures import RankFailureError, TransientLinkError
from .decoders import sample_token, stack_states, unstack_state
from .embedding import sharded_embedding_lookup
from .metrics import ServingReport
from .request import CompletedRequest, ServeRequest
from .scheduler import ContinuousBatchingScheduler, TrackedRequest
from .state_cache import RecurrentStateCache

__all__ = ["ServeConfig", "ServingEngine", "naive_serve"]


@dataclass(frozen=True)
class ServeConfig:
    """Engine policy and cost-model knobs.

    ``prefill_token_s`` / ``decode_token_s`` are the simulated compute
    charges per token (prefill replay vs. batched decode); they shape
    the timeline, never the numerics.  ``speculative_prefill`` prefills
    arrived-but-queued requests into the (evictable) cache so admission
    is a hit instead of a replay.
    """

    max_batch: int = 8
    temperature: float = 0.0
    seed: int = 0
    drop_expired: bool = True
    cache_budget_bytes: int = 1 << 22
    speculative_prefill: bool = True
    prefill_token_s: float = 1e-4
    decode_token_s: float = 2e-4
    failover_s: float = 5e-3
    retry_backoff_s: float = 1e-3
    max_transient_retries: int = 8
    max_steps: int = 1_000_000

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")
        if self.cache_budget_bytes <= 0:
            raise ValueError("cache_budget_bytes must be positive")
        if min(self.prefill_token_s, self.decode_token_s) < 0:
            raise ValueError("per-token costs must be non-negative")
        if self.max_transient_retries < 1 or self.max_steps < 1:
            raise ValueError("retry and step limits must be positive")


class _StepAborted(Exception):
    """Internal: a rank loss aborted the current decode step pre-emission."""


class ServingEngine:
    """Continuous-batching inference over one simulated replica group.

    Parameters
    ----------
    decoder:
        A batch-invariant decode adapter (``WordLMDecoder`` /
        ``CharLMDecoder`` or any object following the protocol).
    comm:
        The replica-group communicator; may be a
        :class:`~repro.cluster.failures.ChaosCommunicator`.
    config:
        Engine policy knobs.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession`; each
        communicator generation is tracked, and every decode step emits
        a step record.
    comm_factory:
        ``f(world_size, ledger) -> Communicator`` used to rebuild after
        a rank loss; defaults to a plain :class:`Communicator` sharing
        the current ledger (wire totals accumulate across generations).
    """

    def __init__(
        self,
        decoder,
        comm: Communicator,
        config: ServeConfig | None = None,
        telemetry=None,
        comm_factory=None,
    ):
        self.decoder = decoder
        self.comm = comm
        self.config = config if config is not None else ServeConfig()
        if self.config.max_batch * decoder.state_nbytes > self.config.cache_budget_bytes:
            raise ValueError(
                "cache budget cannot hold a full active batch: "
                f"{self.config.max_batch} x {decoder.state_nbytes} B > "
                f"{self.config.cache_budget_bytes} B"
            )
        self.telemetry = telemetry
        self._comm_factory = comm_factory
        self.cache = RecurrentStateCache(
            self.config.cache_budget_bytes,
            comm.devices if comm.track_memory else None,
        )
        self.scheduler: ContinuousBatchingScheduler | None = None
        self.generations = 1
        self.recomputes = 0
        self._time_base = 0.0
        self._admissions = 0
        self._speculated: set[int] = set()
        if telemetry is not None:
            telemetry.track(comm, label="serve-gen0")

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """Current simulated time (all generations' makespans)."""
        return self._time_base + self.comm.timeline.makespan

    def _advance_to(self, target_s: float) -> None:
        """Idle the cluster until ``target_s`` (the next arrival)."""
        rel = target_s - self._time_base + 1e-9
        timeline = self.comm.timeline
        for r in range(self.comm.world_size):  # mesh-ok: SPMD idle-advance charges every simulated clock
            delta = rel - timeline.compute_clock[r]
            if delta > 0:
                timeline.record_compute(
                    r, delta / timeline.compute_scale[r], name="serve:idle"
                )

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    def _replay_state(self, tokens: list[int]) -> tuple[np.ndarray, ...]:
        """Fold tokens into a fresh state through the batch-invariant kernel.

        Local compute only (replicated weights need no collective for a
        single row); the simulated cost is charged by the caller.
        """
        states = stack_states([self.decoder.init_state()])
        for token in tokens:
            x = self.decoder.embedding_weight[int(token)][np.newaxis, :]
            _, states = self.decoder.step(x, states)
        return unstack_state(states, 0)

    def _charge_prefill(self, n_tokens: int) -> None:
        rank = self._admissions % self.comm.world_size
        self._admissions += 1
        if n_tokens > 0:
            self.comm.timeline.record_compute(
                rank, n_tokens * self.config.prefill_token_s, name="serve:prefill"
            )

    def _admit(self, rec: TrackedRequest) -> tuple[np.ndarray, ...]:
        """Produce the admitted request's state: cache hit or replay."""
        rid = rec.request.request_id
        consumed = rec.consumed_tokens
        folded = consumed[:-1]
        entry = self.cache.get(rid)
        if entry is not None and entry.n_consumed == len(folded):
            self.cache.pin(rid)
            return entry.state
        if entry is not None:
            self.cache.release(rid)
        state = self._replay_state(folded)
        self._charge_prefill(len(folded))
        if entry is not None or rid in self._speculated or rec.readmissions:
            self.recomputes += 1
        self.cache.put(rid, state, len(folded), pinned=True)
        return state

    def _speculative_prefill(self, now: float) -> None:
        """Prefill arrived-but-queued requests into the evictable cache."""
        sched = self.scheduler
        for rid in sched.queued_ids():
            rec = sched.records[rid]
            if rec.request.arrival_s > now:
                continue
            if rid in self._speculated or rid in self.cache:
                continue
            self._speculated.add(rid)
            folded = rec.consumed_tokens[:-1]
            state = self._replay_state(folded)
            self._charge_prefill(len(folded))
            self.cache.put(rid, state, len(folded), pinned=False)

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------

    def _handle_rank_loss(
        self, err: RankFailureError, states: dict[int, tuple[np.ndarray, ...]]
    ) -> None:
        """Shrink the world, re-admit the dead replica's requests."""
        new_world = self.comm.world_size - 1
        if new_world < 1:
            raise err
        sched = self.scheduler
        shard = self._shards(sched.active)[err.rank]
        now = self.now_s
        for rid in reversed(shard):  # reversed: inserts at head keep order
            sched.readmit(rid, now)
            self.cache.release(rid)
            states.pop(rid, None)
        self._time_base += self.comm.timeline.makespan
        factory = self._comm_factory
        if factory is None:
            factory = lambda world, ledger: Communicator(
                world, ledger=ledger, track_memory=self.comm.track_memory
            )
        self.comm = factory(new_world, self.comm.ledger)
        self.generations += 1
        self.cache.rebind(self.comm.devices if self.comm.track_memory else None)
        if self.telemetry is not None:
            self.telemetry.track(
                self.comm, label=f"serve-gen{self.generations - 1}"
            )
            self.telemetry.record_event(
                "rank_loss", step=len(sched.events), detail=f"rank {err.rank}"
            )
        for r in range(self.comm.world_size):  # mesh-ok: failover stall charges every surviving clock
            self.comm.timeline.record_compute(
                r, self.config.failover_s, name="serve:failover"
            )

    # ------------------------------------------------------------------
    # the decode loop
    # ------------------------------------------------------------------

    def _shards(self, active: list[int]) -> list[list[int]]:
        """Round-robin shard of the active set across ranks."""
        world = self.comm.world_size
        return [active[r::world] for r in range(world)]  # mesh-ok: SPMD driver partitions the flat replica group

    def _lookup_rows(
        self, shards: list[list[int]], step: int
    ) -> list[np.ndarray]:
        """The step's sharded embedding gather, with transient retries."""
        sched = self.scheduler
        ids_per_rank = [
            np.asarray(
                [sched.records[rid].consumed_tokens[-1] for rid in shard],
                dtype=np.int64,
            )
            for shard in shards
        ]
        attempts = 0
        while True:
            try:
                return sharded_embedding_lookup(
                    self.comm,
                    self.decoder.embedding_weight,
                    ids_per_rank,
                    tag=f"step{step}",
                )
            except TransientLinkError:
                attempts += 1
                if attempts > self.config.max_transient_retries:
                    raise
                for r in range(self.comm.world_size):  # mesh-ok: backoff stalls every simulated clock
                    self.comm.timeline.record_compute(
                        r,
                        attempts * self.config.retry_backoff_s,
                        name="serve:retry-backoff",
                    )
            except RankFailureError as err:
                self._handle_rank_loss(err, self._states)
                raise _StepAborted() from err

    def run(self, requests: list[ServeRequest]) -> ServingReport:
        """Serve the stream to completion; returns the outcome report.

        Terminates when every request is finished or dropped; raises
        ``RuntimeError`` past ``config.max_steps`` (a scheduling bug,
        not a load condition — the step count is bounded by total
        tokens plus idle hops).
        """
        config = self.config
        sched = ContinuousBatchingScheduler(
            requests, config.max_batch, drop_expired=config.drop_expired
        )
        self.scheduler = sched
        states: dict[int, tuple[np.ndarray, ...]] = {}
        self._states = states
        decode_steps = 0
        loop_iterations = 0
        while not sched.done:
            loop_iterations += 1
            if loop_iterations > config.max_steps:
                raise RuntimeError(
                    f"serving loop exceeded {config.max_steps} iterations"
                )
            now = self.now_s
            admitted, _dropped = sched.poll(now)
            for rid in _dropped:
                self.cache.release(rid)
            for rid in admitted:
                states[rid] = self._admit(sched.records[rid])
            if not sched.active:
                next_arrival = sched.next_arrival_s(now)
                if next_arrival is None:
                    continue  # deadline policy just drained the queue
                self._advance_to(next_arrival)
                continue
            if config.speculative_prefill:
                self._speculative_prefill(now)

            shards = self._shards(list(sched.active))
            step_start = self.now_s
            try:
                rows_per_rank = self._lookup_rows(shards, decode_steps)
            except _StepAborted:
                continue
            decode_steps += 1
            for r, shard in enumerate(shards):  # mesh-ok: SPMD driver runs every rank's shard
                if not shard:
                    continue
                batched = stack_states([states[rid] for rid in shard])
                logits, new_states = self.decoder.step(rows_per_rank[r], batched)
                event = self.comm.timeline.record_compute(
                    r, len(shard) * config.decode_token_s, name="serve:decode"
                )
                emit_s = self._time_base + event.end
                for j, rid in enumerate(shard):
                    rec = sched.records[rid]
                    position = len(rec.emitted)
                    rng = (
                        None
                        if config.temperature == 0.0
                        else np.random.default_rng((config.seed, rid, position))
                    )
                    token = sample_token(
                        logits[j], rng, temperature=config.temperature
                    )
                    reason = sched.record_token(rid, token, emit_s)
                    if reason is not None:
                        self.cache.release(rid)
                        del states[rid]
                    else:
                        row = unstack_state(new_states, j)
                        states[rid] = row
                        entry = self.cache.peek(rid)
                        if entry is not None:
                            entry.state = row
                            entry.n_consumed += 1
                        else:  # pragma: no cover - pinned entries stay resident
                            self.cache.put(
                                rid, row, len(rec.consumed_tokens) - 1, pinned=True
                            )
            if self.telemetry is not None:
                self.telemetry.record_step(
                    step=decode_steps,
                    active=len(sched.active),
                    queued=len(sched.queued_ids()),
                    sim_time_s=self.now_s,
                    step_time_s=self.now_s - step_start,
                )
        return self._build_report(decode_steps)

    def _build_report(self, decode_steps: int) -> ServingReport:
        sched = self.scheduler
        records = []
        for rid, rec in sorted(sched.records.items()):
            records.append(
                CompletedRequest(
                    request_id=rid,
                    tokens=tuple(rec.emitted),
                    finish_reason=rec.finish_reason,
                    arrival_s=rec.request.arrival_s,
                    finish_s=rec.finish_s,
                    slo_s=rec.request.slo_s,
                    token_times_s=tuple(rec.token_times_s),
                )
            )
        return ServingReport(
            requests=tuple(records),
            makespan_s=self.now_s,
            wire_bytes_per_rank=self.comm.ledger.total_wire_bytes_per_rank,
            decode_steps=decode_steps,
            generations=self.generations,
            readmissions=sum(r.readmissions for r in sched.records.values()),
            recomputes=self.recomputes,
            cache_stats={
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "resident_bytes": self.cache.resident_bytes,
            },
        )


def naive_serve(
    decoder, requests: list[ServeRequest], config: ServeConfig | None = None
) -> ServingReport:
    """One-request-at-a-time decode: the differential baseline.

    No batching, no cluster, no cache, no drop policy — requests are
    served serially in arrival order on a single replica, through the
    *same* batch-invariant kernels and the same per-``(seed, request_id,
    position)`` sampling streams.  Token output is therefore bitwise
    identical to :meth:`ServingEngine.run`; what differs is the
    schedule, which is the quantity the benchmarks compare.
    """
    config = config if config is not None else ServeConfig()
    clock = 0.0
    records = []
    total_tokens = 0
    for req in sorted(requests, key=lambda r: (r.arrival_s, r.request_id)):
        clock = max(clock, req.arrival_s)
        folded = [int(t) for t in req.prompt[:-1]]
        states = stack_states([decoder.init_state()])
        for token in folded:
            x = decoder.embedding_weight[token][np.newaxis, :]
            _, states = decoder.step(x, states)
        clock += len(folded) * config.prefill_token_s
        last = int(req.prompt[-1])
        emitted: list[int] = []
        times: list[float] = []
        reason = None
        while reason is None:
            x = decoder.embedding_weight[last][np.newaxis, :]
            logits, states = decoder.step(x, states)
            clock += config.decode_token_s
            rng = (
                None
                if config.temperature == 0.0
                else np.random.default_rng(
                    (config.seed, req.request_id, len(emitted))
                )
            )
            token = sample_token(logits[0], rng, temperature=config.temperature)
            emitted.append(token)
            times.append(clock)
            if req.eos_token is not None and token == req.eos_token:
                reason = "eos"
            elif len(emitted) >= req.max_new_tokens:
                reason = "length"
            last = token
        total_tokens += len(emitted)
        records.append(
            CompletedRequest(
                request_id=req.request_id,
                tokens=tuple(emitted),
                finish_reason=reason,
                arrival_s=req.arrival_s,
                finish_s=clock,
                slo_s=req.slo_s,
                token_times_s=tuple(times),
            )
        )
    records.sort(key=lambda r: r.request_id)
    return ServingReport(
        requests=tuple(records),
        makespan_s=clock,
        wire_bytes_per_rank=0,
        decode_steps=total_tokens,
        generations=1,
    )
