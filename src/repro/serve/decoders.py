"""Batch-invariant decode kernels over the existing language models.

A decoder adapts a trained model to the serving engine's protocol:

* ``vocab_size`` / ``embedding_weight`` — the ``(V, D)`` input
  embedding the replica-sharded lookup gathers rows from;
* ``init_state()`` — a fresh per-request state, a tuple of 1-D rows;
* ``step(x, states)`` — one decode time step over a batch: ``(B, D)``
  embedded rows plus stacked states in, ``(B, V)`` logits plus new
  states out.

The load-bearing property is **batch invariance**: row ``r`` of every
``step`` output is a pure function of row ``r`` of its inputs, bitwise,
whatever the batch composition.  BLAS gemm does *not* provide this (its
blocking depends on ``B``), so all matmuls run through
:func:`repro.nn.functional.row_matmul` via the ``step`` kernels on
:class:`~repro.nn.lstm.LSTM` and :class:`~repro.nn.rhn.RHN`.  That is
what makes continuous batching a pure scheduling optimization — the
differential suite asserts token-identical output against naive
one-request-at-a-time decode.

Sampling is schedule-independent too: token choices draw from
``default_rng((seed, request_id, position))``, so a request's stream
never depends on which batch (or which post-recovery generation) served
it.
"""

from __future__ import annotations

import numpy as np

from ..nn.functional import log_softmax, row_matmul
from ..train.char_lm import CharLanguageModel
from ..train.word_lm import WordLanguageModel

__all__ = [
    "CharLMDecoder",
    "WordLMDecoder",
    "sample_token",
    "stack_states",
    "unstack_state",
]


def stack_states(
    rows: list[tuple[np.ndarray, ...]],
) -> tuple[np.ndarray, ...]:
    """Stack per-request state rows into batched ``(B, ...)`` components."""
    if not rows:
        raise ValueError("cannot stack an empty state batch")
    parts = len(rows[0])
    return tuple(
        np.stack([r[p] for r in rows], axis=0) for p in range(parts)
    )


def unstack_state(
    states: tuple[np.ndarray, ...], index: int
) -> tuple[np.ndarray, ...]:
    """Extract request ``index``'s rows from batched state components."""
    return tuple(np.array(part[index], copy=True) for part in states)


def sample_token(
    logits: np.ndarray,
    rng: np.random.Generator | None,
    temperature: float = 0.0,
) -> int:
    """Choose the next token from one ``(V,)`` logit row.

    ``temperature = 0`` is greedy argmax (no RNG consumed); otherwise
    draws from the tempered softmax via inverse-CDF on the log-space
    probabilities — numerically identical regardless of batch context.
    """
    logits = np.asarray(logits)
    if logits.ndim != 1:
        raise ValueError("sample_token expects a single (V,) logit row")
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    if temperature == 0.0:
        return int(np.argmax(logits))
    if rng is None:
        raise ValueError("sampled decoding needs an rng")
    logp = log_softmax(logits / temperature)
    cdf = np.cumsum(np.exp(logp))
    u = rng.random() * cdf[-1]
    return int(min(np.searchsorted(cdf, u, side="right"), logits.size - 1))


class WordLMDecoder:
    """Decode adapter for :class:`~repro.train.word_lm.WordLanguageModel`.

    State per request: the LSTM's ``(h, c)`` rows.  Logits follow the
    model's evaluation path — projection then the (possibly tied)
    output-embedding inner product — through batch-invariant kernels.
    """

    def __init__(self, model: WordLanguageModel):
        self.model = model
        self.vocab_size = model.config.vocab_size
        self.embedding_weight = model.embedding.weight.data
        self._hidden = model.lstm.hidden_dim

    @property
    def state_nbytes(self) -> int:
        """Resident bytes of one request's state."""
        itemsize = self.embedding_weight.dtype.itemsize
        return 2 * self._hidden * itemsize

    def init_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero ``(h, c)`` rows for a fresh request."""
        dtype = self.embedding_weight.dtype
        zero = np.zeros(self._hidden, dtype)
        return (zero, zero.copy())

    def step(
        self, x: np.ndarray, states: tuple[np.ndarray, ...]
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """One decode step: embedded rows in, full-vocab logits out."""
        h, new_state = self.model.lstm.step(x, states)
        proj = row_matmul(h, self.model.projection.weight.data)
        if self.model.projection.bias is not None:
            proj = proj + self.model.projection.bias.data
        logits = row_matmul(proj, self.model.loss_layer.weight.data.T)
        return logits, new_state


class CharLMDecoder:
    """Decode adapter for :class:`~repro.train.char_lm.CharLanguageModel`.

    State per request: the RHN's ``s`` row.  Dropout is inference-off by
    construction (the decoder never touches the dropout layer); logits
    use the full-softmax weights plus bias, as in evaluation.
    """

    def __init__(self, model: CharLanguageModel):
        self.model = model
        self.vocab_size = model.config.vocab_size
        self.embedding_weight = model.embedding.weight.data
        self._hidden = model.rhn.hidden_dim

    @property
    def state_nbytes(self) -> int:
        """Resident bytes of one request's state."""
        return self._hidden * self.embedding_weight.dtype.itemsize

    def init_state(self) -> tuple[np.ndarray]:
        """Zero ``s`` row for a fresh request."""
        return (np.zeros(self._hidden, self.embedding_weight.dtype),)

    def step(
        self, x: np.ndarray, states: tuple[np.ndarray, ...]
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
        """One decode step: embedded rows in, full-vocab logits out."""
        s, _ = self.model.rhn.step(x, states[0])
        logits = (
            row_matmul(s, self.model.loss_layer.weight.data.T)
            + self.model.loss_layer.bias.data
        )
        return logits, (s,)
