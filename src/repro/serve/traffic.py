"""Deterministic serving traffic: Zipfian prompts under bursty arrivals.

The paper's load-bearing empirical fact — token frequency is Zipfian —
applies to inference traffic too: prompt popularity is heavy-tailed
(a few hot prompts dominate) and arrivals are bursty rather than
Poisson-smooth.  This module composes the existing corpus models into a
request stream:

* a **prompt pool** whose token content is sampled from
  :class:`repro.data.zipf.ZipfMandelbrot` (so replica-sharded embedding
  lookups see realistic type skew);
* **prompt choice** driven by a second Zipf–Mandelbrot distribution
  over the pool, passed through
  :func:`repro.data.burstiness.make_bursty_tokens` — hot prompts recur
  in local bursts, exactly the structure popularity-aware caching and
  the uniqueness exchange exploit;
* a **two-state arrival process** (calm/burst phases with exponential
  durations, Poisson arrivals within each phase) so the scheduler's
  admission queue sees realistic pressure waves.

Everything is a pure function of the config seed: the same
:class:`TrafficConfig` always yields byte-identical request streams,
which the differential and chaos suites rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.burstiness import make_bursty_tokens
from ..data.zipf import ZipfMandelbrot
from .request import ServeRequest

__all__ = ["ArrivalSpec", "TrafficConfig", "generate_traffic", "make_arrival_times"]


@dataclass(frozen=True)
class ArrivalSpec:
    """Two-state (calm/burst) modulated Poisson arrival process.

    Phases alternate calm → burst → calm …, each with an exponentially
    distributed duration; within a phase, arrivals are Poisson at that
    phase's rate.  A zero rate yields a silent interval (no arrivals
    while the phase lasts) — at least one of the two rates must be
    positive or the process can never produce a request.
    """

    calm_rate: float = 4.0
    burst_rate: float = 20.0
    mean_calm_s: float = 2.0
    mean_burst_s: float = 0.5

    def __post_init__(self) -> None:
        if self.calm_rate < 0 or self.burst_rate < 0:
            raise ValueError("arrival rates must be non-negative")
        if self.calm_rate == 0 and self.burst_rate == 0:
            raise ValueError("at least one arrival rate must be positive")
        if self.mean_calm_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("mean phase durations must be positive")


def make_arrival_times(
    n: int, spec: ArrivalSpec, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` non-decreasing arrival times from the two-state process.

    Returns a float64 vector of simulated seconds from run start;
    ``n = 0`` yields an empty trace.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    times: list[float] = []
    t = 0.0
    burst = False
    while len(times) < n:
        rate = spec.burst_rate if burst else spec.calm_rate
        duration = rng.exponential(
            spec.mean_burst_s if burst else spec.mean_calm_s
        )
        if rate > 0:
            tau = t
            while len(times) < n:
                tau += rng.exponential(1.0 / rate)
                if tau > t + duration:
                    break
                times.append(tau)
        t += duration
        burst = not burst
    return np.asarray(times, dtype=np.float64)


@dataclass(frozen=True)
class TrafficConfig:
    """Description of one deterministic request stream.

    ``prompt_len`` and ``max_new_tokens`` are inclusive ``(lo, hi)``
    ranges sampled uniformly per prompt/request; ``zipf_exponent`` and
    ``zipf_shift`` parameterize both the token-content and the
    prompt-popularity distributions; ``p_repeat``/``window`` feed the
    burstiness cache model for prompt choice.
    """

    num_requests: int
    vocab_size: int
    prompt_pool: int = 32
    prompt_len: tuple[int, int] = (4, 12)
    max_new_tokens: tuple[int, int] = (4, 16)
    zipf_exponent: float = 1.5
    zipf_shift: float = 0.0
    p_repeat: float = 0.3
    window: int = 8
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    slo_s: float = float("inf")
    eos_token: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if self.vocab_size <= 0 or self.prompt_pool <= 0:
            raise ValueError("vocab_size and prompt_pool must be positive")
        for lo, hi in (self.prompt_len, self.max_new_tokens):
            if lo < 1 or hi < lo:
                raise ValueError("ranges must satisfy 1 <= lo <= hi")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")


def generate_traffic(config: TrafficConfig) -> list[ServeRequest]:
    """Materialize the request stream described by ``config``.

    Deterministic in ``config.seed``; requests come back in arrival
    order with ids ``0 .. num_requests - 1``.  An empty trace
    (``num_requests = 0``) returns ``[]``.
    """
    if config.num_requests == 0:
        return []
    rng = np.random.default_rng(config.seed)
    n = config.num_requests

    content = ZipfMandelbrot(
        config.vocab_size, config.zipf_exponent, config.zipf_shift
    )
    lo, hi = config.prompt_len
    lengths = rng.integers(lo, hi + 1, size=config.prompt_pool)
    pool = [content.sample(int(length), rng) for length in lengths]

    popularity = ZipfMandelbrot(config.prompt_pool, config.zipf_exponent)
    choices = make_bursty_tokens(
        popularity, n, rng, p_repeat=config.p_repeat, window=config.window
    )
    arrivals = make_arrival_times(n, config.arrivals, rng)
    glo, ghi = config.max_new_tokens
    budgets = rng.integers(glo, ghi + 1, size=n)

    return [
        ServeRequest(
            request_id=i,
            prompt=pool[int(choices[i])],
            max_new_tokens=int(budgets[i]),
            arrival_s=float(arrivals[i]),
            slo_s=config.slo_s,
            eos_token=config.eos_token,
        )
        for i in range(n)
    ]
