"""Serving metrics: latency percentiles, goodput, and the telemetry bridge.

The engine produces a :class:`ServingReport` — immutable per-request
records plus run-level accounting — and
:func:`report_to_registry` projects it into the PR-5
:class:`~repro.telemetry.MetricsRegistry` so the standard exporters
(``metrics.prom`` / ``metrics.json``) carry the serving story:

* ``repro_serve_ttft_seconds`` / ``repro_serve_token_latency_seconds``
  histograms (per-request first-token and inter-token gaps);
* exact percentile gauges (``repro_serve_p50_ttft_seconds`` …) — the
  histograms bucket, the gauges carry the exact values the CLI prints;
* ``repro_serve_requests_total{outcome=...}`` and token / cache-event /
  readmission counters.

Definitions
-----------
* **TTFT** — first-token emission time minus arrival.
* **per-token latency** — inter-emission gaps (first gap = TTFT).
* **goodput** — SLO-met completions per simulated second of makespan:
  dropped and deadline-missed requests produce tokens but no goodput,
  which is exactly the gap the deadline policy manages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .request import CompletedRequest

__all__ = ["ServingReport", "percentile", "report_to_registry"]


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile; ``nan`` on an empty sample."""
    values = [v for v in values if np.isfinite(v)]
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class ServingReport:
    """Outcome of one serving run.

    ``requests`` holds every terminal record (finished and dropped);
    cache and scheduler statistics come over as plain dicts so the
    report is JSON-friendly.
    """

    requests: tuple[CompletedRequest, ...]
    makespan_s: float
    wire_bytes_per_rank: int
    decode_steps: int
    generations: int = 1
    readmissions: int = 0
    recomputes: int = 0
    cache_stats: dict = field(default_factory=dict)

    @property
    def finished(self) -> tuple[CompletedRequest, ...]:
        """Requests that ran to completion (eos or length)."""
        return tuple(r for r in self.requests if not r.dropped)

    @property
    def dropped(self) -> tuple[CompletedRequest, ...]:
        """Requests expired by the SLO deadline policy."""
        return tuple(r for r in self.requests if r.dropped)

    @property
    def total_tokens(self) -> int:
        """Tokens emitted across all requests."""
        return sum(len(r.tokens) for r in self.requests)

    def ttft_values(self) -> list[float]:
        """Per-request time-to-first-token samples."""
        return [r.ttft_s for r in self.requests if r.token_times_s]

    def token_latency_values(self) -> list[float]:
        """All inter-token gaps across requests."""
        gaps: list[float] = []
        for r in self.requests:
            gaps.extend(r.per_token_latencies_s())
        return gaps

    def goodput_rps(self) -> float:
        """SLO-met completions per simulated second."""
        if self.makespan_s <= 0:
            return 0.0
        return sum(1 for r in self.finished if r.met_slo) / self.makespan_s

    def tokens_per_s(self) -> float:
        """Aggregate decode throughput over the makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    def summary(self) -> dict:
        """The headline numbers as a JSON-serialisable dict."""
        ttft = self.ttft_values()
        gaps = self.token_latency_values()
        return {
            "requests": len(self.requests),
            "finished": len(self.finished),
            "dropped": len(self.dropped),
            "total_tokens": self.total_tokens,
            "decode_steps": self.decode_steps,
            "makespan_s": self.makespan_s,
            "p50_ttft_s": percentile(ttft, 50),
            "p99_ttft_s": percentile(ttft, 99),
            "p50_token_latency_s": percentile(gaps, 50),
            "p99_token_latency_s": percentile(gaps, 99),
            "goodput_rps": self.goodput_rps(),
            "tokens_per_s": self.tokens_per_s(),
            "slo_met": sum(1 for r in self.finished if r.met_slo),
            "wire_bytes_per_rank": self.wire_bytes_per_rank,
            "generations": self.generations,
            "readmissions": self.readmissions,
            "recomputes": self.recomputes,
            "cache": dict(self.cache_stats),
        }


def report_to_registry(report: ServingReport, registry) -> dict:
    """Project a report into a metrics registry; returns the summary.

    Histograms receive the raw samples; the exact percentiles and rates
    land in gauges so exporters and the CLI agree to the last digit.
    """
    summary = report.summary()
    ttft_hist = registry.histogram(
        "repro_serve_ttft_seconds",
        "Per-request time to first token (simulated seconds)",
        buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
    )
    for value in report.ttft_values():
        ttft_hist.observe(value)
    gap_hist = registry.histogram(
        "repro_serve_token_latency_seconds",
        "Inter-token emission gaps (simulated seconds)",
        buckets=(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5),
    )
    for value in report.token_latency_values():
        gap_hist.observe(value)
    outcomes = registry.counter(
        "repro_serve_requests_total",
        "Terminal requests by outcome",
        labelnames=("outcome",),
    )
    for record in report.requests:
        outcomes.inc(outcome=record.finish_reason)
    registry.counter(
        "repro_serve_tokens_total", "Tokens decoded across all requests"
    ).inc(report.total_tokens)
    registry.counter(
        "repro_serve_readmissions_total",
        "Requests re-admitted after a replica loss",
    ).inc(report.readmissions)
    cache_events = registry.counter(
        "repro_serve_cache_events_total",
        "State-cache events by kind",
        labelnames=("kind",),
    )
    for kind, key in (("hit", "hits"), ("miss", "misses"), ("evict", "evictions")):
        count = report.cache_stats.get(key, 0)
        if count:
            cache_events.inc(count, kind=kind)
    for name, help_text, key in (
        ("repro_serve_p50_ttft_seconds", "Exact p50 TTFT", "p50_ttft_s"),
        ("repro_serve_p99_ttft_seconds", "Exact p99 TTFT", "p99_ttft_s"),
        (
            "repro_serve_p50_token_latency_seconds",
            "Exact p50 inter-token gap",
            "p50_token_latency_s",
        ),
        (
            "repro_serve_p99_token_latency_seconds",
            "Exact p99 inter-token gap",
            "p99_token_latency_s",
        ),
        ("repro_serve_goodput_rps", "SLO-met completions per second", "goodput_rps"),
        ("repro_serve_tokens_per_second", "Decode throughput", "tokens_per_s"),
    ):
        value = summary[key]
        if isinstance(value, float) and np.isnan(value):
            continue
        registry.gauge(name, help_text).set(value)
    return summary
