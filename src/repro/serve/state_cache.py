"""Per-request recurrent-state cache: LRU under a simulated memory budget.

Autoregressive decode over an RNN needs one small state per request
(``(h, c)`` for the LSTM, ``s`` for the RHN) instead of a growing KV
cache — but the same serving problems apply: states of requests waiting
in the queue compete for device memory with states of the active batch.
The cache holds both kinds:

* **pinned** entries belong to requests currently in the active batch;
  they are never eviction candidates (the scheduler unpins on retire or
  preemption) — the invariant the property suite drives 200 random
  plans against;
* **unpinned** entries are speculative: prefilled-ahead queued requests
  keep their state here so admission is instant on a hit; under budget
  pressure they are evicted least-recently-used and transparently
  recomputed from the request's token history on admission (bit-exact,
  because the decode kernel is batch-invariant).

Every resident byte is charged to the simulated devices (tag
``serve-cache:<rid>``), so serving memory shows up in the same
``peak_bytes`` accounting the training paths use; every admit / evict /
hit / miss / release is appended to :attr:`RecurrentStateCache.events`
for the test harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheEntry", "CacheOverflowError", "RecurrentStateCache"]


class CacheOverflowError(MemoryError):
    """Raised when pinned entries alone exceed the cache budget.

    Pinned state cannot be evicted, so this is a configuration error:
    the admission policy sized the active batch beyond what the budget
    can hold.  The engine validates ``max_batch * state_nbytes`` against
    the budget up front to keep this unreachable in normal operation.
    """


@dataclass
class CacheEntry:
    """One resident recurrent state.

    ``n_consumed`` counts the tokens folded into the state (prompt plus
    emitted), so a hit can verify the state is current before reuse.
    """

    request_id: int
    state: tuple[np.ndarray, ...]
    n_consumed: int
    nbytes: int
    pinned: bool = False
    handles: list[tuple[object, int]] = field(default_factory=list, repr=False)


class RecurrentStateCache:
    """LRU cache of per-request decoder states under a byte budget.

    Parameters
    ----------
    budget_bytes:
        Total resident-state budget.  Eviction reclaims unpinned entries
        least-recently-used until a put fits; a put that cannot fit even
        after evicting everything unpinned raises
        :class:`CacheOverflowError` when pinned, and is refused (entry
        not cached, ``"refused"`` event) when speculative.
    devices:
        Optional simulated devices to charge resident bytes to (each
        entry is replicated to every device, matching the simulator's
        replica model).  ``None`` skips memory charging (pure-logic
        property tests).
    """

    def __init__(self, budget_bytes: int, devices=None):
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = int(budget_bytes)
        self.devices = list(devices) if devices is not None else []
        self._entries: dict[int, CacheEntry] = {}  # insertion = LRU order
        self.events: list[tuple[str, int]] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Total bytes currently held."""
        return sum(e.nbytes for e in self._entries.values())

    @property
    def pinned_bytes(self) -> int:
        """Bytes held by pinned (active-batch) entries."""
        return sum(e.nbytes for e in self._entries.values() if e.pinned)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._entries

    def _charge(self, entry: CacheEntry) -> None:
        for dev in self.devices:
            handle = dev.alloc(entry.nbytes, tag=f"serve-cache:{entry.request_id}")
            entry.handles.append((dev, handle))

    def _discharge(self, entry: CacheEntry) -> None:
        for dev, handle in entry.handles:
            dev.free(handle)
        entry.handles.clear()

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------

    def put(
        self,
        request_id: int,
        state: tuple[np.ndarray, ...],
        n_consumed: int,
        pinned: bool = False,
    ) -> bool:
        """Insert or replace a request's state; returns residency.

        Evicts LRU unpinned entries until the state fits.  A pinned put
        that still cannot fit raises :class:`CacheOverflowError`; an
        unpinned one is refused and ``False`` returned.
        """
        self.release(request_id, _event=False)
        nbytes = int(sum(np.asarray(a).nbytes for a in state))
        while (
            self.resident_bytes + nbytes > self.budget_bytes
            and self._evict_lru() is not None
        ):
            pass
        if self.resident_bytes + nbytes > self.budget_bytes:
            if pinned:
                raise CacheOverflowError(
                    f"pinned state for request {request_id} ({nbytes} B) "
                    f"exceeds the remaining budget "
                    f"({self.budget_bytes - self.resident_bytes} B unpinned-free)"
                )
            self.events.append(("refused", request_id))
            return False
        entry = CacheEntry(
            request_id=request_id,
            state=tuple(state),
            n_consumed=int(n_consumed),
            nbytes=nbytes,
            pinned=pinned,
        )
        self._charge(entry)
        self._entries[request_id] = entry
        self.events.append(("admit", request_id))
        return True

    def peek(self, request_id: int) -> CacheEntry | None:
        """Look up a state without touching LRU order or hit statistics.

        The engine's in-place per-step state update uses this: pinned
        entries are not eviction candidates, so refreshing their LRU
        position would only distort the hit/miss accounting.
        """
        return self._entries.get(request_id)

    def get(self, request_id: int) -> CacheEntry | None:
        """Look up a state, refreshing its LRU position.

        Counts a hit or miss; returns ``None`` on miss (the caller
        recomputes from the token history).
        """
        entry = self._entries.pop(request_id, None)
        if entry is None:
            self.misses += 1
            self.events.append(("miss", request_id))
            return None
        self._entries[request_id] = entry  # move to MRU position
        self.hits += 1
        self.events.append(("hit", request_id))
        return entry

    def pin(self, request_id: int) -> None:
        """Mark a resident entry as active-batch (never evictable)."""
        self._entries[request_id].pinned = True

    def unpin(self, request_id: int) -> None:
        """Return a resident entry to the evictable pool."""
        self._entries[request_id].pinned = False

    def release(self, request_id: int, _event: bool = True) -> None:
        """Drop a request's state outright (retire, drop, or rank loss)."""
        entry = self._entries.pop(request_id, None)
        if entry is None:
            return
        self._discharge(entry)
        if _event:
            self.events.append(("release", request_id))

    def _evict_lru(self) -> int | None:
        """Evict the least-recently-used unpinned entry, if any."""
        for request_id, entry in self._entries.items():
            if not entry.pinned:
                del self._entries[request_id]
                self._discharge(entry)
                self.evictions += 1
                self.events.append(("evict", request_id))
                return request_id
        return None

    def rebind(self, devices) -> None:
        """Re-charge resident entries to a new device set (world shrink).

        A resilient engine rebuilds its communicator after a rank loss;
        surviving states move their memory charges to the new devices.
        """
        for entry in self._entries.values():
            self._discharge(entry)
        self.devices = list(devices) if devices is not None else []
        for entry in self._entries.values():
            self._charge(entry)
        self.events.append(("rebind", -1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecurrentStateCache(entries={len(self._entries)}, "
            f"resident={self.resident_bytes}/{self.budget_bytes} B)"
        )
