"""Production-style inference serving on the simulated cluster.

Turns the training-only reproduction into a serving story (ROADMAP
item 2): autoregressive decode over the existing LSTM/RHN models with

* continuous batching (:mod:`repro.serve.scheduler`) — the active
  batch re-forms every decode step;
* per-request recurrent-state caching (:mod:`repro.serve.state_cache`)
  — LRU under a simulated memory budget, pinned while active;
* replica-sharded embedding lookup (:mod:`repro.serve.embedding`) —
  the paper's uniqueness dance applied to decode-step token ids;
* Zipfian/bursty traffic generation (:mod:`repro.serve.traffic`);
* the engine itself (:mod:`repro.serve.engine`), whose collectives
  ride the Timeline/CostLedger and whose latency metrics flow through
  the telemetry layer (:mod:`repro.serve.metrics`).

The correctness contract is *batching is a scheduling optimization,
not a numerics change*: decode kernels are batch-invariant and
sampling is keyed per ``(seed, request_id, position)``, so
:func:`~repro.serve.engine.naive_serve` (one request at a time) is
token-identical to the full engine — see ``tests/serve``.
"""

from .decoders import CharLMDecoder, WordLMDecoder, sample_token
from .embedding import sharded_embedding_lookup
from .engine import ServeConfig, ServingEngine, naive_serve
from .metrics import ServingReport, percentile, report_to_registry
from .request import CompletedRequest, RequestState, ServeRequest
from .scheduler import ContinuousBatchingScheduler
from .state_cache import CacheOverflowError, RecurrentStateCache
from .traffic import ArrivalSpec, TrafficConfig, generate_traffic

__all__ = [
    "ArrivalSpec",
    "CacheOverflowError",
    "CharLMDecoder",
    "CompletedRequest",
    "ContinuousBatchingScheduler",
    "RecurrentStateCache",
    "RequestState",
    "ServeConfig",
    "ServeRequest",
    "ServingEngine",
    "ServingReport",
    "TrafficConfig",
    "WordLMDecoder",
    "generate_traffic",
    "naive_serve",
    "percentile",
    "report_to_registry",
    "sample_token",
    "sharded_embedding_lookup",
]
