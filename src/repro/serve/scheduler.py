"""Continuous-batching scheduler: the active batch re-forms every step.

Static batching waits for a full batch, runs it to completion, and lets
finished slots idle; continuous batching (Orca-style) re-forms the
active set at every decode-step boundary — retired requests free their
slot immediately and queued arrivals are admitted into it.  The
scheduler here is **pure control logic**: it never touches a model,
communicator, or clock source, so the 200-case property suites can
drive it with random arrival/eviction plans at tens of microseconds per
plan.

States follow :class:`repro.serve.request.RequestState`:

* ``QUEUED`` — arrived (or not yet arrived) and waiting for a slot;
* ``ACTIVE`` — in the current decode batch;
* ``FINISHED`` — retired on EOS or token-budget exhaustion;
* ``DROPPED`` — expired under the SLO deadline policy *while queued*
  (admitted requests always run to completion; dropping work already
  prefix-decoded wastes the tokens the user has streamed).

Every transition appends to :attr:`ContinuousBatchingScheduler.events`
— ``(kind, request_id, now)`` tuples — which the no-silent-drop
property asserts over: a request may leave the system only through a
``finish`` or ``slo_expired`` event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .request import RequestState, ServeRequest

__all__ = ["ContinuousBatchingScheduler", "TrackedRequest"]


@dataclass
class TrackedRequest:
    """Mutable per-request bookkeeping inside the scheduler."""

    request: ServeRequest
    state: RequestState = RequestState.QUEUED
    emitted: list[int] = field(default_factory=list)
    token_times_s: list[float] = field(default_factory=list)
    finish_reason: str | None = None
    finish_s: float | None = None
    readmissions: int = 0

    @property
    def consumed_tokens(self) -> list[int]:
        """Prompt plus emissions — the decoder-visible token history."""
        return list(self.request.prompt) + self.emitted


class ContinuousBatchingScheduler:
    """Admission queue + active set over a stream of requests.

    Parameters
    ----------
    requests:
        The full (finite) request stream; internally ordered by
        ``(arrival_s, request_id)``.
    max_batch:
        Active-set capacity per decode step.
    drop_expired:
        The SLO deadline policy: when True, queued requests whose age
        exceeds their SLO budget are dropped at poll time (with an
        ``slo_expired`` event); when False they wait indefinitely.
    """

    def __init__(
        self,
        requests: list[ServeRequest],
        max_batch: int,
        drop_expired: bool = True,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique")
        self.max_batch = max_batch
        self.drop_expired = drop_expired
        self.records: dict[int, TrackedRequest] = {
            r.request_id: TrackedRequest(r)
            for r in sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        }
        self._queue: list[int] = list(self.records)
        self.active: list[int] = []
        self.finished: list[int] = []
        self.dropped: list[int] = []
        self.events: list[tuple[str, int, float]] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every request has reached a terminal state."""
        return not self._queue and not self.active

    def queued_ids(self) -> tuple[int, ...]:
        """Requests still waiting (arrived or future), in queue order."""
        return tuple(self._queue)

    def next_arrival_s(self, now: float) -> float | None:
        """Earliest future arrival among queued requests, if any."""
        future = [
            self.records[i].request.arrival_s
            for i in self._queue
            if self.records[i].request.arrival_s > now
        ]
        return min(future) if future else None

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def poll(self, now: float) -> tuple[list[int], list[int]]:
        """Apply the deadline policy, then fill free slots FIFO.

        Returns ``(admitted_ids, dropped_ids)`` for this poll.  Only
        arrived requests are considered; readmitted requests sit at the
        queue head so recovery work is rescheduled first.
        """
        dropped: list[int] = []
        if self.drop_expired:
            for rid in list(self._queue):
                rec = self.records[rid]
                if rec.request.arrival_s <= now and rec.request.deadline_s < now:
                    self._queue.remove(rid)
                    rec.state = RequestState.DROPPED
                    rec.finish_reason = "slo_expired"
                    rec.finish_s = now
                    self.dropped.append(rid)
                    self.events.append(("slo_expired", rid, now))
                    dropped.append(rid)
        admitted: list[int] = []
        for rid in list(self._queue):
            if len(self.active) >= self.max_batch:
                break
            rec = self.records[rid]
            if rec.request.arrival_s > now:
                continue
            self._queue.remove(rid)
            rec.state = RequestState.ACTIVE
            self.active.append(rid)
            self.events.append(("admit", rid, now))
            admitted.append(rid)
        return admitted, dropped

    def record_token(self, rid: int, token: int, now: float) -> str | None:
        """Register one emission; retires the request when it terminates.

        Returns the finish reason (``"eos"`` / ``"length"``) when the
        emission completed the request, else ``None``.
        """
        rec = self.records[rid]
        if rec.state is not RequestState.ACTIVE:
            raise ValueError(f"request {rid} is not active")
        rec.emitted.append(int(token))
        rec.token_times_s.append(now)
        reason = None
        if (
            rec.request.eos_token is not None
            and int(token) == rec.request.eos_token
        ):
            reason = "eos"
        elif len(rec.emitted) >= rec.request.max_new_tokens:
            reason = "length"
        if reason is not None:
            self._retire(rid, reason, now)
        return reason

    def _retire(self, rid: int, reason: str, now: float) -> None:
        rec = self.records[rid]
        self.active.remove(rid)
        rec.state = RequestState.FINISHED
        rec.finish_reason = reason
        rec.finish_s = now
        self.finished.append(rid)
        self.events.append(("finish", rid, now))

    def readmit(self, rid: int, now: float) -> None:
        """Return an active request to the queue head (rank loss).

        Emitted tokens are kept — they were already streamed to the
        client — only the decoder state is lost and will be recomputed
        on the next admission.
        """
        rec = self.records[rid]
        if rec.state is not RequestState.ACTIVE:
            raise ValueError(f"request {rid} is not active")
        self.active.remove(rid)
        rec.state = RequestState.QUEUED
        rec.readmissions += 1
        self._queue.insert(0, rid)
        self.events.append(("readmitted", rid, now))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContinuousBatchingScheduler(queued={len(self._queue)}, "
            f"active={len(self.active)}, finished={len(self.finished)}, "
            f"dropped={len(self.dropped)})"
        )
