"""Replica-sharded embedding lookup for decode steps.

Every decode step needs the embedding rows of the active batch's last
tokens.  With the model replicated across the data axis, each rank
*could* gather its shard's rows locally — but the serving story mirrors
the paper's training insight: token traffic is Zipf-skewed, so the
per-step id multiset is heavily duplicated, and the uniqueness dance of
:mod:`repro.core.unique` moves ``Θ(G·K + Ug·D)`` instead of
``Θ(G·K·D)``:

1. allgather the per-rank id vectors (index traffic only, no ``D``);
2. derive the sorted global unique set Î via
   :func:`repro.core.unique.global_unique` — identical on every rank;
3. each rank contributes the embedding rows of *its* contiguous shard
   of Î (``np.array_split`` bounds, deterministic);
4. allgather the row shards — rank order restores ascending Î order;
5. each rank gathers its own rows by ``searchsorted`` into Î.

The result is bitwise equal to the local gather ``weight[ids]`` (pure
row copies, no arithmetic), so the lookup is invisible to the
differential tokens — it only changes what the ledger and timeline see,
which is the point.
"""

from __future__ import annotations

import numpy as np

from ..cluster.communicator import Communicator
from ..core.unique import global_unique

__all__ = ["sharded_embedding_lookup"]


def sharded_embedding_lookup(
    comm: Communicator,
    weight: np.ndarray,
    ids_per_rank: list[np.ndarray],
    tag: str = "decode",
) -> list[np.ndarray]:
    """Gather embedding rows for each rank's token ids, sharded over Î.

    Parameters
    ----------
    comm:
        The simulated communicator; both collectives land on its
        timeline and ledger under the ``serve-embed`` scope.
    weight:
        The replicated ``(V, D)`` embedding matrix.
    ids_per_rank:
        One int64 id vector per rank (index = rank, lengths may differ;
        empty vectors are fine for ranks with no active shard).
    tag:
        Ledger tag suffix distinguishing call sites.

    Returns
    -------
    list[np.ndarray]
        Per-rank ``(K_r, D)`` row matrices, bitwise equal to
        ``weight[ids_per_rank[r]]``.
    """
    if len(ids_per_rank) != comm.world_size:
        raise ValueError(
            f"got {len(ids_per_rank)} id vectors for world size "
            f"{comm.world_size}"
        )
    ids_per_rank = [np.asarray(ids, dtype=np.int64) for ids in ids_per_rank]
    for ids in ids_per_rank:
        if ids.ndim != 1:
            raise ValueError("id vectors must be 1-D")

    with comm.ledger.scope("serve-embed"):
        # Step 1: index-only gather, Θ(G·K) — raw int64, wire == payload.
        id_payload_bytes = max(ids.nbytes for ids in ids_per_rank)
        all_ids = comm.allgather(
            ids_per_rank,
            tag=f"serve-ids:{tag}",
            payload_bytes=id_payload_bytes,
        )[0]

        # Step 2: every rank derives the same sorted global type set.
        global_ids = global_unique(all_ids)

        # Step 3: contiguous Î shards, one per rank (may be empty).
        shards = np.array_split(global_ids, comm.world_size)
        contributions = [weight[shard] for shard in shards]

        # Step 4: gather the row shards; rank-order concat == Î order.
        row_payload_bytes = max(c.nbytes for c in contributions)
        rows = comm.allgather(
            contributions,
            tag=f"serve-rows:{tag}",
            payload_bytes=row_payload_bytes,
        )[0]

    # Step 5: local searchsorted gather — pure row copies, bit-exact.
    return [rows[np.searchsorted(global_ids, ids)] for ids in ids_per_rank]
