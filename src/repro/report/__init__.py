"""Benchmark reporting: plain-text tables/series plus CSV/JSON export."""

from .export import to_csv, to_json, write_results
from .tables import format_series, format_table

__all__ = ["format_table", "format_series", "to_csv", "to_json", "write_results"]
