"""Structured result export: CSV and JSON for downstream analysis.

The benchmark harness prints human tables; pipelines want data.  These
helpers serialize the same (headers, rows) structures the formatters
consume, so a bench can emit both from one source of truth.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from collections.abc import Sequence

__all__ = ["to_csv", "to_json", "write_results"]


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render headers + rows as CSV text."""
    _validate(headers, rows)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def to_json(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    meta: dict | None = None,
) -> str:
    """Render as a JSON document of row objects keyed by header.

    ``meta`` attaches provenance (paper table id, units, commit, ...).
    """
    _validate(headers, rows)
    records = [dict(zip(headers, row)) for row in rows]
    doc = {"meta": meta or {}, "rows": records}
    return json.dumps(doc, indent=2, default=str)


def write_results(
    directory: str | pathlib.Path,
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    meta: dict | None = None,
) -> dict[str, pathlib.Path]:
    """Write ``<name>.csv`` and ``<name>.json`` under ``directory``.

    Returns the written paths keyed by format.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{name}.csv"
    json_path = directory / f"{name}.json"
    csv_path.write_text(to_csv(headers, rows))
    json_path.write_text(to_json(headers, rows, meta=meta))
    return {"csv": csv_path, "json": json_path}


def _validate(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    if not headers:
        raise ValueError("need at least one column")
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells for {len(headers)} columns"
            )
