"""Plain-text table/series formatting shared by the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells for {len(headers)} columns")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be parallel")
    pairs = "  ".join(f"({_stringify(x)}, {_stringify(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
