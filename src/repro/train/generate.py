"""Text generation from trained language models.

Autoregressive ancestral sampling with temperature and top-k filtering —
the classic demonstration that a trained LM models its corpus, and the
noisy-channel prior role the paper's introduction motivates.

Works with both model families: the word LM scores continuations against
its sampled-softmax output embedding (full softmax at generation time),
the char LM against its full-softmax layer.
"""

from __future__ import annotations

import numpy as np

from ..nn.functional import softmax
from .char_lm import CharLanguageModel
from .word_lm import WordLanguageModel

__all__ = ["generate", "next_token_distribution"]


def next_token_distribution(
    model: WordLanguageModel | CharLanguageModel, context: np.ndarray
) -> np.ndarray:
    """P(next token | context) over the full vocabulary.

    ``context`` is a 1-D array of token ids; the model runs in eval mode
    (dropout off, no carried training state disturbed).
    """
    context = np.asarray(context)
    if context.ndim != 1 or context.size == 0:
        raise ValueError("context must be a non-empty 1-D id array")
    was_training = model.training
    model.eval()
    try:
        inputs = context[None, :]
        if isinstance(model, WordLanguageModel):
            hidden, _ = model._forward_hidden(inputs)
            logits = hidden[-1] @ model.loss_layer.weight.data.T
        else:
            emb, _ = model.embedding.forward(inputs)
            hs, _ = model.rhn.forward(emb)
            logits = (
                hs[0, -1] @ model.loss_layer.weight.data.T
                + model.loss_layer.bias.data
            )
    finally:
        model.train(was_training)
    return softmax(logits[None, :], axis=1)[0]


def generate(
    model: WordLanguageModel | CharLanguageModel,
    prompt: np.ndarray,
    length: int,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int | None = None,
    max_context: int = 64,
) -> np.ndarray:
    """Sample ``length`` tokens continuing ``prompt``.

    Parameters
    ----------
    temperature:
        Softmax temperature; below 1.0 sharpens toward the mode.
    top_k:
        Keep only the k most probable tokens before sampling.
    max_context:
        Sliding-window context length fed back into the model.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if top_k is not None and top_k <= 0:
        raise ValueError("top_k must be positive")
    context = list(np.asarray(prompt, dtype=np.int64))
    if not context:
        raise ValueError("prompt must be non-empty")
    out: list[int] = []
    for _ in range(length):
        probs = next_token_distribution(
            model, np.asarray(context[-max_context:], dtype=np.int64)
        )
        if temperature != 1.0:
            logp = np.log(np.maximum(probs, 1e-300)) / temperature
            probs = softmax(logp[None, :], axis=1)[0]
        if top_k is not None and top_k < probs.size:
            cutoff = np.partition(probs, -top_k)[-top_k]
            probs = np.where(probs >= cutoff, probs, 0.0)
            probs = probs / probs.sum()
        token = int(rng.choice(probs.size, p=probs))
        context.append(token)
        out.append(token)
    return np.asarray(out, dtype=np.int64)
