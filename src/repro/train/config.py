"""Model and training configuration dataclasses.

The paper-scale architectures (Section IV-B) are provided as presets;
experiments at simulator scale use shrunk copies via ``scaled``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.compression import WireCodec
from ..core.seeding import SeedStrategy
from ..data.batching import BatchSpec

__all__ = [
    "WordLMConfig",
    "CharLMConfig",
    "TrainConfig",
    "PAPER_WORD_LM",
    "PAPER_CHAR_LM",
]


@dataclass(frozen=True)
class WordLMConfig:
    """Word LM architecture (the paper's: one 2048-cell LSTM, 512 proj,
    100K vocabulary, 1024 sampled-softmax candidates).

    ``tie_embeddings`` shares the input embedding matrix as the output
    embedding (requires ``embedding_dim == projection_dim``) — the
    weight-tying variant the paper notes implementations may use; it
    halves embedding memory and routes both layers' sparse gradients
    through one exchange.
    """

    vocab_size: int = 100_000
    embedding_dim: int = 512
    hidden_dim: int = 2048
    projection_dim: int = 512
    num_samples: int = 1024
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if min(
            self.vocab_size, self.embedding_dim, self.hidden_dim,
            self.projection_dim, self.num_samples,
        ) <= 0:
            raise ValueError("all dimensions must be positive")
        if self.num_samples >= self.vocab_size:
            raise ValueError("num_samples must be below vocab_size")
        if self.tie_embeddings and self.embedding_dim != self.projection_dim:
            raise ValueError(
                "tied embeddings require embedding_dim == projection_dim"
            )

    def scaled(self, **overrides: int) -> "WordLMConfig":
        """A shrunk copy for simulator-scale experiments."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CharLMConfig:
    """Char LM architecture (the paper's: depth-10 RHN, 1792 cells,
    full softmax; 98-symbol English / 15,437-symbol Chinese vocab)."""

    vocab_size: int = 98
    embedding_dim: int = 128
    hidden_dim: int = 1792
    depth: int = 10
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if min(self.vocab_size, self.embedding_dim, self.hidden_dim, self.depth) <= 0:
            raise ValueError("all dimensions must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    def scaled(self, **overrides: int | float) -> "CharLMConfig":
        return replace(self, **overrides)


#: Paper-scale presets (Section IV-B).
PAPER_WORD_LM = WordLMConfig()
PAPER_CHAR_LM = CharLMConfig()


@dataclass(frozen=True)
class TrainConfig:
    """Distributed-training run description.

    Attributes
    ----------
    world_size:
        Simulated GPU count G.
    batch:
        Per-rank batch shape (the paper: 32 seqs x 20 for word LM,
        128 x 150 for char LM).
    base_lr, lr_decay:
        Base learning rate and per-epoch decay; the effective initial
        rate is ``base_lr * ln(nodes)`` per the paper's scaling rule.
    gpus_per_node:
        Node width for the LR rule (8 in the paper's cluster).
    use_unique, codec, seed_strategy:
        The three techniques: unique exchange on/off; optional FP16 wire
        codec; sampled-softmax seed strategy (word LM only).
    accumulation_steps:
        Gradient-accumulation micro-steps per synchronization: the
        effective global batch becomes ``world * K * accumulation_steps``
        at one exchange per optimizer step — the cheap way to grow batch
        without more (simulated) GPUs.
    loss_scale:
        Loss scaling (Section III-C): a float for a static scale (the
        paper uses 256/512/1024), the string ``"dynamic"`` for the
        adaptive scaler (overflowing steps are skipped and the scale
        backs off), or ``None`` to disable.
    shuffle_seed:
        When set, the batcher reshuffles its segment->stream assignment
        every epoch with this seed (identical on all ranks); ``None``
        keeps fully deterministic streams.
    init_seed, data_seed:
        Model-init and sampling seeds (replicas share ``init_seed``).
    clip_norm:
        Optional global-norm gradient clip.
    overlap:
        Drive gradient sync on the overlapped (issue-all-then-drain)
        schedule: backward compute is recorded layer-by-layer on the
        simulated timeline with each layer's collective issued as its
        gradient is produced.  Numerics are bit-identical to the
        blocking schedule — only the simulated step time changes.
    compute_seconds_per_step:
        Simulated forward+backward compute time per rank per micro-step,
        recorded on the communicator's timeline so overlap can actually
        hide communication.  ``None`` (default) records no compute —
        the pre-timeline behaviour.
    wire_codec:
        Wire-compression spec handed to
        :meth:`repro.core.wire.policy.WirePolicy.from_spec` (``"auto"``,
        ``"fp16"``, ``"delta"``, ``"rle"``, ``"fp16+delta"``, ...,
        ``"none"``).  ``None`` (default) builds no policy at all — the
        pre-wire behaviour, bit-and-ledger-identical to the seed.
        Independent of ``codec``, which (if set) still wins for value
        traffic.
    wire_chunk_bytes:
        Chunk granularity for the pipelined index gather (logical bytes
        per rank); requires ``wire_codec``.
    wire_sanitize:
        Wrap the policy's codecs with the runtime sanitizer's checking
        variants (bit-exact roundtrip / FP16 overflow detection).
    fused_reduce:
        Run dense gradient allreduces as fused compress-reduce rings
        (:func:`repro.core.wire.fused.icompressed_allreduce`): the
        value codec is applied inside the collective and partials are
        summed in the compressed domain.  Numerics are bit-identical
        to the unfused path; only the simulated schedule and ledger
        change.  Requires a summable value codec (fp16 / identity /
        none) and does not compose with ``mesh``.
    wire_learn:
        After each epoch, feed the measured wire telemetry back into
        the adaptive selector's throughput table
        (:meth:`repro.core.wire.adaptive.AdaptiveCodecSelector.
        learn_from_metrics`) so later crossover decisions use observed
        bytes/sec instead of the static defaults.  Requires
        ``wire_codec="auto"`` (only the selector consults the table).
    mesh:
        Optional hybrid-parallelism mesh spec over the world, e.g.
        ``"pipe=2,tensor=2,data=G/4"`` (axes default to 1 when omitted;
        the product must equal ``world_size``).  When set, the trainer
        keeps one model replica per **data** coordinate, restricts
        gradient sync to the data axis (sharded over pipe × tensor),
        and charges pipeline activation sends on the pipe axis.
        ``None`` (default) is the flat data-parallel path;
        ``"data=G"`` routes through the mesh machinery with bit-exact
        identical numerics (regression-pinned).  A mesh does not
        compose with ``codec``/``wire_codec`` (the sharded exchange
        carries raw values) or ``overlap`` (the mesh sync is blocking)
        — those combinations are rejected eagerly.
    batched:
        Batched rank execution (the simulator fast path).  ``None``
        (default) auto-enables it when the replicas qualify (two or more
        flat data-parallel :class:`~repro.train.char_lm.CharLanguageModel`
        replicas); ``False`` forces the per-rank loop; ``True`` requires
        the fast path and raises at trainer construction if the model
        does not support it.  Numerics are bit-identical either way
        (regression-pinned) — this knob only trades host wall-clock.
    """

    world_size: int
    batch: BatchSpec
    base_lr: float
    lr_decay: float = 0.9
    gpus_per_node: int = 8
    use_unique: bool = True
    codec: WireCodec | None = None
    seed_strategy: SeedStrategy = SeedStrategy.PER_RANK
    init_seed: int = 1234
    data_seed: int = 99
    clip_norm: float | None = None
    accumulation_steps: int = 1
    loss_scale: float | str | None = None
    shuffle_seed: int | None = None
    overlap: bool = False
    compute_seconds_per_step: float | None = None
    wire_codec: str | None = None
    wire_chunk_bytes: int | None = None
    wire_sanitize: bool = False
    fused_reduce: bool = False
    wire_learn: bool = False
    mesh: str | None = None
    batched: bool | None = None

    def __post_init__(self) -> None:
        if (
            self.compute_seconds_per_step is not None
            and self.compute_seconds_per_step <= 0
        ):
            raise ValueError("compute_seconds_per_step must be positive")
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.accumulation_steps <= 0:
            raise ValueError("accumulation_steps must be positive")
        if isinstance(self.loss_scale, str) and self.loss_scale != "dynamic":
            raise ValueError(
                "loss_scale must be a float, 'dynamic', or None"
            )
        if isinstance(self.loss_scale, (int, float)) and self.loss_scale < 1:
            raise ValueError("static loss_scale must be >= 1")
        if self.wire_chunk_bytes is not None:
            if self.wire_chunk_bytes <= 0:
                raise ValueError("wire_chunk_bytes must be positive")
            if self.wire_codec is None:
                raise ValueError("wire_chunk_bytes requires wire_codec")
        if self.wire_codec is not None:
            # Validate the spec eagerly: a typo should fail at config
            # construction, not three epochs into a run.
            from ..core.wire.policy import WirePolicy

            WirePolicy.from_spec(self.wire_codec, self.wire_chunk_bytes)
        if self.wire_learn and self.wire_codec != "auto":
            raise ValueError(
                "wire_learn feeds the adaptive selector's throughput "
                'table; it requires wire_codec="auto"'
            )
        if self.fused_reduce and self.mesh is not None:
            raise ValueError(
                "fused_reduce rides the flat ring; it does not compose "
                "with a mesh"
            )
        if self.mesh is not None:
            # Same eager stance for the mesh: parse the spec (and check
            # it against world_size) at construction time, and reject
            # the combinations the mesh sync path cannot honour.
            from ..cluster.mesh import hybrid_mesh

            hybrid_mesh(self.mesh, self.world_size)
            if self.codec is not None or self.wire_codec is not None:
                raise ValueError(
                    "mesh training does not compose with codec/wire_codec: "
                    "the sharded data-axis exchange carries raw values; "
                    "drop the codec or the mesh"
                )
            if self.overlap:
                raise ValueError(
                    "mesh training uses the blocking sync schedule; "
                    "overlap=True is not supported with a mesh"
                )

    @property
    def num_nodes(self) -> int:
        return -(-self.world_size // self.gpus_per_node)

    @property
    def mesh_shape(self) -> tuple[int, int, int] | None:
        """``(pipe, tensor, data)`` sizes of the mesh, or None if flat."""
        if self.mesh is None:
            return None
        from ..cluster.mesh import hybrid_mesh

        m = hybrid_mesh(self.mesh, self.world_size)
        return (m.axis_size("pipe"), m.axis_size("tensor"), m.axis_size("data"))
