"""Accuracy metrics: perplexity, bits-per-character, compression ratio.

The paper reports word-LM accuracy as validation perplexity (Figures 5,
7), char-LM accuracy as perplexity (Figure 8) or bits-per-character
(Section V-D), and — for the baseline-less Tieba corpus — a *compression
ratio* derived from BPC (Section V-C): perplexity is an indication of
performance in text compression, so corpus-bits-per-char divided by
model-bits-per-char measures how well the model compresses its corpus.
"""

from __future__ import annotations

import math

__all__ = [
    "perplexity",
    "nll_from_perplexity",
    "bits_per_char",
    "perplexity_from_bpc",
    "compression_ratio",
    "accuracy_improvement",
]


def perplexity(nll_nats: float) -> float:
    """Perplexity from a mean negative log-likelihood in nats/token."""
    if nll_nats < 0:
        raise ValueError("NLL must be non-negative")
    return math.exp(nll_nats)


def nll_from_perplexity(ppl: float) -> float:
    """Inverse of :func:`perplexity`."""
    if ppl < 1.0:
        raise ValueError("perplexity must be >= 1")
    return math.log(ppl)


def bits_per_char(nll_nats: float) -> float:
    """BPC = log2(perplexity) = NLL / ln 2 for character-unit models."""
    if nll_nats < 0:
        raise ValueError("NLL must be non-negative")
    return nll_nats / math.log(2.0)


def perplexity_from_bpc(bpc: float) -> float:
    """Character perplexity equivalent to a BPC figure (ppl = 2^bpc)."""
    if bpc < 0:
        raise ValueError("BPC must be non-negative")
    return 2.0**bpc


def compression_ratio(
    corpus_bytes: float, n_chars: float, model_bpc: float
) -> float:
    """The paper's Section V-C metric.

    The corpus stores ``corpus_bytes * 8 / n_chars`` bits per character
    (≈ 8 for ASCII English, ~23 for UTF-8 Chinese); a model achieving
    ``model_bpc`` compresses it by their ratio.  The paper reports 6.3
    for Tieba (ppl 11.1 over 93 GB / 34.36 B chars) vs 6.8 for the prior
    work's Amazon result (BPC 1.11).
    """
    if corpus_bytes <= 0 or n_chars <= 0:
        raise ValueError("corpus_bytes and n_chars must be positive")
    if model_bpc <= 0:
        raise ValueError("model_bpc must be positive")
    corpus_bits_per_char = corpus_bytes * 8.0 / n_chars
    return corpus_bits_per_char / model_bpc


def accuracy_improvement(baseline_ppl: float, improved_ppl: float) -> float:
    """Relative perplexity improvement, as a fraction.

    The paper's "35% accuracy improvement" for Tieba compares perplexity
    17.06 (3 GB / 6 GPUs) to 11.1 (93 GB / 192 GPUs):
    ``(17.06 - 11.1) / 17.06 = 0.349``.
    """
    if baseline_ppl < 1.0 or improved_ppl < 1.0:
        raise ValueError("perplexities must be >= 1")
    return (baseline_ppl - improved_ppl) / baseline_ppl
