"""SPMD data-parallel trainer over the simulated cluster.

Runs G model replicas (one per simulated GPU) through synchronous
data-parallel training exactly as Section II-B describes: each rank
computes forward/backward on its own local batch, then all gradients are
synchronized — dense ones by ALLREDUCE, embedding ones by the configured
exchange strategy — and each rank applies the identical update locally.

Every accuracy number produced here is *real* (actual gradient descent
on actual Zipfian data); only memory/time accounting is simulated.

When the config sets ``compute_seconds_per_step``, each step also
records compute on the communicator's per-rank timeline, so simulated
iteration time reflects compute *and* communication.  With
``overlap=False`` the whole forward+backward is recorded before the
(blocking) sync — serial compute-then-comm.  With ``overlap=True`` the
trainer drives layer-by-layer backward-with-issue: forward (and the
non-overlappable head of backward) is recorded up front, then each
parameter's slice of backward compute is recorded immediately before
its collective is issued, so communication hides behind the rest of
backward exactly as DDP-style gradient hooks achieve on real hardware.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..cluster.communicator import Communicator
from ..cluster.mesh import MeshCommunicator, hybrid_mesh
from ..core.embedding_sync import GradientSynchronizer
from ..core.seeding import assign_seeds
from ..core.sparse_exchange import AllGatherExchange, UniqueExchange
from ..core.wire.policy import WirePolicy
from ..data.batching import Batch, ShardedBatcher, make_eval_batches
from ..nn.batched import build_batched_executor
from ..nn.module import Module
from ..optim.loss_scaler import (
    DynamicLossScaler,
    StaticLossScaler,
    grads_are_finite,
)
from ..nn.parallel import PipelineSchedule
from ..optim.lr_schedule import EpochDecaySchedule
from .config import TrainConfig
from .metrics import perplexity

__all__ = [
    "DistributedTrainer",
    "EpochStats",
    "EvalPoint",
    "assert_replicas_synchronized",
    "max_replica_divergence",
]

# Backward's share of one fwd+bwd pass: backward costs roughly twice
# forward (two matmuls per layer vs one), the split overlap schedules
# conventionally assume.
_BACKWARD_FRACTION = 2.0 / 3.0


def max_replica_divergence(replicas: list[Module]) -> float:
    """Largest absolute parameter difference between any replica and rank 0."""
    if len(replicas) < 2:
        return 0.0
    base = dict(replicas[0].named_parameters())
    worst = 0.0
    for other in replicas[1:]:
        for name, p in other.named_parameters():
            diff = float(np.abs(p.data - base[name].data).max())
            worst = max(worst, diff)
    return worst


def assert_replicas_synchronized(replicas: list[Module], atol: float = 0.0) -> None:
    """Raise if replicas have drifted apart — the core sync invariant."""
    worst = max_replica_divergence(replicas)
    if worst > atol:
        raise AssertionError(
            f"replicas diverged: max parameter delta {worst:.3e} > {atol:.3e}"
        )


@dataclass(frozen=True)
class EvalPoint:
    """One validation measurement along training."""

    epoch: float
    nll: float

    @property
    def perplexity(self) -> float:
        return perplexity(self.nll)


@dataclass
class EpochStats:
    """Aggregates of one training epoch."""

    epoch: int
    mean_train_loss: float
    lr: float
    eval_points: list[EvalPoint] = field(default_factory=list)
    unique_fractions: list[float] = field(default_factory=list)

    @property
    def final_perplexity(self) -> float:
        if not self.eval_points:
            raise ValueError("epoch has no evaluation points")
        return self.eval_points[-1].perplexity


class DistributedTrainer:
    """Drive G replicas through synchronous data-parallel training.

    With ``config.mesh`` set, the world is a hybrid
    ``(pipe, tensor, data)`` mesh instead of a flat rank list: one
    replica is kept per **data** coordinate, gradient sync runs on the
    data axis only (sharded across the pipe × tensor model ranks via
    :mod:`repro.core.mesh_exchange`), and — when compute accounting is
    on and ``pipe > 1`` — each step is placed as a 1F1B pipeline
    schedule with activation sends charged on the pipe axis.  A
    ``(1, 1, G)`` mesh reproduces the flat path bit-for-bit.

    Parameters
    ----------
    model_factory:
        ``f(init_rng, rank) -> Module``; called once per rank with an
        identically-seeded init generator (replicas must start equal —
        per-rank extras like dropout streams may key off ``rank``).
    optimizer_factory:
        ``f(params, lr) -> optimizer`` with a mutable ``lr`` attribute
        and a ``step()`` method.
    train_tokens, valid_tokens:
        Token-id streams.
    config:
        Run description (world size, batch shape, techniques, seeds).
    comm:
        Optional pre-built communicator; by default one is created with
        memory tracking **off** (accuracy runs routinely simulate more
        ranks x batch than one host could track byte-for-byte).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession`; when set
        (here or later via ``session.adopt_trainer``), every optimizer
        step emits a structured record — loss, perplexity, step time,
        wire-byte delta, loss scale, skip flag — to the session.
    """

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator, int], Module],
        optimizer_factory,
        train_tokens: np.ndarray,
        valid_tokens: np.ndarray,
        config: TrainConfig,
        comm: Communicator | None = None,
        telemetry=None,
    ):
        self.config = config
        self.comm = (
            comm
            if comm is not None
            else Communicator(config.world_size, track_memory=False)
        )
        if self.comm.world_size != config.world_size:
            raise ValueError("communicator world size != config world size")

        # Hybrid mesh: when configured, the world is (pipe, tensor,
        # data) and one model replica stands for each *data* coordinate
        # — the pipe × tensor shards of that replica live as gradient
        # shards inside the mesh exchange, not as separate modules.
        self.mesh = None
        self.mesh_comm = None
        if config.mesh is not None:
            self.mesh = hybrid_mesh(config.mesh, config.world_size)
            self.mesh_comm = MeshCommunicator(self.comm, self.mesh)
        self.data_parallel = (
            self.mesh.axis_size("data")
            if self.mesh is not None
            else config.world_size
        )

        self.replicas = [
            model_factory(np.random.default_rng(config.init_seed), rank)
            for rank in range(self.data_parallel)  # mesh-ok: one replica per data-parallel group by construction
        ]
        wire = None
        if config.wire_codec is not None:
            wire = WirePolicy.from_spec(
                config.wire_codec, config.wire_chunk_bytes
            )
            if config.wire_sanitize:
                wire = wire.sanitized()
            if wire.is_inert:
                wire = None  # "none": keep the pre-wire code paths
        self.wire = wire
        strategy = (
            UniqueExchange(codec=config.codec, wire=wire)
            if config.use_unique
            else AllGatherExchange(codec=config.codec, wire=wire)
        )
        track_compute = config.compute_seconds_per_step is not None
        self.synchronizer = GradientSynchronizer(
            self.comm,
            strategy=strategy,
            codec=config.codec,
            wire=wire,
            average=True,
            overlap=config.overlap,
            on_issue=(
                self._record_backward_slice
                if (config.overlap and track_compute)
                else None
            ),
            mesh_comm=self.mesh_comm,
            fused_reduce=config.fused_reduce,
        )
        self._backward_slice_s = 0.0
        self.batcher = ShardedBatcher(
            train_tokens,
            config.batch,
            self.data_parallel,
            shuffle_seed=config.shuffle_seed,
        )
        self.eval_batches: list[Batch] = make_eval_batches(
            valid_tokens, config.batch, max_batches=8
        )
        self.schedule = EpochDecaySchedule.for_cluster(
            config.base_lr, config.num_nodes, decay=config.lr_decay
        )
        self.optimizers = [
            optimizer_factory(list(r.parameters()), self.schedule.initial_lr)
            for r in self.replicas
        ]
        self.seed_assignment = assign_seeds(
            config.seed_strategy, self.data_parallel, base_seed=config.data_seed
        )
        # Simulator fast path: run all replicas' numpy work as one
        # stacked pass (bit-identical to the per-rank loop).  Orthogonal
        # to sync scheduling — overlap/mesh/codec configs still qualify.
        self.batched_executor = None
        if config.batched is not False:
            self.batched_executor = build_batched_executor(self.replicas)
        if config.batched is True and self.batched_executor is None:
            raise ValueError(
                "batched=True but the model does not support batched "
                "execution (needs >=2 CharLanguageModel replicas with "
                "identical configs)"
            )
        # When every replica's optimizer supports state replication, a
        # fully-batched step can apply rank 0's update once and copy it,
        # instead of re-running the identical update per replica.
        self._fused_apply = all(
            callable(getattr(opt, "replicate_from", None))
            for opt in self.optimizers
        )
        self.scaler: StaticLossScaler | None
        if config.loss_scale is None:
            self.scaler = None
        elif config.loss_scale == "dynamic":
            self.scaler = DynamicLossScaler()
        else:
            self.scaler = StaticLossScaler(float(config.loss_scale))
        self.global_step = 0      # optimizer steps taken
        self.data_step = 0        # batcher windows consumed
        self.skipped_steps = 0    # overflow-skipped optimizer steps
        self.epochs_done = 0      # completed train_epoch calls
        self.history: list[EpochStats] = []
        self.telemetry = None     # set by TelemetrySession.adopt_trainer
        if telemetry is not None:
            telemetry.adopt_trainer(self)

    # ------------------------------------------------------------------

    def evaluate(self) -> float:
        """Validation NLL (nats/token) of the (synchronized) model."""
        return self.replicas[0].eval_nll(self.eval_batches)

    def _record_backward_slice(self, name: str) -> None:
        """Timeline hook: one parameter's backward compute, every rank.

        Installed as the synchronizer's ``on_issue`` hook when overlap
        and compute accounting are both enabled, so each layer's
        gradient "costs" compute immediately before its collective is
        issued.
        """
        timeline = self.comm.timeline
        for rank in range(self.comm.world_size):  # mesh-ok: SPMD driver loop charging every simulated rank's clock
            timeline.record_compute(
                rank, self._backward_slice_s, name=f"bwd:{name}"
            )

    def _record_step_compute(self) -> None:
        """Place this step's compute on the timeline (pre-sync part).

        Blocking schedule: the whole forward+backward lands before the
        sync.  Overlapped schedule: forward lands here; backward is
        divided evenly among the parameters that will sync and recorded
        slice-by-slice by :meth:`_record_backward_slice` as their
        collectives are issued.  On a mesh with ``pipe > 1`` the step is
        instead placed as a GPipe-style 1F1B
        :class:`~repro.nn.parallel.PipelineSchedule`: each stage works
        ``1/p`` of the model per micro-batch, accumulation steps are the
        micro-batches, and activation sends are charged on the pipe
        axis.
        """
        compute_s = self.config.compute_seconds_per_step
        if compute_s is None:
            return
        if self.mesh is not None and self.mesh.axis_size("pipe") > 1:
            p = self.mesh.axis_size("pipe")
            per_stage = compute_s / p
            schedule = PipelineSchedule(
                num_stages=p,
                num_micro=self.config.accumulation_steps,
                fwd_time_s=per_stage * (1.0 - _BACKWARD_FRACTION),
                bwd_time_s=per_stage * _BACKWARD_FRACTION,
            )
            schedule.record(
                self.mesh_comm,
                axis="pipe",
                activation_bytes=4 * self.config.batch.local_batch_tokens,
                tag=f"step{self.global_step}",
            )
            return
        total = compute_s * self.config.accumulation_steps
        timeline = self.comm.timeline
        head = total
        if self.config.overlap:
            n_sync = sum(
                1
                for _, p in self.replicas[0].named_parameters()
                if p.grad is not None or p.sparse_grads
            )
            if n_sync > 0:
                backward = total * _BACKWARD_FRACTION
                self._backward_slice_s = backward / n_sync
                head = total - backward
        for rank in range(self.comm.world_size):  # mesh-ok: SPMD driver loop charging every simulated rank's clock
            timeline.record_compute(rank, head, name="fwd-bwd")

    def train_step(self) -> float:
        """One synchronous optimizer step across all ranks.

        Runs ``accumulation_steps`` micro-batches per rank (gradients
        accumulate locally), synchronizes once, and applies the update.
        Returns the mean training loss over ranks and micro-steps.
        """
        telemetry = self.telemetry
        if telemetry is not None:
            ledger_before = self.comm.ledger.snapshot()
            time_before = self.comm.timeline.mark()
        accum = self.config.accumulation_steps
        scale = self.scaler.scale if self.scaler is not None else 1.0
        losses = []
        all_batched = self.batched_executor is not None
        for _ in range(accum):
            step_in_epoch = self.data_step % self.batcher.steps_per_epoch
            batched_losses = None
            if self.batched_executor is not None:
                batched_losses = self.batched_executor.step(
                    self.batcher.step_batches(step_in_epoch),
                    loss_scale=scale,
                )
            if batched_losses is not None:
                losses.extend(batched_losses)
            else:
                # Per-rank fallback.  rank_generators is stateless per
                # call, so skipping it on batched micro-steps is safe.
                all_batched = False
                sample_rngs = self.seed_assignment.rank_generators(
                    step=self.data_step
                )
                for rank, replica in enumerate(self.replicas):
                    batch = self.batcher.batch(rank, step_in_epoch)
                    losses.append(
                        replica.step(
                            batch, sample_rngs[rank], loss_scale=scale
                        )
                    )
            self.data_step += 1
        self._record_step_compute()
        # When the fused apply will consume post-sync grads exactly once
        # (rank 0 steps, the rest replicate its state) and nothing else
        # mutates them afterwards (no accumulation rescale, no loss-scale
        # unscale), synced grads can be shared objects across ranks —
        # same bits, world-1 fewer buffer copies per parameter.
        shared_grads = (
            all_batched
            and self._fused_apply
            and accum == 1
            and self.scaler is None
        )
        with self.comm.ledger.scope("sync"):
            self.synchronizer.sync_replicas(
                self.replicas, shared_grads=shared_grads
            )
        if accum > 1:
            self._scale_grads(1.0 / accum)
        skipped = False
        if self.scaler is not None:
            self.scaler.unscale_grads(
                [p for r in self.replicas for p in r.parameters()]
            )
            overflow = not all(
                grads_are_finite(list(r.parameters())) for r in self.replicas
            )
            self.scaler.update(overflow)
            if overflow:
                # Skip the poisoned update (standard AMP behaviour);
                # replicas stay synchronized because all skip together.
                for replica in self.replicas:
                    replica.zero_grad()
                self.skipped_steps += 1
                skipped = True
        if not skipped:
            if all_batched and self._fused_apply:
                # Post-sync gradients are identical across replicas, so
                # one real update + state replication is bit-equivalent
                # to G independent (identical) updates.  A homogeneous
                # optimizer group replicates in bulk (``replicate_group``
                # pools every replica's state onto one block); otherwise
                # fall back to pairwise replication.
                self.optimizers[0].step()
                group = getattr(
                    type(self.optimizers[0]), "replicate_group", None
                )
                if group is None or not group(self.optimizers):
                    for opt in self.optimizers[1:]:
                        opt.replicate_from(self.optimizers[0])
            else:
                for opt in self.optimizers:
                    opt.step()
        self.global_step += 1
        mean_loss = float(np.mean(losses))
        if telemetry is not None:
            delta = self.comm.ledger.delta_since(ledger_before)
            telemetry.record_step(
                step=self.global_step,
                loss=mean_loss,
                train_ppl=float(np.exp(min(mean_loss, 50.0))),
                loss_scale=(
                    self.scaler.scale if self.scaler is not None else 1.0
                ),
                skipped=skipped,
                step_time_s=self.comm.timeline.elapsed_since(time_before),
                comm_time_s=delta.time_s,
                wire_bytes_per_rank=delta.wire_bytes_per_rank,
                collectives=delta.n_events,
                world_size=self.comm.world_size,
            )
        return mean_loss

    def _scale_grads(self, factor: float) -> None:
        """Scale every synchronized gradient in place (micro-batch mean)."""
        for replica in self.replicas:
            for p in replica.parameters():
                if p.grad is not None:
                    p.grad *= factor
                for s in p.sparse_grads:
                    s.values *= factor

    def train_epoch(
        self,
        epoch: int | None = None,
        max_steps: int | None = None,
        evals_per_epoch: int = 2,
    ) -> EpochStats:
        """One epoch (optionally truncated) with periodic validation.

        The learning rate follows the per-epoch decay schedule; replicas
        are asserted synchronized at epoch end (cheap and catches
        exchange bugs immediately).
        """
        epoch = self.epochs_done if epoch is None else epoch
        steps = max(
            1, self.batcher.steps_per_epoch // self.config.accumulation_steps
        )
        if max_steps is not None:
            if max_steps <= 0:
                raise ValueError("max_steps must be positive")
            steps = min(steps, max_steps)
        lr = self.schedule.lr_at_epoch(epoch)
        for opt in self.optimizers:
            opt.lr = lr
        self.batcher.set_epoch(epoch)
        # Stateful models restart their carried BPTT state each epoch
        # (the underlying token streams restart too).
        for replica in self.replicas:
            reset = getattr(replica, "reset_state", None)
            if callable(reset):
                reset()

        eval_every = max(1, steps // max(1, evals_per_epoch))
        stats = EpochStats(epoch=epoch, mean_train_loss=0.0, lr=lr)
        loss_sum = 0.0
        for s in range(steps):
            loss_sum += self.train_step()
            if (s + 1) % eval_every == 0 or s == steps - 1:
                stats.eval_points.append(
                    EvalPoint(epoch=epoch + (s + 1) / steps, nll=self.evaluate())
                )
        stats.mean_train_loss = loss_sum / steps
        self.history.append(stats)
        self.epochs_done = epoch + 1
        if self.config.wire_learn:
            self.learn_wire_throughputs()
        return stats

    def learn_wire_throughputs(self):
        """Fold measured wire telemetry into the adaptive selector.

        Calls :meth:`repro.core.wire.adaptive.AdaptiveCodecSelector.
        learn_from_metrics` with the communicator's metrics registry so
        the selector's crossover tests use this run's observed codec
        bytes/sec instead of the static defaults.  A no-op (returning
        ``{}``) when there is no adaptive selector or no registry —
        there is then no table to learn, and nothing to read it.
        """
        selector = self.wire.selector if self.wire is not None else None
        registry = getattr(self.comm, "metrics", None)
        if selector is None or registry is None:
            return {}
        return selector.learn_from_metrics(registry)

    def fit(
        self,
        epochs: int,
        target_perplexity: float | None = None,
        patience: int | None = None,
        max_steps_per_epoch: int | None = None,
        evals_per_epoch: int = 2,
        min_delta: float = 1e-4,
    ) -> list[EpochStats]:
        """Train up to ``epochs`` epochs with optional early stopping.

        Stops early when validation perplexity reaches
        ``target_perplexity``, or fails to improve by at least a
        ``min_delta`` *fraction* for ``patience`` consecutive epochs.
        Returns the epoch history of this call.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if target_perplexity is not None and target_perplexity < 1.0:
            raise ValueError("target_perplexity must be >= 1")
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive")
        if not 0 <= min_delta < 1:
            raise ValueError("min_delta must be in [0, 1)")
        run: list[EpochStats] = []
        best = float("inf")
        stale = 0
        for _ in range(epochs):
            stats = self.train_epoch(
                max_steps=max_steps_per_epoch, evals_per_epoch=evals_per_epoch
            )
            run.append(stats)
            ppl = stats.final_perplexity
            if target_perplexity is not None and ppl <= target_perplexity:
                break
            if patience is not None:
                if ppl < best * (1.0 - min_delta):
                    best, stale = ppl, 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
            best = min(best, ppl)
        return run
