"""Checkpointing: persist and resume distributed training runs.

Because the SPMD trainer keeps all replicas bit-identical (the core
sync invariant), a checkpoint stores **one** copy of the model and
optimizer state plus the trainer's step counter; loading restores every
rank from it — the same single-writer scheme real data-parallel trainers
use.

Format: a single ``.npz`` with namespaced arrays (``model/<param>``,
``optim/<key>``, ``meta/...``), portable and dependency-free.

Version history
---------------
* **v1** — model + optimizer + counters + loss-scaler state.  Resume was
  *not* bit-exact for models with stateful RNG streams (dropout): the
  restarted run re-seeded the streams from scratch.
* **v2** — adds ``rng/...`` arrays: the sampled-softmax seed assignment
  (strategy + per-group seeds + rank->group map) and every replica's
  per-module bit-generator states (PCG64, encoded as ``uint64`` limb
  arrays so ``allow_pickle=False`` still loads them).  Resume is now
  bit-exact.  v1 checkpoints still load (without RNG restore).
  Later v2 checkpoints additionally carry ``meta/mesh``, the hybrid
  ``(pipe, tensor, data)`` mesh spec of the writing run (empty string
  for a flat world).  Loading validates shard compatibility: the
  ``pipe`` and ``tensor`` factors must match the loading trainer's mesh
  exactly (model shards cannot be re-cut on restore), while the
  ``data`` factor may shrink on elastic loads.

Elastic restarts: ``load_checkpoint(..., elastic=True)`` accepts a
trainer whose world is *smaller* than the checkpoint's — the recovery
path of :class:`~repro.train.resilience.ResilientRunner` after a
permanent rank loss.  Surviving ranks re-index densely (new rank ``r``
adopts saved replica ``r``'s streams); the saved seed assignment is
skipped because the shrunken trainer derives its own for the new world.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..core.seeding import SeedAssignment, SeedStrategy
from .trainer import DistributedTrainer

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 2

_MASK64 = (1 << 64) - 1


def _encode_rng_state(state: dict) -> np.ndarray:
    """Pack a PCG64 ``bit_generator.state`` dict into six uint64 limbs.

    The 128-bit ``state`` and ``inc`` integers become two limbs each
    (low, high), followed by the ``has_uint32``/``uinteger`` carry of a
    buffered 32-bit draw — everything needed for an exact stream resume,
    in a dtype ``np.savez``/``allow_pickle=False`` round-trips.
    """
    if state.get("bit_generator") != "PCG64":
        raise ValueError(
            f"only PCG64 streams are checkpointable, got "
            f"{state.get('bit_generator')!r}"
        )
    inner = state["state"]
    return np.array(
        [
            inner["state"] & _MASK64,
            (inner["state"] >> 64) & _MASK64,
            inner["inc"] & _MASK64,
            (inner["inc"] >> 64) & _MASK64,
            int(state.get("has_uint32", 0)),
            int(state.get("uinteger", 0)),
        ],
        dtype=np.uint64,
    )


def _decode_rng_state(limbs: np.ndarray) -> dict:
    """Inverse of :func:`_encode_rng_state`."""
    if limbs.shape != (6,):
        raise ValueError(f"expected 6 uint64 limbs, got shape {limbs.shape}")
    vals = [int(v) for v in limbs]
    return {
        "bit_generator": "PCG64",
        "state": {
            "state": vals[0] | (vals[1] << 64),
            "inc": vals[2] | (vals[3] << 64),
        },
        "has_uint32": vals[4],
        "uinteger": vals[5],
    }


def _check_mesh_compatibility(
    saved_mesh: str,
    saved_world: int,
    trainer: DistributedTrainer,
    elastic: bool,
) -> None:
    """Reject loads that would re-cut model shards.

    The ``pipe`` and ``tensor`` factors determine how parameters are
    sharded across ranks; a checkpoint can only restore onto a trainer
    with the *same* model-shard layout.  The ``data`` factor (replica
    count) may differ when ``elastic`` — that is exactly the
    rank-loss recovery path — but never otherwise.
    """
    from ..cluster.mesh import hybrid_mesh

    if saved_mesh:
        m = hybrid_mesh(saved_mesh, saved_world)
        saved_shape = (
            m.axis_size("pipe"), m.axis_size("tensor"), m.axis_size("data")
        )
    else:
        saved_shape = (1, 1, saved_world)
    cfg_shape = trainer.config.mesh_shape
    if cfg_shape is None:
        cfg_shape = (1, 1, trainer.config.world_size)
    if saved_shape[:2] != cfg_shape[:2]:
        raise ValueError(
            f"checkpoint was written on a (pipe={saved_shape[0]}, "
            f"tensor={saved_shape[1]}) mesh but the trainer has "
            f"(pipe={cfg_shape[0]}, tensor={cfg_shape[1]}): model shards "
            f"cannot be re-cut on restore; rebuild the trainer with a "
            f"matching --mesh (only the data axis may change, and only "
            f"with elastic=True)"
        )
    if not elastic and saved_shape[2] != cfg_shape[2]:
        raise ValueError(
            f"checkpoint has data={saved_shape[2]} replica groups, "
            f"trainer has data={cfg_shape[2]}; pass elastic=True to "
            f"shrink the data axis"
        )


def save_checkpoint(path: str | pathlib.Path, trainer: DistributedTrainer) -> None:
    """Write the trainer's state (rank-0 replica + optimizer) to ``path``.

    Raises if replicas have drifted — checkpointing a diverged run would
    silently pick one of several inconsistent models.
    """
    from .trainer import assert_replicas_synchronized

    assert_replicas_synchronized(trainer.replicas, atol=0.0)
    arrays: dict[str, np.ndarray] = {
        "meta/version": np.array(_FORMAT_VERSION),
        "meta/global_step": np.array(trainer.global_step),
        "meta/data_step": np.array(trainer.data_step),
        "meta/epochs_done": np.array(trainer.epochs_done),
        "meta/world_size": np.array(trainer.config.world_size),
        "meta/mesh": np.array(trainer.config.mesh or ""),
    }
    for name, data in trainer.replicas[0].state_dict().items():
        arrays[f"model/{name}"] = data
    opt_state = trainer.optimizers[0].state_dict()
    for key, value in opt_state.items():
        if value is None:
            continue  # absent optional hyper-parameters (e.g. clip_norm)
        arrays[f"optim/{key}"] = np.asarray(value)
    if trainer.scaler is not None:
        arrays["scaler/scale"] = np.array(trainer.scaler.scale)
        clean = getattr(trainer.scaler, "_clean_steps", None)
        if clean is not None:
            arrays["scaler/clean_steps"] = np.array(clean)
        arrays["scaler/skipped_steps"] = np.array(trainer.skipped_steps)
    # v2: sampled-softmax seed assignment + per-replica module RNG
    # streams, so a resumed run consumes *identical* randomness.
    assignment = trainer.seed_assignment
    arrays["rng/strategy"] = np.array(assignment.strategy.value)
    arrays["rng/group_of_rank"] = np.asarray(assignment.group_of_rank)
    arrays["rng/seed_of_group"] = np.asarray(assignment.seed_of_group)
    for rank, replica in enumerate(trainer.replicas):
        for mod_path, state in replica.rng_state().items():
            arrays[f"rng/replica{rank}/{mod_path}"] = _encode_rng_state(state)
    np.savez(path, **arrays)


def load_checkpoint(
    path: str | pathlib.Path,
    trainer: DistributedTrainer,
    elastic: bool = False,
) -> int:
    """Restore every replica and optimizer from ``path``.

    The trainer must be built with the same architecture; by default the
    world size must match too.  With ``elastic=True`` a *smaller* world
    is accepted (the post-rank-loss recovery path): surviving ranks
    re-index densely, new rank ``r`` adopting saved replica ``r``'s RNG
    streams, and the saved seed assignment is skipped because the
    shrunken trainer derives its own.  Returns the restored global step.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["meta/version"])
        if version not in (1, _FORMAT_VERSION):
            raise ValueError(f"unsupported checkpoint version {version}")
        world = int(data["meta/world_size"])
        if not elastic and world != trainer.config.world_size:
            raise ValueError(
                f"checkpoint was written at world size {world}, trainer "
                f"has {trainer.config.world_size}"
            )
        if elastic and trainer.config.world_size > world:
            raise ValueError(
                f"elastic load cannot grow the world: checkpoint has "
                f"{world} ranks, trainer wants {trainer.config.world_size}"
            )
        saved_mesh = (
            str(data["meta/mesh"]) if "meta/mesh" in data.files else ""
        )
        _check_mesh_compatibility(saved_mesh, world, trainer, elastic)
        model_state = {
            key[len("model/"):]: data[key]
            for key in data.files
            if key.startswith("model/")
        }
        opt_state = {
            key[len("optim/"):]: data[key]
            for key in data.files
            if key.startswith("optim/")
        }
        # Scalars round-trip as 0-d arrays; optimizers expect numbers.
        opt_state = {
            k: (v.item() if v.ndim == 0 else v) for k, v in opt_state.items()
        }
        global_step = int(data["meta/global_step"])
        data_step = int(data["meta/data_step"])
        epochs_done = int(data["meta/epochs_done"])
        rng_streams: dict[int, dict[str, dict]] = {}
        has_rng = version >= 2
        if has_rng:
            for key in data.files:
                if not key.startswith("rng/replica"):
                    continue
                rank_str, _, mod_path = key[len("rng/replica"):].partition("/")
                rng_streams.setdefault(int(rank_str), {})[mod_path] = (
                    _decode_rng_state(data[key])
                )
            strategy = SeedStrategy(str(data["rng/strategy"]))
            group_of_rank = data["rng/group_of_rank"].copy()
            seed_of_group = data["rng/seed_of_group"].copy()

    for replica in trainer.replicas:
        replica.load_state_dict(model_state)
    for opt in trainer.optimizers:
        opt.load_state_dict(opt_state)
    trainer.global_step = global_step
    trainer.data_step = data_step
    trainer.epochs_done = epochs_done
    if has_rng:
        for rank, replica in enumerate(trainer.replicas):
            replica.set_rng_state(rng_streams.get(rank, {}))
        if not elastic:
            trainer.seed_assignment = SeedAssignment(
                strategy=strategy,
                group_of_rank=group_of_rank,
                seed_of_group=seed_of_group,
            )
    with np.load(path, allow_pickle=False) as data:
        if "scaler/scale" in data.files:
            if trainer.scaler is None:
                raise ValueError(
                    "checkpoint carries loss-scaler state but the trainer "
                    "was built without a scaler"
                )
            trainer.scaler._scale = float(data["scaler/scale"])
            if "scaler/clean_steps" in data.files and hasattr(
                trainer.scaler, "_clean_steps"
            ):
                trainer.scaler._clean_steps = int(data["scaler/clean_steps"])
            trainer.skipped_steps = int(data["scaler/skipped_steps"])
    return global_step
