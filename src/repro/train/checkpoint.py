"""Checkpointing: persist and resume distributed training runs.

Because the SPMD trainer keeps all replicas bit-identical (the core
sync invariant), a checkpoint stores **one** copy of the model and
optimizer state plus the trainer's step counter; loading restores every
rank from it — the same single-writer scheme real data-parallel trainers
use.

Format: a single ``.npz`` with namespaced arrays (``model/<param>``,
``optim/<key>``, ``meta/...``), portable and dependency-free.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .trainer import DistributedTrainer

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(path: str | pathlib.Path, trainer: DistributedTrainer) -> None:
    """Write the trainer's state (rank-0 replica + optimizer) to ``path``.

    Raises if replicas have drifted — checkpointing a diverged run would
    silently pick one of several inconsistent models.
    """
    from .trainer import assert_replicas_synchronized

    assert_replicas_synchronized(trainer.replicas, atol=0.0)
    arrays: dict[str, np.ndarray] = {
        "meta/version": np.array(_FORMAT_VERSION),
        "meta/global_step": np.array(trainer.global_step),
        "meta/data_step": np.array(trainer.data_step),
        "meta/epochs_done": np.array(trainer.epochs_done),
        "meta/world_size": np.array(trainer.config.world_size),
    }
    for name, data in trainer.replicas[0].state_dict().items():
        arrays[f"model/{name}"] = data
    opt_state = trainer.optimizers[0].state_dict()
    for key, value in opt_state.items():
        if value is None:
            continue  # absent optional hyper-parameters (e.g. clip_norm)
        arrays[f"optim/{key}"] = np.asarray(value)
    if trainer.scaler is not None:
        arrays["scaler/scale"] = np.array(trainer.scaler.scale)
        clean = getattr(trainer.scaler, "_clean_steps", None)
        if clean is not None:
            arrays["scaler/clean_steps"] = np.array(clean)
        arrays["scaler/skipped_steps"] = np.array(trainer.skipped_steps)
    np.savez(path, **arrays)


def load_checkpoint(path: str | pathlib.Path, trainer: DistributedTrainer) -> int:
    """Restore every replica and optimizer from ``path``.

    The trainer must be built with the same architecture and world size
    (structural mismatches raise).  Returns the restored global step.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["meta/version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        world = int(data["meta/world_size"])
        if world != trainer.config.world_size:
            raise ValueError(
                f"checkpoint was written at world size {world}, trainer "
                f"has {trainer.config.world_size}"
            )
        model_state = {
            key[len("model/"):]: data[key]
            for key in data.files
            if key.startswith("model/")
        }
        opt_state = {
            key[len("optim/"):]: data[key]
            for key in data.files
            if key.startswith("optim/")
        }
        # Scalars round-trip as 0-d arrays; optimizers expect numbers.
        opt_state = {
            k: (v.item() if v.ndim == 0 else v) for k, v in opt_state.items()
        }
        global_step = int(data["meta/global_step"])
        data_step = int(data["meta/data_step"])
        epochs_done = int(data["meta/epochs_done"])

    for replica in trainer.replicas:
        replica.load_state_dict(model_state)
    for opt in trainer.optimizers:
        opt.load_state_dict(opt_state)
    trainer.global_step = global_step
    trainer.data_step = data_step
    trainer.epochs_done = epochs_done
    with np.load(path, allow_pickle=False) as data:
        if "scaler/scale" in data.files:
            if trainer.scaler is None:
                raise ValueError(
                    "checkpoint carries loss-scaler state but the trainer "
                    "was built without a scaler"
                )
            trainer.scaler._scale = float(data["scaler/scale"])
            if "scaler/clean_steps" in data.files and hasattr(
                trainer.scaler, "_clean_steps"
            ):
                trainer.scaler._clean_steps = int(data["scaler/clean_steps"])
            trainer.skipped_steps = int(data["scaler/skipped_steps"])
    return global_step
