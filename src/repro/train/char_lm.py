"""The character language model (Section IV-B).

Architecture after Hestness et al. [38]: input embedding -> depth-10
Recurrent Highway Network (1792 cells at paper scale, 213M parameters)
-> **full** softmax over the character vocabulary (98 English / 15,437
Chinese symbols) with dropout, trained with Adam + weight decay.

Because the output softmax is full, its gradient is dense and
synchronizes via ALLREDUCE; only the *input* embedding produces sparse
gradients here — and as the paper notes (Section V-B), the number of
unique characters saturates at the vocabulary size as batches grow, so
uniqueness helps less for tiny vocabularies and most for Tieba's 15K.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..nn.dropout import Dropout
from ..nn.embedding import Embedding
from ..nn.module import Module
from ..nn.rhn import RHN
from ..nn.softmax import FullSoftmaxLoss
from .config import CharLMConfig

__all__ = ["CharLanguageModel"]


class CharLanguageModel(Module):
    """Character-level LM with an RHN backbone and full softmax.

    ``dropout_rng`` defaults to a stream spawned from ``rng``; the SPMD
    trainer passes per-rank streams so masks de-correlate across ranks
    while initialization stays identical.
    """

    def __init__(
        self,
        config: CharLMConfig,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
        dropout_rng: np.random.Generator | None = None,
        stateful: bool = False,
    ):
        super().__init__()
        self.config = config
        self.stateful = stateful
        self._state: np.ndarray | None = None
        self.embedding = Embedding(
            config.vocab_size, config.embedding_dim, rng, dtype
        )
        self.rhn = RHN(
            config.embedding_dim, config.hidden_dim, config.depth, rng, dtype
        )
        self.dropout = Dropout(
            config.dropout,
            dropout_rng if dropout_rng is not None else np.random.default_rng(rng.integers(2**63)),
        )
        self.loss_layer = FullSoftmaxLoss(
            config.vocab_size, config.hidden_dim, rng, dtype
        )

    def reset_state(self) -> None:
        """Drop the carried RHN state (start of an epoch / new stream)."""
        self._state = None

    def step(
        self,
        batch: Batch,
        sample_rng: np.random.Generator | None = None,
        loss_scale: float = 1.0,
    ) -> float:
        """One fused forward+backward (``sample_rng`` unused: full softmax).

        Signature matches the trainer protocol shared with the word LM.
        """
        emb, emb_cache = self.embedding.forward(batch.inputs)
        state = None
        if self.stateful and self.training:
            state = self._state
            if state is not None and state.shape[0] != batch.inputs.shape[0]:
                state = None
        hs, rhn_cache = self.rhn.forward(emb, state=state)
        if self.stateful and self.training:
            self._state = rhn_cache["final_state"]
        dropped, drop_cache = self.dropout.forward(hs)
        hidden = dropped.reshape(-1, self.config.hidden_dim)
        targets = batch.targets.reshape(-1)
        loss, loss_cache = self.loss_layer.forward(hidden, targets)
        dhidden = self.loss_layer.backward(loss_cache, loss_scale=loss_scale)
        ddrop = self.dropout.backward(dhidden.reshape(dropped.shape), drop_cache)
        demb = self.rhn.backward(ddrop, rhn_cache)
        self.embedding.backward(demb, emb_cache)
        return loss

    def eval_nll(self, batches: list[Batch]) -> float:
        """Token-weighted mean NLL (nats/char) with dropout disabled."""
        if not batches:
            raise ValueError("no evaluation batches")
        was_training = self.training
        self.eval()
        total_nll, total_tokens = 0.0, 0
        try:
            for batch in batches:
                emb, _ = self.embedding.forward(batch.inputs)
                hs, _ = self.rhn.forward(emb)
                hidden = hs.reshape(-1, self.config.hidden_dim)
                loss, _ = self.loss_layer.forward(
                    hidden, batch.targets.reshape(-1)
                )
                total_nll += loss * batch.n_tokens
                total_tokens += batch.n_tokens
        finally:
            self.train(was_training)
        return total_nll / total_tokens
