"""Training layer: model assemblies, configs, SPMD trainer, metrics."""

from .char_lm import CharLanguageModel
from .checkpoint import load_checkpoint, save_checkpoint
from .evaluation import BucketReport, bucketed_nll, frequency_buckets
from .generate import generate, next_token_distribution
from .config import (
    PAPER_CHAR_LM,
    PAPER_WORD_LM,
    CharLMConfig,
    TrainConfig,
    WordLMConfig,
)
from .ngram import NGramModel
from .resilience import RecoveryEvent, ResilientRunner
from .metrics import (
    accuracy_improvement,
    bits_per_char,
    compression_ratio,
    nll_from_perplexity,
    perplexity,
    perplexity_from_bpc,
)
from .trainer import (
    DistributedTrainer,
    EpochStats,
    EvalPoint,
    assert_replicas_synchronized,
    max_replica_divergence,
)
from .word_lm import WordLanguageModel

__all__ = [
    "WordLanguageModel",
    "save_checkpoint",
    "load_checkpoint",
    "generate",
    "next_token_distribution",
    "NGramModel",
    "BucketReport",
    "bucketed_nll",
    "frequency_buckets",
    "CharLanguageModel",
    "WordLMConfig",
    "CharLMConfig",
    "TrainConfig",
    "PAPER_WORD_LM",
    "PAPER_CHAR_LM",
    "DistributedTrainer",
    "EpochStats",
    "EvalPoint",
    "RecoveryEvent",
    "ResilientRunner",
    "assert_replicas_synchronized",
    "max_replica_divergence",
    "perplexity",
    "nll_from_perplexity",
    "bits_per_char",
    "perplexity_from_bpc",
    "compression_ratio",
    "accuracy_improvement",
]
