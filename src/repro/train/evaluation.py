"""Extended evaluation: per-frequency-bucket perplexity.

Zipf's law shapes *learning*, not just communication: head words are
seen thousands of times per epoch and learn quickly, tail words barely
at all.  Bucketed perplexity makes that visible — and quantifies what
vocabulary truncation (Section IV-A) actually costs, since the truncated
mass is exactly the worst-modelled tail.

Works with any model exposing the trainer protocol plus full-vocabulary
scoring (both LM families here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batching import Batch
from ..nn.functional import log_softmax
from .char_lm import CharLanguageModel
from .word_lm import WordLanguageModel

__all__ = ["BucketReport", "frequency_buckets", "bucketed_nll"]


@dataclass(frozen=True)
class BucketReport:
    """Per-bucket evaluation: token shares and NLL (nats/token)."""

    boundaries: tuple[int, ...]       # bucket upper bounds (vocab ids)
    token_counts: tuple[int, ...]
    nll: tuple[float, ...]

    @property
    def perplexity(self) -> tuple[float, ...]:
        return tuple(float(np.exp(x)) for x in self.nll)

    @property
    def overall_nll(self) -> float:
        total = sum(self.token_counts)
        return float(
            sum(n * c for n, c in zip(self.nll, self.token_counts)) / total
        )


def frequency_buckets(vocab_size: int, n_buckets: int) -> np.ndarray:
    """Log-spaced id boundaries over a frequency-ranked vocabulary.

    Returns ``n_buckets`` upper bounds; bucket i covers ids in
    ``[bounds[i-1], bounds[i])``.  Log spacing matches Zipf structure:
    the head buckets are small in types but huge in tokens.
    """
    if vocab_size <= 1:
        raise ValueError("vocab_size must exceed 1")
    if not 1 <= n_buckets <= vocab_size:
        raise ValueError("need 1 <= n_buckets <= vocab_size")
    bounds = np.unique(
        np.geomspace(1, vocab_size, n_buckets).astype(np.int64)
    )
    bounds[-1] = vocab_size
    return bounds


def _token_logprobs(
    model: WordLanguageModel | CharLanguageModel, batch: Batch
) -> np.ndarray:
    """Per-token log P(target) over the full vocabulary."""
    targets = batch.targets.reshape(-1)
    if isinstance(model, WordLanguageModel):
        hidden, _ = model._forward_hidden(batch.inputs)
        logits = hidden @ model.loss_layer.weight.data.T
    else:
        emb, _ = model.embedding.forward(batch.inputs)
        hs, _ = model.rhn.forward(emb)
        hidden = hs.reshape(-1, model.config.hidden_dim)
        logits = hidden @ model.loss_layer.weight.data.T + model.loss_layer.bias.data
    logp = log_softmax(logits, axis=1)
    return logp[np.arange(targets.size), targets]


def bucketed_nll(
    model: WordLanguageModel | CharLanguageModel,
    batches: list[Batch],
    n_buckets: int = 5,
) -> BucketReport:
    """Evaluate NLL separately per frequency bucket of the *target* id.

    Token ids are assumed frequency-ranked (the convention throughout
    this library), so bucket 0 is the head.
    """
    if not batches:
        raise ValueError("no evaluation batches")
    vocab = (
        model.config.vocab_size
        if hasattr(model, "config")
        else int(max(b.targets.max() for b in batches)) + 1
    )
    bounds = frequency_buckets(vocab, n_buckets)
    was_training = model.training
    model.eval()
    try:
        all_logp = []
        all_targets = []
        for batch in batches:
            all_logp.append(_token_logprobs(model, batch))
            all_targets.append(batch.targets.reshape(-1))
    finally:
        model.train(was_training)
    logp = np.concatenate(all_logp)
    targets = np.concatenate(all_targets)

    bucket_of = np.searchsorted(bounds, targets, side="right")
    bucket_of = np.minimum(bucket_of, bounds.size - 1)
    counts, nlls = [], []
    for i in range(bounds.size):
        mask = bucket_of == i
        n = int(mask.sum())
        counts.append(n)
        nlls.append(float(-logp[mask].mean()) if n else float("nan"))
    return BucketReport(
        boundaries=tuple(int(b) for b in bounds),
        token_counts=tuple(counts),
        nll=tuple(nlls),
    )
