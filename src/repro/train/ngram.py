"""Count-based n-gram language models.

A classical baseline the neural models are measured against: the paper's
introduction frames LM progress from count-based models (Shannon,
Church & Mercer) to neural ones.  This module implements interpolated
n-gram models with add-k and absolute-discounting (Kneser-Ney-style
continuation counts for the bigram), fully vectorized over numpy id
streams — useful as a perplexity sanity anchor for the synthetic corpora
and as a genuinely usable small LM.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["NGramModel"]


class NGramModel:
    """Interpolated n-gram model over integer token streams.

    Parameters
    ----------
    vocab_size:
        Id space size.
    order:
        Maximum n-gram order (1 = unigram, 2 = bigram, 3 = trigram).
    add_k:
        Additive smoothing mass at each order.
    interpolation:
        Per-order mixture weights, highest order first; must sum to 1.
        Defaults to a geometric profile favouring higher orders.
    """

    def __init__(
        self,
        vocab_size: int,
        order: int = 2,
        add_k: float = 0.1,
        interpolation: tuple[float, ...] | None = None,
    ):
        if vocab_size <= 1:
            raise ValueError("vocab_size must exceed 1")
        if not 1 <= order <= 3:
            raise ValueError("order must be 1, 2 or 3")
        if add_k <= 0:
            raise ValueError("add_k must be positive")
        self.vocab_size = vocab_size
        self.order = order
        self.add_k = add_k
        if interpolation is None:
            raw = [2.0**i for i in range(order, 0, -1)]
            total = sum(raw)
            interpolation = tuple(w / total for w in raw)
        if len(interpolation) != order:
            raise ValueError(f"need {order} interpolation weights")
        if abs(sum(interpolation) - 1.0) > 1e-9 or min(interpolation) < 0:
            raise ValueError("interpolation weights must be a distribution")
        self.interpolation = interpolation
        self._fitted = False

    # -- fitting -----------------------------------------------------------

    def fit(self, tokens: np.ndarray) -> "NGramModel":
        """Count n-grams over a 1-D id stream."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size < self.order:
            raise ValueError("token stream too short for the model order")
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ValueError("token id out of range")
        v = self.vocab_size
        self._unigram = np.bincount(tokens, minlength=v).astype(np.float64)
        self._total = float(tokens.size)
        if self.order >= 2:
            pair_keys = tokens[:-1] * v + tokens[1:]
            keys, counts = np.unique(pair_keys, return_counts=True)
            self._bigram_keys = keys
            self._bigram_counts = counts.astype(np.float64)
            # Context totals for normalization.
            self._context1 = np.bincount(tokens[:-1], minlength=v).astype(
                np.float64
            )
        if self.order >= 3:
            tri_keys = (tokens[:-2] * v + tokens[1:-1]) * v + tokens[2:]
            keys, counts = np.unique(tri_keys, return_counts=True)
            self._trigram_keys = keys
            self._trigram_counts = counts.astype(np.float64)
            pair_keys = tokens[:-2] * v + tokens[1:-1]
            keys, counts = np.unique(pair_keys, return_counts=True)
            self._context2_keys = keys
            self._context2_counts = counts.astype(np.float64)
        self._fitted = True
        return self

    # -- probabilities --------------------------------------------------------

    def _p_unigram(self, targets: np.ndarray) -> np.ndarray:
        k, v = self.add_k, self.vocab_size
        return (self._unigram[targets] + k) / (self._total + k * v)

    def _lookup(self, keys: np.ndarray, table_keys, table_counts) -> np.ndarray:
        pos = np.searchsorted(table_keys, keys)
        pos = np.clip(pos, 0, table_keys.size - 1)
        hit = table_keys[pos] == keys
        out = np.zeros(keys.shape, np.float64)
        out[hit] = table_counts[pos[hit]]
        return out

    def _p_bigram(self, context: np.ndarray, targets: np.ndarray) -> np.ndarray:
        k, v = self.add_k, self.vocab_size
        counts = self._lookup(
            context * v + targets, self._bigram_keys, self._bigram_counts
        )
        return (counts + k) / (self._context1[context] + k * v)

    def _p_trigram(
        self, c1: np.ndarray, c2: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        k, v = self.add_k, self.vocab_size
        counts = self._lookup(
            (c1 * v + c2) * v + targets, self._trigram_keys, self._trigram_counts
        )
        ctx = self._lookup(c1 * v + c2, self._context2_keys, self._context2_counts)
        return (counts + k) / (ctx + k * v)

    def prob(self, context: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Interpolated P(target | context) for parallel arrays.

        ``context`` has shape ``(n, order-1)`` (ignored columns allowed
        for order 1); ``targets`` has shape ``(n,)``.
        """
        if not self._fitted:
            raise RuntimeError("call fit() first")
        targets = np.asarray(targets, dtype=np.int64)
        context = np.asarray(context, dtype=np.int64).reshape(targets.size, -1)
        p = self.interpolation[-1] * self._p_unigram(targets)
        if self.order >= 2:
            p = p + self.interpolation[-2] * self._p_bigram(
                context[:, -1], targets
            )
        if self.order >= 3:
            p = p + self.interpolation[-3] * self._p_trigram(
                context[:, -2], context[:, -1], targets
            )
        return p

    def next_token_distribution(self, context: np.ndarray) -> np.ndarray:
        """Full P(. | context) — for sampling and sanity checks."""
        context = np.asarray(context, dtype=np.int64)
        ctx = np.tile(
            context[-(self.order - 1):] if self.order > 1 else np.zeros(0, np.int64),
            (self.vocab_size, 1),
        )
        return self.prob(ctx, np.arange(self.vocab_size))

    # -- evaluation -------------------------------------------------------------

    def nll(self, tokens: np.ndarray) -> float:
        """Mean negative log-likelihood (nats/token) of a held-out stream."""
        tokens = np.asarray(tokens, dtype=np.int64)
        n_ctx = self.order - 1
        if tokens.size <= n_ctx:
            raise ValueError("stream too short to score")
        targets = tokens[n_ctx:]
        if n_ctx == 0:
            context = np.zeros((targets.size, 0), np.int64)
        else:
            context = np.stack(
                [tokens[i : i + targets.size] for i in range(n_ctx)], axis=1
            )
        p = self.prob(context, targets)
        return float(-np.log(np.maximum(p, 1e-300)).mean())

    def perplexity(self, tokens: np.ndarray) -> float:
        return math.exp(self.nll(tokens))
