"""The word language model (Section IV-B).

Architecture after Jozefowicz et al. [36] as the paper describes it:
input embedding -> one LSTM layer (2048 cells at paper scale) -> linear
projection (512) -> sampled-softmax output embedding over the 100K-word
vocabulary with 1024 candidates per GPU.

The model exposes the trainer protocol:
``step(batch, sample_rng, loss_scale)`` runs fused forward+backward and
returns the (unscaled) training loss; ``eval_nll(batches)`` scores
held-out data against the full vocabulary.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import Batch
from ..nn.embedding import Embedding
from ..nn.linear import Linear
from ..nn.lstm import LSTM
from ..nn.module import Module
from ..nn.sampled_softmax import SampledSoftmaxLoss
from .config import WordLMConfig

__all__ = ["WordLanguageModel"]


class WordLanguageModel(Module):
    """Word-level LM with a sampled-softmax output embedding.

    Parameters
    ----------
    config:
        Architecture description.
    rng:
        Initialization generator — replicas across ranks must be built
        with generators in identical state.
    dtype:
        Parameter precision (float64 default for exactness-sensitive
        invariant tests; float32 matches production realism).
    """

    def __init__(
        self,
        config: WordLMConfig,
        rng: np.random.Generator,
        dtype: np.dtype = np.float64,
        stateful: bool = False,
    ):
        super().__init__()
        self.config = config
        self.stateful = stateful
        self._state: tuple[np.ndarray, np.ndarray] | None = None
        self.embedding = Embedding(
            config.vocab_size, config.embedding_dim, rng, dtype
        )
        self.lstm = LSTM(config.embedding_dim, config.hidden_dim, rng, dtype)
        self.projection = Linear(
            config.hidden_dim, config.projection_dim, rng, dtype=dtype
        )
        self.loss_layer = SampledSoftmaxLoss(
            config.vocab_size,
            config.projection_dim,
            config.num_samples,
            rng,
            dtype,
            weight=self.embedding.weight if config.tie_embeddings else None,
        )

    def reset_state(self) -> None:
        """Drop the carried LSTM state (start of an epoch / new stream)."""
        self._state = None

    def _carry_in(self, batch_size: int):
        """Current carried state, discarded on a batch-shape change."""
        if not (self.stateful and self.training):
            return None
        if self._state is not None and self._state[0].shape[0] != batch_size:
            self._state = None
        return self._state

    def _forward_hidden(self, inputs: np.ndarray) -> tuple[np.ndarray, dict]:
        emb, emb_cache = self.embedding.forward(inputs)
        hs, lstm_cache = self.lstm.forward(
            emb, state=self._carry_in(inputs.shape[0])
        )
        if self.stateful and self.training:
            # Truncated BPTT: carry values forward, cut the gradient.
            self._state = lstm_cache["final_state"]
        proj, proj_cache = self.projection.forward(hs)
        hidden = proj.reshape(-1, self.config.projection_dim)
        return hidden, {
            "emb": emb_cache,
            "lstm": lstm_cache,
            "proj": proj_cache,
            "shape": proj.shape,
        }

    def step(
        self,
        batch: Batch,
        sample_rng: np.random.Generator,
        loss_scale: float = 1.0,
    ) -> float:
        """One fused forward+backward; gradients accumulate in parameters.

        ``sample_rng`` drives the candidate sampler — the seeding
        technique's control point.  Returns the sampled-softmax training
        loss (nats/token, unscaled).
        """
        hidden, caches = self._forward_hidden(batch.inputs)
        targets = batch.targets.reshape(-1)
        loss, loss_cache = self.loss_layer.forward(hidden, targets, sample_rng)
        dhidden = self.loss_layer.backward(loss_cache, loss_scale=loss_scale)
        dproj = dhidden.reshape(caches["shape"])
        dhs = self.projection.backward(dproj, caches["proj"])
        demb = self.lstm.backward(dhs, caches["lstm"])
        self.embedding.backward(demb, caches["emb"])
        return loss

    def eval_nll(self, batches: list[Batch]) -> float:
        """Token-weighted mean NLL over the full vocabulary (nats/token)."""
        if not batches:
            raise ValueError("no evaluation batches")
        was_training = self.training
        self.eval()
        total_nll, total_tokens = 0.0, 0
        try:
            for batch in batches:
                hidden, _ = self._forward_hidden(batch.inputs)
                nll = self.loss_layer.full_nll(hidden, batch.targets.reshape(-1))
                total_nll += nll * batch.n_tokens
                total_tokens += batch.n_tokens
        finally:
            self.train(was_training)
        return total_nll / total_tokens
