"""Supervised, elastic fault-tolerant training: the recovery loop.

The paper's Hero run holds 192 GPUs for 34 hours — long enough that node
crashes, flapping links, and stragglers are routine, not exceptional.
This module adds the supervised run loop that real long-running jobs use
(TensorFlow's supervised sessions, elastic Horovod/TorchElastic
membership changes), built on the simulator's fault taxonomy
(:mod:`repro.cluster.failures`):

* **transient link faults** (:class:`~repro.cluster.failures.TransientLinkError`)
  rewind the interrupted step and retry it with capped exponential
  backoff.  Backoff time is charged to the per-rank
  :class:`~repro.cluster.timeline.Timeline` and the
  :class:`~repro.cluster.tracing.CostLedger` (scope ``recovery``) — never
  to wall clock; the simulator stays fast while the schedule reflects the
  lost time.  A rewind restores *all* step-consumed randomness (the data
  cursor, every replica's module RNG streams, carried BPTT state), so a
  retried step is bit-identical to a never-faulted one — the property the
  differential chaos tests pin.  Before each retry the
  :func:`~repro.analysis.sanitizer.assert_clean_retry_state` invariant
  verifies nothing from the aborted attempt survives (no gradient may be
  applied twice).
* **permanent rank loss** (:class:`~repro.cluster.failures.RankFailureError`)
  triggers graceful degradation: the world shrinks by one, a fresh
  :class:`~repro.cluster.communicator.Communicator` is built, the
  learning rate is rescaled by the global-batch ratio (the linear
  scaling rule — per-rank batch is preserved), and training resumes from
  the last checkpoint with bit-exact replica resync via the v2
  checkpoint format.  Transient faults that exhaust their retry budget
  escalate to eviction of the afflicted rank.

Checkpoints are written on a cadence chosen by the Young/Daly cost model
(:mod:`repro.perf.checkpoint_overhead`) from the configured MTBF,
checkpoint cost, and step time; each write also charges its cost to the
timeline.  Every recovery action is logged as a :class:`RecoveryEvent`
and the merged chrome trace (:meth:`ResilientRunner.chrome_trace`) shows
retries, backoff, and checkpoint writes across all communicator
generations.
"""

from __future__ import annotations

import copy
import pathlib
from collections.abc import Callable
from dataclasses import dataclass, replace

from ..analysis.sanitizer import assert_clean_retry_state
from ..cluster.communicator import Communicator
from ..cluster.failures import RankFailureError, TransientLinkError
from ..perf.checkpoint_overhead import optimal_checkpoint_steps
from .checkpoint import load_checkpoint, save_checkpoint
from .config import TrainConfig
from .trainer import DistributedTrainer, assert_replicas_synchronized

__all__ = ["RecoveryEvent", "ResilientRunner"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervised-loop action, for post-mortem inspection.

    ``kind`` is one of ``checkpoint``, ``retry``, ``retries-exhausted``,
    ``rank-loss``, or ``resume``; ``global_step`` is the optimizer step
    at which it happened; ``detail`` is a human-readable description.
    """

    kind: str
    global_step: int
    detail: str


class ResilientRunner:
    """Supervised run loop wrapping :class:`DistributedTrainer`.

    Parameters
    ----------
    trainer_factory:
        ``f(config, comm) -> DistributedTrainer``.  Called once up front
        and again after every elastic world change; it must close over
        the token streams and model/optimizer factories.
    config:
        The initial run description.  After a rank loss the runner
        derives a shrunken copy (``world_size - 1``, same per-rank
        batch) and rebuilds the trainer from it.
    checkpoint_path:
        Where checkpoints are written (a single rolling ``.npz``).
    comm:
        Optional initial communicator — e.g. a
        :class:`~repro.cluster.failures.ChaosCommunicator` replaying a
        fault plan.  Defaults to ``comm_factory(config.world_size)``.
    comm_factory:
        ``f(world_size) -> Communicator`` used for post-shrink rebuilds
        (and the initial communicator when ``comm`` is omitted).
        Defaults to a plain memory-untracked :class:`Communicator`.
    max_retries:
        Consecutive transient retries of one step before the afflicted
        rank is evicted (escalation to the permanent path).
    base_backoff_s, backoff_factor, max_backoff_s:
        Capped exponential backoff charged per retry:
        ``min(base * factor**(attempt-1), max)`` simulated seconds.
    mtbf_s, checkpoint_cost_s, step_time_s:
        Inputs to the Young/Daly cadence model; used when
        ``checkpoint_every`` is not given explicitly.
    checkpoint_every:
        Checkpoint every N optimizer steps; overrides the cost model.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession`.  The runner
        adopts the trainer into it (per-step records), re-tracks every
        rebuilt communicator as a new generation, and mirrors each
        :class:`RecoveryEvent` into the session's event stream.
    """

    def __init__(
        self,
        trainer_factory: Callable[[TrainConfig, Communicator], DistributedTrainer],
        config: TrainConfig,
        checkpoint_path: str | pathlib.Path,
        comm: Communicator | None = None,
        comm_factory: Callable[[int], Communicator] | None = None,
        max_retries: int = 4,
        base_backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 5.0,
        mtbf_s: float = 3600.0,
        checkpoint_cost_s: float = 1.0,
        step_time_s: float = 1.0,
        checkpoint_every: int | None = None,
        telemetry=None,
    ):
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if base_backoff_s <= 0 or max_backoff_s <= 0 or backoff_factor < 1:
            raise ValueError("backoff parameters must be positive (factor >= 1)")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.trainer_factory = trainer_factory
        self.config = config
        self.checkpoint_path = pathlib.Path(checkpoint_path)
        self.comm_factory = (
            comm_factory
            if comm_factory is not None
            else (lambda world: Communicator(world, track_memory=False))
        )
        self.max_retries = max_retries
        self.base_backoff_s = base_backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.checkpoint_cost_s = checkpoint_cost_s
        self.checkpoint_every = (
            checkpoint_every
            if checkpoint_every is not None
            else optimal_checkpoint_steps(step_time_s, checkpoint_cost_s, mtbf_s)
        )

        initial_comm = comm if comm is not None else self.comm_factory(config.world_size)
        self.trainer = trainer_factory(config, initial_comm)
        #: Timelines of every communicator generation (initial + rebuilds).
        self.timelines = [initial_comm.timeline]
        #: Ledgers of every communicator generation (parallel list).
        self.ledgers = [initial_comm.ledger]
        #: Lockstep verifiers per generation (None where not attached).
        self.verifiers = [getattr(initial_comm, "verifier", None)]
        self.events: list[RecoveryEvent] = []
        self.losses: list[float] = []
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.adopt_trainer(self.trainer)
        self._lr_scale = 1.0
        self._attempts = 0
        self._initial_saved = False

    def _note(self, kind: str, step: int, detail: str) -> None:
        """Append a RecoveryEvent and mirror it into the telemetry session."""
        self.events.append(RecoveryEvent(kind, step, detail))
        if self.telemetry is not None:
            self.telemetry.record_event(kind, step, detail)

    # ------------------------------------------------------------------
    # the supervised loop
    # ------------------------------------------------------------------

    def run(self, total_steps: int) -> DistributedTrainer:
        """Drive training to ``total_steps`` optimizer steps, surviving faults.

        Returns the (possibly rebuilt) trainer.  On return all async
        work is drained and the replicas are verified bit-identical.
        """
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if not self._initial_saved:
            self._save_checkpoint("initial")
            self._initial_saved = True
        while self.trainer.global_step < total_steps:
            snapshot = self._snapshot_step_state()
            self._apply_lr()
            try:
                loss = self.trainer.train_step()
            except TransientLinkError as fault:
                self._attempts += 1
                if self._attempts > self.max_retries:
                    self._note(
                        "retries-exhausted",
                        self.trainer.global_step,
                        f"rank {fault.rank} link still failing after "
                        f"{self.max_retries} retries; evicting the rank",
                    )
                    self._recover_from_rank_loss(fault.rank)
                    continue
                self._rewind(snapshot)
                backoff_s = self._charge_backoff(fault)
                self._note(
                    "retry",
                    self.trainer.global_step,
                    f"{fault.op} on rank {fault.rank}: attempt "
                    f"{self._attempts}/{self.max_retries}, backoff "
                    f"{backoff_s:.3f}s",
                )
                continue
            except RankFailureError as fault:
                self._note(
                    "rank-loss", self.trainer.global_step, str(fault)
                )
                self._recover_from_rank_loss(fault.rank)
                continue
            self._attempts = 0
            self.losses.append(loss)
            if (
                self.trainer.global_step % self.checkpoint_every == 0
                and self.trainer.global_step < total_steps
            ):
                self._save_checkpoint(
                    f"periodic (every {self.checkpoint_every} steps)"
                )
        self.trainer.comm.wait_all()
        assert_replicas_synchronized(self.trainer.replicas, atol=0.0)
        self._save_checkpoint("final")
        return self.trainer

    # ------------------------------------------------------------------
    # transient-fault machinery
    # ------------------------------------------------------------------

    def _snapshot_step_state(self) -> dict:
        """Capture everything a step consumes, for a bit-exact rewind.

        The optimizer and parameters are untouched until *after* the
        gradient sync (where faults fire), so only the randomness and
        cursor state need saving: the data cursor (which also keys the
        per-step sampled-softmax generators), every replica's stateful
        module RNG streams, carried BPTT state, and the loss-scaler
        counters.
        """
        t = self.trainer
        snap = {
            "data_step": t.data_step,
            "skipped_steps": t.skipped_steps,
            "rng": [r.rng_state() for r in t.replicas],
            "carried": [
                copy.deepcopy(getattr(r, "_state", None)) for r in t.replicas
            ],
            "scaler_scale": None,
            "scaler_clean": None,
        }
        if t.scaler is not None:
            snap["scaler_scale"] = t.scaler.scale
            snap["scaler_clean"] = getattr(t.scaler, "_clean_steps", None)
        return snap

    def _rewind(self, snap: dict) -> None:
        """Undo an aborted step so its retry replays from scratch.

        Drains in-flight async work, clears every residual gradient,
        restores the snapshot, then checks the no-double-apply invariant
        — a retry may only proceed from a provably clean slate.
        """
        t = self.trainer
        t.comm.wait_all()
        for r in t.replicas:
            r.zero_grad()
        t.data_step = snap["data_step"]
        t.skipped_steps = snap["skipped_steps"]
        for r, streams in zip(t.replicas, snap["rng"]):
            r.set_rng_state(streams)
        for r, carried in zip(t.replicas, snap["carried"]):
            if carried is not None or hasattr(r, "_state"):
                r._state = copy.deepcopy(carried)
        if t.scaler is not None:
            t.scaler._scale = snap["scaler_scale"]
            if snap["scaler_clean"] is not None:
                t.scaler._clean_steps = snap["scaler_clean"]
        assert_clean_retry_state(t.replicas, t.comm)

    def _charge_backoff(self, fault: TransientLinkError) -> float:
        """Charge this attempt's backoff to the timeline and ledger.

        Returns the simulated seconds charged.  Every rank waits (the
        collective is synchronous — nobody proceeds until the retry), so
        the backoff lands on every compute stream and in the ledger
        under the ``recovery`` scope.
        """
        backoff_s = min(
            self.base_backoff_s * self.backoff_factor ** (self._attempts - 1),
            self.max_backoff_s,
        )
        t = self.trainer
        name = f"retry-backoff:{fault.op}"
        for rank in range(t.comm.world_size):  # mesh-ok: backoff stalls every simulated rank's clock
            t.comm.timeline.record_compute(rank, backoff_s, name=name)
        with t.comm.ledger.scope("recovery"):
            t.comm.ledger.record(
                op="retry_backoff",
                world=t.comm.world_size,
                wire_bytes_per_rank=0,
                time_s=backoff_s,
                tag=fault.op,
            )
        return backoff_s

    # ------------------------------------------------------------------
    # permanent-fault machinery (elastic shrink)
    # ------------------------------------------------------------------

    def _recover_from_rank_loss(self, failed_rank: int) -> None:
        """Shrink the world by one and resume from the last checkpoint.

        Per-rank batch is preserved (the global batch shrinks with the
        world), so the learning rate is rescaled by the global-batch
        ratio — the linear scaling rule.  The rebuilt trainer loads the
        checkpoint elastically: surviving ranks re-index densely and
        adopt the saved RNG streams of their new index.

        On a hybrid mesh, a single lost rank takes its whole
        ``pipe x tensor`` model-shard group with it (the shards are not
        replicated within a data group), so the shrink collapses the
        **data axis only**: ``(p, t, d) -> (p, t, d-1)``, removing
        ``p*t`` ranks.  A shrink that would have to break the tensor or
        pipe factorization (``d == 1``) is rejected with an error
        instead of silently re-cutting model shards.
        """
        old_config = self.trainer.config
        if not 0 <= failed_rank < old_config.world_size:  # spmd-ok: supervisor-side validation — the failed rank's identity is the input, not divergent control flow
            raise ValueError(
                f"failed_rank {failed_rank} out of range for world "
                f"{old_config.world_size}"
            )
        shape = old_config.mesh_shape
        if shape is not None:
            p, t, d = shape
            if d <= 1:
                raise ValueError(
                    f"cannot recover from rank loss on mesh (pipe={p}, "
                    f"tensor={t}, data={d}): the world shrink may only "
                    f"collapse the data axis, and data=1 leaves nothing "
                    f"to collapse — breaking the tensor/pipe "
                    f"factorization would re-cut model shards; restore "
                    f"from the checkpoint on replacement hardware instead"
                )
            new_world = p * t * (d - 1)
            new_mesh = f"pipe={p},tensor={t},data={d - 1}"
        else:
            new_world = old_config.world_size - 1
            new_mesh = old_config.mesh
        if new_world < 1:
            raise RankFailureError(failed_rank, "recovery", -1)
        old_verifier = getattr(self.trainer.comm, "verifier", None)
        if old_verifier is not None:
            old_verifier.mark_failed(
                failed_rank, "rank loss (elastic world shrink)"
            )
        self.trainer.comm.wait_all()
        self._lr_scale *= new_world / old_config.world_size
        new_config = replace(old_config, world_size=new_world, mesh=new_mesh)
        comm = self.comm_factory(new_world)
        if old_verifier is not None and getattr(comm, "verifier", None) is None:
            from ..cluster.lockstep import LockstepVerifier

            LockstepVerifier.attach(
                comm,
                hash_mode=old_verifier.hash_mode,
                sample_bytes=old_verifier.sample_bytes,
            )
        self.timelines.append(comm.timeline)
        self.ledgers.append(comm.ledger)
        self.verifiers.append(getattr(comm, "verifier", None))
        trainer = self.trainer_factory(new_config, comm)
        load_checkpoint(self.checkpoint_path, trainer, elastic=True)
        self.trainer = trainer
        self.config = new_config
        self._attempts = 0
        if self.telemetry is not None:
            self.telemetry.adopt_trainer(trainer)
        self._note(
            "resume",
            trainer.global_step,
            f"world {old_config.world_size} -> {new_world} (rank "
            f"{failed_rank} lost), lr scale {self._lr_scale:.4f}, "
            f"resumed from step {trainer.global_step}",
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _apply_lr(self) -> None:
        """Set this step's learning rate on every optimizer.

        The base schedule comes from the (possibly rebuilt) trainer —
        whose ``ln(nodes)`` factor tracks the current world — times the
        cumulative elastic rescale.
        """
        t = self.trainer
        lr = t.schedule.lr_at_epoch(t.epochs_done) * self._lr_scale
        for opt in t.optimizers:
            opt.lr = lr

    def _save_checkpoint(self, detail: str) -> None:
        """Write the rolling checkpoint and charge its cost to the timeline."""
        t = self.trainer
        save_checkpoint(self.checkpoint_path, t)
        for rank in range(t.comm.world_size):  # mesh-ok: checkpoint write stalls every simulated rank's clock
            t.comm.timeline.record_compute(
                rank, self.checkpoint_cost_s, name="checkpoint"
            )
        self._note("checkpoint", t.global_step, detail)

    @property
    def lr_scale(self) -> float:
        """Cumulative elastic learning-rate rescale (1.0 before any loss)."""
        return self._lr_scale

    def total_simulated_time(self) -> float:
        """Summed makespan across every communicator generation."""
        return sum(tl.makespan for tl in self.timelines)

    def generation_parts(self) -> list:
        """Span data of every generation, for the merged trace exporter."""
        from ..telemetry.spans import GenerationPart

        return [
            GenerationPart.from_run(ledger, timeline, label=f"gen{g}")
            for g, (ledger, timeline) in enumerate(
                zip(self.ledgers, self.timelines)
            )
        ]

    def chrome_trace(self) -> list[dict]:
        """Merged chrome trace over all communicator generations.

        Uses the :mod:`repro.telemetry.spans` exporter: generation ``g``
        occupies its own pid block (one pid per rank, tids for
        compute/comm/ledger) shifted past all earlier generations in
        time, and every event is annotated with its ``generation``
        (0 = the initial communicator) so retries, backoff, checkpoint
        writes, and the post-shrink schedule are all visible in one
        view.
        """
        from ..telemetry.spans import merged_trace

        return merged_trace(self.generation_parts())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientRunner(world={self.config.world_size}, "
            f"step={self.trainer.global_step}, events={len(self.events)})"
        )
