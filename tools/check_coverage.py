#!/usr/bin/env python
"""Line-coverage floor check with no third-party dependencies.

The container has no ``coverage`` package, so this tool measures line
coverage with the standard library alone:

* **executable lines** come from compiling each target module and walking
  every nested code object's ``co_lines()`` table (code objects whose
  ``def`` line carries a ``pragma: no cover`` comment are excluded, the
  same convention the coverage.py ecosystem uses);
* **executed lines** are collected by a ``sys.settrace`` hook that only
  descends into frames of the target files, keeping the overhead on the
  rest of the suite negligible;
* the tests run in-process via ``pytest.main`` so the trace hook sees
  them.

``--target`` is repeatable and accepts directories (expanded to every
``*.py`` beneath them).  The floor applies to the *aggregate* percentage;
when more than one file is measured the report also breaks out the five
worst-covered files with their missed-line runs, so a passing aggregate
cannot hide one untested module.

Exit status is non-zero when coverage falls below the floor, which is
how ``make test-chaos`` and CI enforce the ISSUE's >= 90% requirement on
the recovery loop.

Usage::

    PYTHONPATH=src python tools/check_coverage.py \
        --target src/repro/train/resilience.py \
        --min-percent 90 \
        tests/train/test_resilience.py
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading

#: How many of the worst-covered files get a per-file miss breakdown.
WORST_FILES_SHOWN = 5


def executable_lines(path: pathlib.Path) -> set[int]:
    """Line numbers that carry executable code in ``path``.

    Walks the compiled module's code-object tree; a code object whose
    first line contains ``pragma: no cover`` is skipped wholesale.
    """
    source = path.read_text()
    source_lines = source.splitlines()
    root = compile(source, str(path), "exec")
    lines: set[int] = set()

    def visit(code) -> None:
        first = code.co_firstlineno
        if 0 < first <= len(source_lines) and (
            "pragma: no cover" in source_lines[first - 1]
        ):
            return
        for _, _, lineno in code.co_lines():
            if lineno is not None and lineno > 0:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                visit(const)

    visit(root)
    # The def/class statement of an excluded block still executes at
    # import time; keep only lines that belong to retained code objects.
    return lines


def expand_targets(specs: list[str]) -> list[pathlib.Path]:
    """Resolve ``--target`` values: files stay, directories expand to *.py."""
    out: list[pathlib.Path] = []
    for spec in specs:
        p = pathlib.Path(spec)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        else:
            out.append(p)
    return out


def run_with_trace(
    targets: list[pathlib.Path], pytest_args: list[str]
) -> tuple[int, dict[str, set[int]]]:
    """Run pytest in-process, recording executed lines of each target."""
    import pytest

    executed: dict[str, set[int]] = {
        str(t.resolve()): set() for t in targets
    }

    def make_local(lines: set[int]):
        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    local_traces = {name: make_local(lines) for name, lines in executed.items()}

    def global_trace(frame, event, arg):
        if event == "call":
            return local_traces.get(frame.f_code.co_filename)
        return None

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(rc), executed


def _format_runs(missed: list[int], limit: int = 20) -> str:
    """Collapse sorted line numbers into ``a-b`` run notation."""
    runs: list[tuple[int, int]] = []
    start = prev = missed[0]
    for line in missed[1:]:
        if line == prev + 1:
            prev = line
            continue
        runs.append((start, prev))
        start = prev = line
    runs.append((start, prev))
    shown = ", ".join(f"{a}" if a == b else f"{a}-{b}" for a, b in runs[:limit])
    if len(runs) > limit:
        shown += f", ... ({len(runs) - limit} more run(s))"
    return shown


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", action="append", default=None,
        help="source file or directory whose coverage is gated "
        "(repeatable; default: src/repro/train/resilience.py)",
    )
    parser.add_argument(
        "--min-percent", type=float, default=90.0,
        help="fail below this aggregate line-coverage percentage",
    )
    parser.add_argument(
        "tests", nargs="*", default=["tests/train/test_resilience.py"],
        help="pytest arguments selecting the measuring suite",
    )
    args = parser.parse_args(argv)

    specs = args.target or ["src/repro/train/resilience.py"]
    missing = [s for s in specs if not pathlib.Path(s).exists()]
    if missing:
        print(f"coverage: target {', '.join(missing)} does not exist",
              file=sys.stderr)
        return 2
    targets = expand_targets(specs)
    want: dict[pathlib.Path, set[int]] = {}
    for t in targets:
        lines = executable_lines(t)
        if lines:
            want[t] = lines
    if not want:
        print("coverage: no executable lines in any target", file=sys.stderr)
        return 2

    rc, executed = run_with_trace(list(want), ["-q", *args.tests])
    if rc != 0:
        print(f"coverage: measuring suite failed (pytest rc={rc})",
              file=sys.stderr)
        return rc

    per_file: list[tuple[float, pathlib.Path, set[int], list[int]]] = []
    total_want = total_covered = 0
    for t, lines in want.items():
        hit = executed[str(t.resolve())]
        covered = lines & hit
        missed = sorted(lines - hit)
        percent = 100.0 * len(covered) / len(lines)
        per_file.append((percent, t, covered, missed))
        total_want += len(lines)
        total_covered += len(covered)

    percent = 100.0 * total_covered / total_want
    label = (
        str(per_file[0][1]) if len(per_file) == 1
        else f"{len(per_file)} file(s)"
    )
    print(
        f"coverage: {label} {total_covered}/{total_want} executable lines "
        f"({percent:.1f}%), floor {args.min_percent:.0f}%"
    )
    if len(per_file) == 1:
        if per_file[0][3]:
            print(f"coverage: missed lines: {_format_runs(per_file[0][3])}")
    else:
        worst = sorted(per_file, key=lambda e: (e[0], str(e[1])))
        shown = [e for e in worst[:WORST_FILES_SHOWN] if e[3]]
        if shown:
            print(f"coverage: {len(shown)} worst-covered file(s):")
        for file_percent, t, covered, missed in shown:
            print(f"  {t}: {len(covered)}/{len(covered) + len(missed)} "
                  f"({file_percent:.1f}%) — missed {_format_runs(missed, 8)}")
    if percent < args.min_percent:
        print(
            f"coverage: FAIL — {percent:.1f}% is below the "
            f"{args.min_percent:.0f}% floor",
            file=sys.stderr,
        )
        return 1
    print("coverage: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
