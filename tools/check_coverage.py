#!/usr/bin/env python
"""Line-coverage floor check with no third-party dependencies.

The container has no ``coverage`` package, so this tool measures line
coverage with the standard library alone:

* **executable lines** come from compiling the target module and walking
  every nested code object's ``co_lines()`` table (code objects whose
  ``def`` line carries a ``pragma: no cover`` comment are excluded, the
  same convention the coverage.py ecosystem uses);
* **executed lines** are collected by a ``sys.settrace`` hook that only
  descends into frames of the target file, keeping the overhead on the
  rest of the suite negligible;
* the tests run in-process via ``pytest.main`` so the trace hook sees
  them.

Exit status is non-zero when coverage falls below the floor, which is
how ``make test-chaos`` and CI enforce the ISSUE's >= 90% requirement on
the recovery loop.

Usage::

    PYTHONPATH=src python tools/check_coverage.py \
        --target src/repro/train/resilience.py \
        --min-percent 90 \
        tests/train/test_resilience.py
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading


def executable_lines(path: pathlib.Path) -> set[int]:
    """Line numbers that carry executable code in ``path``.

    Walks the compiled module's code-object tree; a code object whose
    first line contains ``pragma: no cover`` is skipped wholesale.
    """
    source = path.read_text()
    source_lines = source.splitlines()
    root = compile(source, str(path), "exec")
    lines: set[int] = set()

    def visit(code) -> None:
        first = code.co_firstlineno
        if 0 < first <= len(source_lines) and (
            "pragma: no cover" in source_lines[first - 1]
        ):
            return
        for _, _, lineno in code.co_lines():
            if lineno is not None and lineno > 0:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                visit(const)

    visit(root)
    # The def/class statement of an excluded block still executes at
    # import time; keep only lines that belong to retained code objects.
    return lines


def run_with_trace(target: pathlib.Path, pytest_args: list[str]) -> tuple[int, set[int]]:
    """Run pytest in-process, recording executed lines of ``target``."""
    import pytest

    resolved = str(target.resolve())
    executed: set[int] = set()

    def local_trace(frame, event, arg):
        if event == "line":
            executed.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename == resolved:
            return local_trace
        return None

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(rc), executed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", default="src/repro/train/resilience.py",
        help="source file whose coverage is gated",
    )
    parser.add_argument(
        "--min-percent", type=float, default=90.0,
        help="fail below this line-coverage percentage",
    )
    parser.add_argument(
        "tests", nargs="*", default=["tests/train/test_resilience.py"],
        help="pytest arguments selecting the measuring suite",
    )
    args = parser.parse_args(argv)

    target = pathlib.Path(args.target)
    if not target.exists():
        print(f"coverage: target {target} does not exist", file=sys.stderr)
        return 2
    want = executable_lines(target)
    if not want:
        print(f"coverage: {target} has no executable lines", file=sys.stderr)
        return 2

    rc, executed = run_with_trace(target, ["-q", *args.tests])
    if rc != 0:
        print(f"coverage: measuring suite failed (pytest rc={rc})",
              file=sys.stderr)
        return rc

    covered = want & executed
    missed = sorted(want - executed)
    percent = 100.0 * len(covered) / len(want)
    print(
        f"coverage: {target} {len(covered)}/{len(want)} executable lines "
        f"({percent:.1f}%), floor {args.min_percent:.0f}%"
    )
    if missed:
        runs = []
        start = prev = missed[0]
        for line in missed[1:]:
            if line == prev + 1:
                prev = line
                continue
            runs.append((start, prev))
            start = prev = line
        runs.append((start, prev))
        shown = ", ".join(
            f"{a}" if a == b else f"{a}-{b}" for a, b in runs[:20]
        )
        print(f"coverage: missed lines: {shown}")
    if percent < args.min_percent:
        print(
            f"coverage: FAIL — {percent:.1f}% is below the "
            f"{args.min_percent:.0f}% floor",
            file=sys.stderr,
        )
        return 1
    print("coverage: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
